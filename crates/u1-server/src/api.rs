//! API-server operation handlers — the server side of every Table-2
//! operation, shared by live TCP mode and virtual-time measurement mode.
//!
//! Each handler:
//! 1. resolves the session,
//! 2. executes the operation's DAL RPCs against the metadata store, with a
//!    sampled service time and an `rpc` trace record per call,
//! 3. performs any object-store work (multipart parts, GETs, deletes),
//! 4. logs one `storage_done` record with the summed duration, and
//! 5. pushes notifications to other affected clients.

use crate::backend::Backend;
use crate::session::SessionHandle;
use u1_core::{
    ApiOpKind, ContentHash, CoreError, CoreResult, NodeId, NodeKind, RpcKind, SessionId,
    SimDuration, UploadId, UserId, VolumeId, VolumeKind,
};
use u1_proto::msg::{NodeInfo, Push, VolumeInfo};
use u1_trace::SessionEvent;

/// Result of `begin_upload`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadOutcome {
    /// Content already known — no bytes need to travel (§3.3 dedup).
    Deduplicated { node: NodeId, generation: u64 },
    /// A multipart upload job was created; stream chunks then commit.
    Started { upload: UploadId },
}

/// Result of a committed upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedUpload {
    pub node: NodeId,
    pub generation: u64,
    pub hash: ContentHash,
    pub bytes_transferred: u64,
}

/// A failed [`Backend::upload_file_with_recovery`] attempt. When `resume`
/// is `Some`, an upload job exists server-side and a later attempt can pick
/// up from the last part that arrived instead of restarting — the §3
/// rationale for upload jobs. `None` means nothing survived (the failure
/// predates job creation, or the job itself is gone).
#[derive(Debug, Clone)]
pub struct UploadFailure {
    pub resume: Option<UploadId>,
    pub error: CoreError,
}

fn ext_of(name: &str) -> &str {
    match name.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() && !ext.is_empty() => ext,
        _ => "",
    }
}

fn volume_info(row: &u1_metastore::VolumeRow, owner: Option<UserId>) -> VolumeInfo {
    VolumeInfo {
        volume: row.volume,
        kind: row.kind,
        generation: row.generation,
        owner,
        node_count: row.node_count,
    }
}

fn node_info(row: &u1_metastore::NodeRow) -> NodeInfo {
    NodeInfo {
        node: row.node,
        kind: row.kind,
        parent: row.parent,
        name: row.name.clone(),
        size: row.size,
        hash: row.content,
        generation: row.generation,
        is_dead: !row.is_live,
    }
}

impl Backend {
    fn session(&self, session: SessionId) -> CoreResult<SessionHandle> {
        self.sessions
            .get(session)
            .ok_or_else(|| CoreError::not_found(format!("session {session}")))
    }

    // ----- provisioning ---------------------------------------------------

    /// First-time account setup: creates the store-side user (with root
    /// volume) and returns the OAuth token the desktop client will keep.
    /// Idempotent.
    pub fn register_user(&self, user: UserId) -> u1_auth::Token {
        let _ = self.store.create_user(user, self.now());
        self.auth.register(user, self.now())
    }

    /// Grants `to` access to `owner`'s volume and pushes `VolumeCreated` to
    /// the recipient's live sessions.
    pub fn create_share(&self, owner: UserId, volume: VolumeId, to: UserId) -> CoreResult<()> {
        self.store.create_share(owner, volume, to, self.now())?;
        for sess in self.sessions.sessions_of(to) {
            self.push_router.deliver(
                sess.session,
                Push::VolumeCreated {
                    volume,
                    kind: VolumeKind::Shared,
                },
                true,
            );
        }
        Ok(())
    }

    // ----- session lifecycle ------------------------------------------------

    /// The Authenticate flow (§3.4.1): resolve the token — against the
    /// memcached-style token cache when one is configured, else with one
    /// `auth.get_user_id_from_token` RPC — then establish the session on
    /// the least-loaded process.
    pub fn open_session(&self, token: u1_auth::Token) -> CoreResult<SessionHandle> {
        let slot = self.cluster.place_session();
        if !self.faults.is_none() && self.faults.auth_down(self.now()) {
            // Auth-service outage window: the SSO backend is unreachable.
            // The memcached tier keeps serving whatever it still holds —
            // even past the TTL — so already-seen clients stay able to
            // connect; everyone else fails until the outage ends.
            if let Some(user) = self
                .token_cache
                .as_ref()
                .and_then(|cache| cache.lookup_stale(token))
            {
                self.auth_fallbacks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return self.establish_session(slot, user);
            }
            u1_core::fault::set_error_class(Some(u1_core::fault::ErrorClass::AuthOutage));
            self.log_auth(slot, UserId::new(0), false);
            self.cluster.release_session(slot);
            return Err(CoreError::unavailable("auth service outage"));
        }
        if let Some(cache) = &self.token_cache {
            if let Some(user) = cache.lookup(token, self.now()) {
                // Cache hit: no auth-service round trip at all, so neither
                // the `GetUserIdFromToken` rpc record nor the `auth` record
                // is emitted — exactly what memcached saved the real system.
                return self.establish_session(slot, user);
            }
        }
        if let Err(e) = self.rpc(slot, UserId::new(0), RpcKind::GetUserIdFromToken, 0) {
            self.cluster.release_session(slot);
            return Err(e);
        }
        match self.auth.get_user_id_from_token(token, self.now()) {
            Ok(user) => {
                self.log_auth(slot, user, true);
                if let Some(cache) = &self.token_cache {
                    cache.insert(token, user, self.now());
                }
                self.establish_session(slot, user)
            }
            Err(e) => {
                self.log_auth(slot, UserId::new(0), false);
                self.cluster.release_session(slot);
                Err(e)
            }
        }
    }

    /// Post-auth session start-up: the `GetUserData`/`GetRoot` reads, the
    /// session-table entry and the `session open` trace record.
    fn establish_session(
        &self,
        slot: crate::cluster::Slot,
        user: UserId,
    ) -> CoreResult<SessionHandle> {
        let prep = self
            .rpc(slot, user, RpcKind::GetUserData, 0)
            .and_then(|_| self.rpc(slot, user, RpcKind::GetRoot, 0))
            .and_then(|_| self.store.get_user_data(user).map(|_| ()));
        if let Err(e) = prep {
            // The slot was only reserved; without release a shard outage
            // would leak cluster capacity on every failed open.
            self.cluster.release_session(slot);
            return Err(e);
        }
        let handle = self.sessions.open(user, slot, self.now());
        self.log_session_event(&handle, SessionEvent::Open);
        Ok(handle)
    }

    /// Ends a session (client disconnect, NAT cut, crash — they all look
    /// the same: the TCP connection dies, §3.1.1).
    pub fn close_session(&self, session: SessionId) -> CoreResult<()> {
        let (handle, _ops, _data_ops) = self
            .sessions
            .close(session)
            .ok_or_else(|| CoreError::not_found(format!("session {session}")))?;
        self.push_router.unregister(session);
        self.cluster.release_session(handle.slot);
        self.log_session_event(&handle, SessionEvent::Close);
        Ok(())
    }

    /// Capability negotiation (appears in the Fig. 8 startup flow).
    pub fn query_set_caps(&self, session: SessionId, caps: Vec<String>) -> CoreResult<Vec<String>> {
        let h = self.session(session)?;
        self.log_storage(
            &h,
            ApiOpKind::QuerySetCaps,
            VolumeId::new(0),
            None,
            None,
            0,
            None,
            "",
            true,
            SimDuration::from_micros(50),
        );
        Ok(caps)
    }

    // ----- volume operations -------------------------------------------------

    /// ListVolumes: all volumes of the user — root, UDFs and shares.
    pub fn list_volumes(&self, session: SessionId) -> CoreResult<Vec<VolumeInfo>> {
        let h = self.session(session)?;
        let d = self.rpc(h.slot, h.user, RpcKind::ListVolumes, 0)?;
        let result = self.store.list_volumes(h.user).map(|owned| {
            let mut vols: Vec<VolumeInfo> = owned.iter().map(|v| volume_info(v, None)).collect();
            if let Ok(shares) = self.store.list_shares(h.user) {
                vols.extend(shares.iter().map(|(v, owner)| {
                    let mut info = volume_info(v, Some(*owner));
                    info.kind = VolumeKind::Shared;
                    info
                }));
            }
            vols
        });
        self.log_storage(
            &h,
            ApiOpKind::ListVolumes,
            VolumeId::new(0),
            None,
            None,
            0,
            None,
            "",
            result.is_ok(),
            d,
        );
        result
    }

    /// ListShares: only the volumes shared *to* this user.
    pub fn list_shares(&self, session: SessionId) -> CoreResult<Vec<VolumeInfo>> {
        let h = self.session(session)?;
        let d = self.rpc(h.slot, h.user, RpcKind::ListShares, 0)?;
        let result = self.store.list_shares(h.user).map(|shares| {
            shares
                .iter()
                .map(|(v, owner)| {
                    let mut info = volume_info(v, Some(*owner));
                    info.kind = VolumeKind::Shared;
                    info
                })
                .collect::<Vec<_>>()
        });
        self.log_storage(
            &h,
            ApiOpKind::ListShares,
            VolumeId::new(0),
            None,
            None,
            0,
            None,
            "",
            result.is_ok(),
            d,
        );
        result
    }

    /// CreateUDF.
    pub fn create_udf(&self, session: SessionId, name: &str) -> CoreResult<VolumeInfo> {
        let h = self.session(session)?;
        let d = self.rpc(h.slot, h.user, RpcKind::CreateUdf, 0)?;
        let result = self.store.create_udf(h.user, name, self.now());
        self.log_storage(
            &h,
            ApiOpKind::CreateUdf,
            result.as_ref().map(|v| v.volume).unwrap_or_default(),
            None,
            None,
            0,
            None,
            "",
            result.is_ok(),
            d,
        );
        let row = result?;
        // The user's *other* devices learn about the new volume by push.
        for sess in self.sessions.sessions_of(h.user) {
            if sess.session != session {
                self.push_router.deliver(
                    sess.session,
                    Push::VolumeCreated {
                        volume: row.volume,
                        kind: VolumeKind::UserDefined,
                    },
                    sess.slot == h.slot,
                );
            }
        }
        Ok(volume_info(&row, None))
    }

    /// DeleteVolume — the cascade operation.
    pub fn delete_volume(&self, session: SessionId, volume: VolumeId) -> CoreResult<u64> {
        let h = self.session(session)?;
        // Notify *before* the rows disappear so recipients are still known.
        let result = self.store.delete_volume(h.user, volume);
        let rows = result.as_ref().map(|r| r.dead.len() as u64).unwrap_or(0);
        let d = self.rpc(h.slot, h.user, RpcKind::DeleteVolume, rows)?;
        self.log_storage(
            &h,
            ApiOpKind::DeleteVolume,
            volume,
            None,
            None,
            0,
            None,
            "",
            result.is_ok(),
            d,
        );
        let released = result?;
        for hash in &released.unreferenced {
            self.blobs.delete(*hash);
        }
        // Other devices of this user learn the volume is gone.
        for sess in self.sessions.sessions_of(h.user) {
            if sess.session != session {
                self.push_router.deliver(
                    sess.session,
                    Push::VolumeDeleted { volume },
                    sess.slot == h.slot,
                );
            }
        }
        Ok(released.dead.len() as u64)
    }

    // ----- namespace operations ----------------------------------------------

    /// Make (file or directory): creates the metadata entry; for files this
    /// "normally precedes a file upload" (Table 2).
    pub fn make_node(
        &self,
        session: SessionId,
        volume: VolumeId,
        parent: Option<NodeId>,
        kind: NodeKind,
        name: &str,
    ) -> CoreResult<NodeInfo> {
        let h = self.session(session)?;
        let rpc_kind = match kind {
            NodeKind::File => RpcKind::MakeFile,
            NodeKind::Directory => RpcKind::MakeDir,
        };
        let op = match kind {
            NodeKind::File => ApiOpKind::MakeFile,
            NodeKind::Directory => ApiOpKind::MakeDir,
        };
        let d = self.rpc(h.slot, h.user, rpc_kind, 0)?;
        let result = self
            .store
            .make_node(h.user, volume, parent, kind, name, self.now());
        self.log_storage(
            &h,
            op,
            volume,
            result.as_ref().ok().map(|n| n.node),
            Some(kind),
            0,
            None,
            ext_of(name),
            result.is_ok(),
            d,
        );
        let row = result?;
        self.notify_change(
            &h,
            volume,
            Push::VolumeChanged {
                volume,
                generation: row.generation,
            },
        );
        Ok(node_info(&row))
    }

    /// Unlink.
    pub fn unlink(&self, session: SessionId, volume: VolumeId, node: NodeId) -> CoreResult<u64> {
        let h = self.session(session)?;
        let d = self.rpc(h.slot, h.user, RpcKind::UnlinkNode, 0)?;
        // Capture identity before deletion for the trace record.
        let pre = self.store.get_node(h.user, volume, node).ok();
        let result = self.store.unlink(h.user, volume, node, self.now());
        self.log_storage(
            &h,
            ApiOpKind::Unlink,
            volume,
            Some(node),
            pre.as_ref().map(|n| n.kind),
            0,
            pre.as_ref().and_then(|n| n.content),
            pre.as_ref().map(|n| ext_of(&n.name)).unwrap_or(""),
            result.is_ok(),
            d,
        );
        let released = result?;
        for hash in &released.unreferenced {
            self.blobs.delete(*hash);
        }
        let generation = self
            .store
            .get_delta(h.user, volume, u64::MAX)
            .map(|(g, _)| g)
            .unwrap_or(0);
        self.notify_change(&h, volume, Push::VolumeChanged { volume, generation });
        Ok(released.dead.len() as u64)
    }

    /// Move.
    pub fn move_node(
        &self,
        session: SessionId,
        volume: VolumeId,
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: &str,
    ) -> CoreResult<NodeInfo> {
        let h = self.session(session)?;
        let d = self.rpc(h.slot, h.user, RpcKind::Move, 0)?;
        let result = self
            .store
            .move_node(h.user, volume, node, new_parent, new_name, self.now());
        self.log_storage(
            &h,
            ApiOpKind::Move,
            volume,
            Some(node),
            result.as_ref().ok().map(|n| n.kind),
            0,
            None,
            ext_of(new_name),
            result.is_ok(),
            d,
        );
        let row = result?;
        self.notify_change(
            &h,
            volume,
            Push::VolumeChanged {
                volume,
                generation: row.generation,
            },
        );
        Ok(node_info(&row))
    }

    /// GetDelta: changes since a known generation.
    pub fn get_delta(
        &self,
        session: SessionId,
        volume: VolumeId,
        from_generation: u64,
    ) -> CoreResult<(u64, Vec<NodeInfo>)> {
        let h = self.session(session)?;
        let d1 = self.rpc(h.slot, h.user, RpcKind::GetVolumeId, 0)?;
        let d2 = self.rpc(h.slot, h.user, RpcKind::GetDelta, 0)?;
        let result = self.store.get_delta(h.user, volume, from_generation);
        self.log_storage(
            &h,
            ApiOpKind::GetDelta,
            volume,
            None,
            None,
            0,
            None,
            "",
            result.is_ok(),
            d1 + d2,
        );
        let (generation, rows) = result?;
        Ok((generation, rows.iter().map(node_info).collect()))
    }

    /// RescanFromScratch: the full-volume cascade read.
    pub fn rescan_from_scratch(
        &self,
        session: SessionId,
        volume: VolumeId,
    ) -> CoreResult<(u64, Vec<NodeInfo>)> {
        let h = self.session(session)?;
        let result = self.store.get_from_scratch(h.user, volume);
        let rows = result.as_ref().map(|(_, v)| v.len() as u64).unwrap_or(0);
        let d = self.rpc(h.slot, h.user, RpcKind::GetFromScratch, rows)?;
        self.log_storage(
            &h,
            ApiOpKind::RescanFromScratch,
            volume,
            None,
            None,
            0,
            None,
            "",
            result.is_ok(),
            d,
        );
        let (generation, nodes) = result?;
        Ok((generation, nodes.iter().map(node_info).collect()))
    }

    // ----- transfers (Appendix A) ----------------------------------------------

    /// Upload phase 1: the dedup probe and, on a miss, upload-job setup.
    /// The client sent the SHA-1 *before* any content (§3.3).
    pub fn begin_upload(
        &self,
        session: SessionId,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
    ) -> CoreResult<UploadOutcome> {
        let h = self.session(session)?;
        let mut d = self.rpc(h.slot, h.user, RpcKind::GetReusableContent, 0)?;
        let node_row = self.store.get_node(h.user, volume, node)?;
        // The content index view is the source of truth for dedup: a hash
        // visible to this partition is either epoch-committed (its blob is
        // guaranteed by seal-time reconciliation) or was put by this
        // partition earlier in the epoch.
        if self.store.get_reusable_content(hash, size).is_some() {
            // Dedup hit: link and finish — no transfer.
            d = d + self.rpc(h.slot, h.user, RpcKind::MakeContent, 0)?;
            let (row, released) =
                self.store
                    .make_content(h.user, volume, node, hash, size, self.now())?;
            if let Some(old) = released {
                self.blobs.delete(old);
            }
            self.log_storage(
                &h,
                ApiOpKind::Upload,
                volume,
                Some(node),
                Some(NodeKind::File),
                size,
                Some(hash),
                ext_of(&node_row.name),
                true,
                d,
            );
            self.notify_change(
                &h,
                volume,
                Push::VolumeChanged {
                    volume,
                    generation: row.generation,
                },
            );
            return Ok(UploadOutcome::Deduplicated {
                node,
                generation: row.generation,
            });
        }
        // Miss: set up the multipart upload job.
        self.rpc(h.slot, h.user, RpcKind::MakeUploadJob, 0)?;
        let job = self
            .store
            .make_uploadjob(h.user, volume, node, hash, size, self.now())?;
        let mp = self.blobs.initiate_multipart(self.now());
        self.rpc(h.slot, h.user, RpcKind::SetUploadJobMultipartId, 0)?;
        self.store
            .set_uploadjob_multipart_id(h.user, job.upload, mp, self.now())?;
        Ok(UploadOutcome::Started { upload: job.upload })
    }

    /// Upload phase 2: one chunk. The API server forwards it to the object
    /// store as a multipart part and records it in the upload job.
    pub fn upload_chunk(
        &self,
        session: SessionId,
        upload: UploadId,
        len: u64,
        data: Option<Vec<u8>>,
    ) -> CoreResult<()> {
        let h = self.session(session)?;
        self.rpc(h.slot, h.user, RpcKind::AddPartToUploadJob, 0)?;
        // Put the part *before* recording it in the upload job: a failed
        // put must leave no metadata claiming bytes the object store never
        // received, or a later commit would complete a short multipart.
        let mp = self
            .store
            .get_uploadjob(h.user, upload)?
            .multipart_id
            .ok_or_else(|| CoreError::invalid("uploadjob has no multipart id"))?;
        self.blobs
            .upload_part(
                mp,
                len,
                if self.cfg.store_real_bytes {
                    data
                } else {
                    None
                },
            )
            .map_err(|e| match e {
                u1_blobstore::MultipartError::PartPutFailed => {
                    CoreError::unavailable(e.to_string())
                }
                other => CoreError::invalid(other.to_string()),
            })?;
        self.store
            .add_part_to_uploadjob(h.user, upload, len, self.now())?;
        Ok(())
    }

    /// Upload phase 3: commit. Completes the S3 multipart, attaches content
    /// to the node, deletes the upload job, logs the Upload operation.
    pub fn commit_upload(
        &self,
        session: SessionId,
        upload: UploadId,
    ) -> CoreResult<CommittedUpload> {
        let h = self.session(session)?;
        let mut d = self.rpc(h.slot, h.user, RpcKind::GetUploadJob, 0)?;
        let job = self.store.get_uploadjob(h.user, upload)?;
        if !job.is_complete() {
            return Err(CoreError::invalid(format!(
                "upload {upload} incomplete: {}/{} bytes",
                job.bytes_received(),
                job.declared_size
            )));
        }
        let mp = job
            .multipart_id
            .ok_or_else(|| CoreError::invalid("uploadjob has no multipart id"))?;
        self.blobs
            .complete_multipart(mp, job.hash, self.now())
            .map_err(|e| CoreError::invalid(e.to_string()))?;
        d = d + self.rpc(h.slot, h.user, RpcKind::MakeContent, 0)?;
        let (row, released) = self.store.make_content(
            h.user,
            job.volume,
            job.node,
            job.hash,
            job.declared_size,
            self.now(),
        )?;
        if let Some(old) = released {
            self.blobs.delete(old);
        }
        d = d + self.rpc(h.slot, h.user, RpcKind::DeleteUploadJob, 0)?;
        self.store.delete_uploadjob(h.user, upload)?;
        let node_row = self.store.get_node(h.user, job.volume, job.node)?;
        d = d + self.transfer_time(job.declared_size);
        self.log_storage(
            &h,
            ApiOpKind::Upload,
            job.volume,
            Some(job.node),
            Some(NodeKind::File),
            job.declared_size,
            Some(job.hash),
            ext_of(&node_row.name),
            true,
            d,
        );
        self.notify_change(
            &h,
            job.volume,
            Push::VolumeChanged {
                volume: job.volume,
                generation: row.generation,
            },
        );
        Ok(CommittedUpload {
            node: job.node,
            generation: row.generation,
            hash: job.hash,
            bytes_transferred: job.declared_size,
        })
    }

    /// Client-side cancellation of an in-flight upload.
    pub fn cancel_upload(&self, session: SessionId, upload: UploadId) -> CoreResult<()> {
        let h = self.session(session)?;
        self.rpc(h.slot, h.user, RpcKind::DeleteUploadJob, 0)?;
        let job = self.store.delete_uploadjob(h.user, upload)?;
        if let Some(mp) = job.multipart_id {
            let _ = self.blobs.abort_multipart(mp);
        }
        Ok(())
    }

    /// The whole upload in one call — what the virtual-time client uses.
    /// Chunks at the 5MB S3 part size.
    pub fn upload_file(
        &self,
        session: SessionId,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
    ) -> CoreResult<(bool, u64)> {
        match self.begin_upload(session, volume, node, hash, size)? {
            UploadOutcome::Deduplicated { .. } => Ok((true, 0)),
            UploadOutcome::Started { upload } => {
                let mut remaining = size.max(1);
                while remaining > 0 {
                    let part = remaining.min(u1_blobstore::PART_SIZE);
                    self.upload_chunk(session, upload, part, None)?;
                    remaining -= part;
                }
                let committed = self.commit_upload(session, upload)?;
                Ok((false, committed.bytes_transferred))
            }
        }
    }

    /// [`Backend::upload_file`] with crash recovery: `resume` continues an
    /// interrupted upload job from its last recorded part instead of
    /// restarting the transfer. With `resume: None` and no injected
    /// faults, the call sequence (and hence the trace) is exactly that of
    /// `upload_file`: begin, chunk loop, commit.
    pub fn upload_file_with_recovery(
        &self,
        session: SessionId,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
        resume: Option<UploadId>,
    ) -> Result<(bool, u64), UploadFailure> {
        let fail =
            |resume: Option<UploadId>| move |error: CoreError| UploadFailure { resume, error };
        let (upload, received) = match resume {
            Some(upload) => {
                // If the job was reaped (week-old GC) this fails NotFound
                // with `resume: None`: nothing left to continue from.
                let job = self
                    .session(session)
                    .and_then(|h| self.store.get_uploadjob(h.user, upload))
                    .map_err(fail(None))?;
                (upload, job.bytes_received())
            }
            None => match self
                .begin_upload(session, volume, node, hash, size)
                .map_err(fail(None))?
            {
                UploadOutcome::Deduplicated { .. } => return Ok((true, 0)),
                UploadOutcome::Started { upload } => (upload, 0),
            },
        };
        let mut remaining = size.max(1).saturating_sub(received);
        while remaining > 0 {
            let part = remaining.min(u1_blobstore::PART_SIZE);
            self.upload_chunk(session, upload, part, None)
                .map_err(fail(Some(upload)))?;
            remaining -= part;
        }
        let committed = self
            .commit_upload(session, upload)
            .map_err(fail(Some(upload)))?;
        Ok((false, committed.bytes_transferred))
    }

    /// Download (GetContent). Returns (size, hash, bytes-if-live).
    pub fn download(
        &self,
        session: SessionId,
        volume: VolumeId,
        node: NodeId,
    ) -> CoreResult<(u64, ContentHash, Option<Vec<u8>>)> {
        let h = self.session(session)?;
        let d = self.rpc(h.slot, h.user, RpcKind::GetNode, 0)?;
        let row = self.store.get_node(h.user, volume, node);
        let result = match &row {
            Ok(r) => match (r.kind, r.content) {
                // Presence is answered by the content index (like the dedup
                // probe); the node row carries the size and the blob store is
                // only consulted for live bytes and read accounting.
                (NodeKind::File, Some(hash)) => {
                    if self.store.content_visible(hash) {
                        let data = self.blobs.get(hash, self.now()).and_then(|(_, d)| d);
                        Ok((r.size, hash, data))
                    } else {
                        Err(CoreError::not_found(format!("content of {node}")))
                    }
                }
                _ => Err(CoreError::invalid(format!("{node} has no content"))),
            },
            Err(e) => Err(e.clone()),
        };
        let size = result.as_ref().map(|(s, _, _)| *s).unwrap_or(0);
        self.log_storage(
            &h,
            ApiOpKind::Download,
            volume,
            Some(node),
            row.as_ref().ok().map(|r| r.kind),
            size,
            result.as_ref().ok().map(|(_, h, _)| *h),
            row.as_ref().map(|r| ext_of(&r.name)).unwrap_or(""),
            result.is_ok(),
            d + self.transfer_time(size),
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use std::sync::Arc;
    use u1_core::{Sha1, SimClock};
    use u1_trace::MemorySink;

    fn backend() -> (Arc<Backend>, Arc<MemorySink>, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        let sink = Arc::new(MemorySink::new());
        let cfg = BackendConfig {
            auth: u1_auth::AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            store_real_bytes: true,
            ..Default::default()
        };
        let backend = Arc::new(Backend::new(cfg, clock.clone(), sink.clone()));
        (backend, sink, clock)
    }

    fn open(b: &Backend, user: u64) -> SessionHandle {
        let token = b.register_user(UserId::new(user));
        b.open_session(token).unwrap()
    }

    #[test]
    fn session_lifecycle_with_auth() {
        let (b, sink, _clock) = backend();
        let h = open(&b, 1);
        assert_eq!(b.sessions.live_count(), 1);
        b.close_session(h.session).unwrap();
        assert_eq!(b.sessions.live_count(), 0);
        let recs = sink.take_sorted();
        let kinds: Vec<&str> = recs.iter().map(|r| r.payload.request_type()).collect();
        assert!(kinds.contains(&"auth"));
        assert!(kinds.contains(&"session"));
        assert!(kinds.contains(&"rpc"));
    }

    #[test]
    fn token_cache_skips_auth_round_trip_on_repeat_opens() {
        let clock = Arc::new(SimClock::new());
        let sink = Arc::new(MemorySink::new());
        let cfg = BackendConfig {
            auth: u1_auth::AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            auth_cache_ttl: Some(SimDuration::from_hours(8)),
            ..Default::default()
        };
        let b = Backend::new(cfg, clock, sink.clone());
        let user = UserId::new(1);
        let token = b.register_user(user);

        let h1 = b.open_session(token).unwrap();
        b.close_session(h1.session).unwrap();
        let h2 = b.open_session(token).unwrap();
        b.close_session(h2.session).unwrap();

        let stats = b.token_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The cache hit skips both the GetUserIdFromToken rpc record and
        // the auth record: one of each for two session opens.
        let recs = sink.take_sorted();
        let auths = recs
            .iter()
            .filter(|r| matches!(r.payload, u1_trace::Payload::Auth { .. }))
            .count();
        let token_rpcs = recs
            .iter()
            .filter(|r| {
                matches!(
                    r.payload,
                    u1_trace::Payload::Rpc {
                        rpc: RpcKind::GetUserIdFromToken,
                        ..
                    }
                )
            })
            .count();
        assert_eq!((auths, token_rpcs), (1, 1));
        assert_eq!(b.auth.stats().validations, 1);

        // Banning the user invalidates the cached token immediately.
        b.ban_user(user);
        assert!(b.open_session(token).is_err());
    }

    #[test]
    fn bad_token_is_rejected_and_logged() {
        let (b, sink, _clock) = backend();
        let bogus = u1_auth::Token([7u8; 16]);
        assert!(b.open_session(bogus).is_err());
        let recs = sink.take_sorted();
        let auth_fail = recs
            .iter()
            .any(|r| matches!(r.payload, u1_trace::Payload::Auth { success: false, .. }));
        assert!(auth_fail);
        assert_eq!(b.sessions.live_count(), 0);
    }

    #[test]
    fn full_upload_download_round_trip_with_real_bytes() {
        let (b, _sink, _clock) = backend();
        let h = open(&b, 1);
        let root = b.list_volumes(h.session).unwrap()[0].volume;
        let node = b
            .make_node(h.session, root, None, NodeKind::File, "hello.txt")
            .unwrap();
        let data = b"hello, personal cloud".to_vec();
        let hash = Sha1::digest(&data);

        match b
            .begin_upload(h.session, root, node.node, hash, data.len() as u64)
            .unwrap()
        {
            UploadOutcome::Started { upload } => {
                b.upload_chunk(h.session, upload, data.len() as u64, Some(data.clone()))
                    .unwrap();
                let committed = b.commit_upload(h.session, upload).unwrap();
                assert_eq!(committed.hash, hash);
            }
            other => panic!("expected Started, got {other:?}"),
        }
        let (size, got_hash, got_data) = b.download(h.session, root, node.node).unwrap();
        assert_eq!(size, data.len() as u64);
        assert_eq!(got_hash, hash);
        assert_eq!(got_data.unwrap(), data);
    }

    #[test]
    fn second_upload_of_same_content_deduplicates() {
        let (b, _sink, _clock) = backend();
        let h1 = open(&b, 1);
        let h2 = open(&b, 2);
        let v1 = b.list_volumes(h1.session).unwrap()[0].volume;
        let v2 = b.list_volumes(h2.session).unwrap()[0].volume;
        let n1 = b
            .make_node(h1.session, v1, None, NodeKind::File, "song.mp3")
            .unwrap();
        let n2 = b
            .make_node(h2.session, v2, None, NodeKind::File, "same.mp3")
            .unwrap();
        let hash = ContentHash::from_content_id(77);

        let (dedup, sent) = b
            .upload_file(h1.session, v1, n1.node, hash, 8_000_000)
            .unwrap();
        assert!(!dedup);
        assert_eq!(sent, 8_000_000);
        let (dedup, sent) = b
            .upload_file(h2.session, v2, n2.node, hash, 8_000_000)
            .unwrap();
        assert!(dedup, "cross-user dedup should hit");
        assert_eq!(sent, 0);
        assert!((b.store.dedup_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(b.blobs.stats().objects, 1);
    }

    #[test]
    fn incomplete_upload_cannot_commit_but_can_resume() {
        let (b, _sink, _clock) = backend();
        let h = open(&b, 1);
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let n = b
            .make_node(h.session, v, None, NodeKind::File, "big.iso")
            .unwrap();
        let hash = ContentHash::from_content_id(5);
        let size = 12 * 1024 * 1024u64;
        let upload = match b.begin_upload(h.session, v, n.node, hash, size).unwrap() {
            UploadOutcome::Started { upload } => upload,
            other => panic!("{other:?}"),
        };
        b.upload_chunk(h.session, upload, 5 << 20, None).unwrap();
        // Interrupted: commit refuses.
        assert!(b.commit_upload(h.session, upload).is_err());
        // Resume: the job remembers the received parts.
        let job = b.store.get_uploadjob(h.user, upload).unwrap();
        assert_eq!(job.bytes_received(), 5 << 20);
        b.upload_chunk(h.session, upload, 5 << 20, None).unwrap();
        b.upload_chunk(h.session, upload, size - (10 << 20), None)
            .unwrap();
        assert!(b.commit_upload(h.session, upload).is_ok());
    }

    #[test]
    fn crashed_upload_resumes_from_last_part_not_from_scratch() {
        let (b, sink, _clock) = backend();
        let h = open(&b, 1);
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let n = b
            .make_node(h.session, v, None, NodeKind::File, "video.avi")
            .unwrap();
        let hash = ContentHash::from_content_id(9);
        let size = 12 << 20; // three 5MB parts
        let upload = match b.begin_upload(h.session, v, n.node, hash, size).unwrap() {
            UploadOutcome::Started { upload } => upload,
            other => panic!("{other:?}"),
        };
        // Client crashes after the first part.
        b.upload_chunk(h.session, upload, 5 << 20, None).unwrap();
        let _ = sink.take_sorted();

        // The recovery path continues the same job: only the two missing
        // parts travel again, then the commit lands.
        let (dedup, sent) = b
            .upload_file_with_recovery(h.session, v, n.node, hash, size, Some(upload))
            .unwrap();
        assert!(!dedup);
        assert_eq!(sent, size);
        let part_rpcs = sink
            .take_sorted()
            .iter()
            .filter(|r| {
                matches!(
                    r.payload,
                    u1_trace::Payload::Rpc {
                        rpc: RpcKind::AddPartToUploadJob,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(part_rpcs, 2, "resume must not re-send the first part");
        assert!(b.blobs.contains(hash));
        assert!(b.store.get_uploadjob(h.user, upload).is_err(), "job gone");
    }

    #[test]
    fn gc_reaps_crashed_uploads_leaving_no_orphaned_parts() {
        let (b, _sink, clock) = backend();
        let h = open(&b, 1);
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let n = b
            .make_node(h.session, v, None, NodeKind::File, "orphan.iso")
            .unwrap();
        let hash = ContentHash::from_content_id(11);
        let upload = match b
            .begin_upload(h.session, v, n.node, hash, 10 << 20)
            .unwrap()
        {
            UploadOutcome::Started { upload } => upload,
            other => panic!("{other:?}"),
        };
        b.upload_chunk(h.session, upload, 5 << 20, None).unwrap();
        // The client vanishes; a week later the daily sweep finds the job.
        clock.set(u1_core::SimTime::from_days(8));
        assert_eq!(b.run_maintenance(), 1);
        let stats = b.blobs.stats();
        assert_eq!(stats.multipart_aborted, 1, "S3 multipart aborted");
        assert_eq!(
            stats.multipart_initiated,
            stats.multipart_completed + stats.multipart_aborted,
            "no multipart (and hence no part bytes) left dangling"
        );
        assert!(!b.blobs.contains(hash), "no half-written object");
        // A resume attempt after the GC finds nothing to continue from.
        let err = b
            .upload_file_with_recovery(h.session, v, n.node, hash, 10 << 20, Some(upload))
            .unwrap_err();
        assert!(err.resume.is_none(), "job reaped: nothing to resume");
    }

    #[test]
    fn push_notification_reaches_other_device_of_same_user() {
        let (b, _sink, _clock) = backend();
        let token = b.register_user(UserId::new(1));
        let h1 = b.open_session(token).unwrap();
        let h2 = b.open_session(token).unwrap(); // second device
        let (tx, rx) = crossbeam::channel::unbounded();
        b.push_router.register(h2.session, tx);
        let v = b.list_volumes(h1.session).unwrap()[0].volume;
        b.make_node(h1.session, v, None, NodeKind::File, "new.txt")
            .unwrap();
        b.pump_broker();
        let pushes = u1_notify::drain(&rx);
        assert_eq!(pushes.len(), 1, "second device must be pushed");
        assert!(matches!(pushes[0], Push::VolumeChanged { .. }));
    }

    #[test]
    fn push_notification_reaches_share_recipient() {
        let (b, _sink, _clock) = backend();
        let h1 = open(&b, 1);
        let h2 = open(&b, 2);
        let (tx, rx) = crossbeam::channel::unbounded();
        b.push_router.register(h2.session, tx);
        let udf = b.create_udf(h1.session, "Shared").unwrap();
        b.create_share(h1.user, udf.volume, h2.user).unwrap();
        // Recipient got VolumeCreated.
        assert!(matches!(
            u1_notify::drain(&rx)[..],
            [Push::VolumeCreated { .. }]
        ));
        // A change by the owner lands as VolumeChanged at the recipient.
        b.make_node(h1.session, udf.volume, None, NodeKind::File, "x.pdf")
            .unwrap();
        b.pump_broker();
        let pushes = u1_notify::drain(&rx);
        assert!(
            pushes
                .iter()
                .any(|p| matches!(p, Push::VolumeChanged { .. })),
            "{pushes:?}"
        );
    }

    #[test]
    fn unlink_releases_unreferenced_content_from_blobstore() {
        let (b, _sink, _clock) = backend();
        let h = open(&b, 1);
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let n = b
            .make_node(h.session, v, None, NodeKind::File, "f.bin")
            .unwrap();
        let hash = ContentHash::from_content_id(3);
        b.upload_file(h.session, v, n.node, hash, 1000).unwrap();
        assert!(b.blobs.contains(hash));
        b.unlink(h.session, v, n.node).unwrap();
        assert!(!b.blobs.contains(hash), "S3 object deleted with last ref");
    }

    #[test]
    fn get_delta_tracks_changes() {
        let (b, _sink, _clock) = backend();
        let h = open(&b, 1);
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let (gen0, delta) = b.get_delta(h.session, v, 0).unwrap();
        assert_eq!(gen0, 0);
        assert!(delta.is_empty());
        b.make_node(h.session, v, None, NodeKind::Directory, "docs")
            .unwrap();
        let (gen1, delta) = b.get_delta(h.session, v, gen0).unwrap();
        assert_eq!(gen1, 1);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].name, "docs");
    }

    #[test]
    fn maintenance_reaps_stale_uploadjobs() {
        let (b, _sink, clock) = backend();
        let h = open(&b, 1);
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let n = b
            .make_node(h.session, v, None, NodeKind::File, "stale.bin")
            .unwrap();
        let upload = match b
            .begin_upload(
                h.session,
                v,
                n.node,
                ContentHash::from_content_id(1),
                10 << 20,
            )
            .unwrap()
        {
            UploadOutcome::Started { upload } => upload,
            other => panic!("{other:?}"),
        };
        b.upload_chunk(h.session, upload, 5 << 20, None).unwrap();
        clock.set(u1_core::SimTime::from_days(8));
        assert_eq!(b.run_maintenance(), 1);
        assert!(b.store.get_uploadjob(h.user, upload).is_err());
        assert_eq!(b.blobs.stats().multipart_aborted, 1);
    }

    #[test]
    fn ban_user_removes_sessions_content_and_token() {
        let (b, _sink, _clock) = backend();
        let token = b.register_user(UserId::new(66));
        let h = b.open_session(token).unwrap();
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let n = b
            .make_node(h.session, v, None, NodeKind::File, "warez.zip")
            .unwrap();
        let hash = ContentHash::from_content_id(666);
        b.upload_file(h.session, v, n.node, hash, 50_000_000)
            .unwrap();

        let evicted = b.ban_user(UserId::new(66));
        assert_eq!(evicted, 1);
        assert_eq!(b.sessions.live_count(), 0);
        assert!(!b.blobs.contains(hash), "fraudulent content deleted");
        assert!(b.open_session(token).is_err(), "token revoked");
    }

    #[test]
    fn auth_outage_serves_stale_cache_entries_and_rejects_strangers() {
        use u1_core::{FaultPlan, SimDuration, SimTime};
        let clock = Arc::new(SimClock::new());
        let sink = Arc::new(MemorySink::new());
        let cfg = BackendConfig {
            auth: u1_auth::AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            auth_cache_ttl: Some(SimDuration::from_hours(8)),
            fault: FaultPlan {
                auth_outages: 1,
                auth_outage_len: SimDuration::from_hours(2),
                horizon: SimDuration::from_days(1),
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let b = Backend::new(cfg, clock.clone(), sink);
        let probe = |want_down: bool| {
            (0..24 * 60)
                .map(|m| SimTime::from_secs(m * 60))
                .find(|t| b.faults.auth_down(*t) == want_down)
                .expect("no matching minute in the day")
        };
        let (t_up, t_down) = (probe(false), probe(true));

        // While the auth service is up, a session open populates the cache.
        clock.set(t_up);
        let token = b.register_user(UserId::new(1));
        let h = b.open_session(token).unwrap();
        b.close_session(h.session).unwrap();

        // During the outage the memcached tier answers for the known
        // client; a token it has never seen has nowhere to go.
        clock.set(t_down);
        let h = b.open_session(token).unwrap();
        assert_eq!(h.user, UserId::new(1));
        b.close_session(h.session).unwrap();
        assert_eq!(b.fault_stats().auth_fallbacks, 1);
        let stranger = b.register_user(UserId::new(2));
        assert!(b.open_session(stranger).is_err());
        assert_eq!(b.sessions.live_count(), 0);
        u1_core::fault::clear_tags();
    }

    #[test]
    fn dropped_fanout_is_remembered_for_next_session_rescan() {
        use u1_core::FaultPlan;
        let clock = Arc::new(SimClock::new());
        let sink = Arc::new(MemorySink::new());
        let cfg = BackendConfig {
            auth: u1_auth::AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            fault: FaultPlan {
                notify_drop_p: 1.0, // every fan-out dies in the broker
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let b = Backend::new(cfg, clock, sink);
        let token = b.register_user(UserId::new(1));
        let h1 = b.open_session(token).unwrap();
        let h2 = b.open_session(token).unwrap(); // second device
        let (tx, rx) = crossbeam::channel::unbounded();
        b.push_router.register(h2.session, tx);
        let v = b.list_volumes(h1.session).unwrap()[0].volume;
        b.make_node(h1.session, v, None, NodeKind::File, "lost.txt")
            .unwrap();
        b.pump_broker();
        assert!(
            u1_notify::drain(&rx).is_empty(),
            "the push must have been dropped"
        );
        assert!(b.fault_stats().notify_dropped >= 1);
        // The owner's devices learn about the change at next session open.
        assert_eq!(b.take_missed_notify(UserId::new(1)), vec![v]);
        assert!(b.take_missed_notify(UserId::new(1)).is_empty(), "drained");
        u1_core::fault::clear_tags();
    }

    #[test]
    fn failed_ops_are_logged_as_failures() {
        let (b, sink, _clock) = backend();
        let h = open(&b, 1);
        let v = b.list_volumes(h.session).unwrap()[0].volume;
        let _ = sink.take_sorted();
        assert!(b.download(h.session, v, NodeId::new(424242)).is_err());
        let recs = sink.take_sorted();
        assert!(recs.iter().any(|r| matches!(
            &r.payload,
            u1_trace::Payload::Storage {
                op: ApiOpKind::Download,
                success: false,
                ..
            }
        )));
    }
}
