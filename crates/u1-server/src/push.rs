//! Push-notification routing (§3.4.2).
//!
//! Changes that affect other online clients are pushed over their session
//! connections. The API process handling the change delivers to its own
//! sessions directly; sessions held by other processes are reached through
//! the broker (the RabbitMQ stand-in). Counters distinguish the two paths
//! so the same-process shortcut of footnote 4 is observable.

use crate::cluster::Slot;
use crossbeam::channel::Sender;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use u1_core::{SessionId, UserId, VolumeId};
use u1_proto::msg::Push;

/// The event API servers exchange through the broker: "deliver this push to
/// these users' sessions".
#[derive(Debug, Clone)]
pub struct VolumeEvent {
    /// Volume that changed.
    pub volume: VolumeId,
    /// Users whose clients should be notified.
    pub targets: Vec<UserId>,
    /// The session that caused the change (not re-notified).
    pub origin_session: SessionId,
    /// The process that handled the change.
    pub origin: Slot,
    /// The push to deliver.
    pub push: Push,
}

/// Per-session delivery endpoints plus delivery statistics.
#[derive(Debug, Default)]
pub struct PushRouter {
    /// Sessions that asked to receive pushes (live TCP writers or sim-mode
    /// client mailboxes). Cold sessions simply never register.
    endpoints: RwLock<HashMap<SessionId, Sender<Push>>>,
    delivered_local: AtomicU64,
    delivered_remote: AtomicU64,
    /// Pushes addressed to sessions with no registered endpoint.
    unroutable: AtomicU64,
}

impl PushRouter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a delivery endpoint for a session.
    pub fn register(&self, session: SessionId, tx: Sender<Push>) {
        self.endpoints.write().insert(session, tx);
    }

    /// Unregisters on session close.
    pub fn unregister(&self, session: SessionId) {
        self.endpoints.write().remove(&session);
    }

    /// Delivers a push to one session. `local` records which path was used
    /// (same-process fast path vs broker).
    pub fn deliver(&self, session: SessionId, push: Push, local: bool) {
        let sent = self
            .endpoints
            .read()
            .get(&session)
            .map(|tx| tx.send(push).is_ok())
            .unwrap_or(false);
        if !sent {
            self.unroutable.fetch_add(1, Ordering::Relaxed);
        } else if local {
            self.delivered_local.fetch_add(1, Ordering::Relaxed);
        } else {
            self.delivered_remote.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// (delivered via same-process path, delivered via broker, unroutable)
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.delivered_local.load(Ordering::Relaxed),
            self.delivered_remote.load(Ordering::Relaxed),
            self.unroutable.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn push() -> Push {
        Push::VolumeChanged {
            volume: VolumeId::new(1),
            generation: 2,
        }
    }

    #[test]
    fn delivery_reaches_registered_endpoint() {
        let router = PushRouter::new();
        let (tx, rx) = unbounded();
        router.register(SessionId::new(1), tx);
        router.deliver(SessionId::new(1), push(), true);
        assert_eq!(rx.len(), 1);
        assert_eq!(router.stats(), (1, 0, 0));
    }

    #[test]
    fn unregistered_sessions_count_unroutable() {
        let router = PushRouter::new();
        router.deliver(SessionId::new(9), push(), false);
        assert_eq!(router.stats(), (0, 0, 1));
    }

    #[test]
    fn unregister_stops_delivery() {
        let router = PushRouter::new();
        let (tx, rx) = unbounded();
        router.register(SessionId::new(1), tx);
        router.unregister(SessionId::new(1));
        router.deliver(SessionId::new(1), push(), false);
        assert!(rx.is_empty());
        assert_eq!(router.stats(), (0, 0, 1));
    }

    #[test]
    fn local_and_remote_paths_are_counted_separately() {
        let router = PushRouter::new();
        let (tx, _rx) = unbounded();
        router.register(SessionId::new(1), tx);
        router.deliver(SessionId::new(1), push(), true);
        router.deliver(SessionId::new(1), push(), false);
        assert_eq!(router.stats(), (1, 1, 0));
    }
}
