//! Cluster topology: machines and API/RPC processes, and session placement.
//!
//! Production U1 ran "6 separate racked servers" with "normally 8–16
//! processes per physical machine" (§3.4), and "a session starts in the
//! least loaded machine and lives in the same node until it finishes" (§4).
//! That placement policy, combined with skewed/bursty user activity, is
//! what produces the short-window load imbalance of Fig. 14 — so we
//! reproduce it literally.

use parking_lot::Mutex;
use u1_core::{MachineId, ProcessId};

/// Topology parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Physical API/RPC machines (paper: 6).
    pub machines: u16,
    /// Server processes per machine (paper: 8–16).
    pub processes_per_machine: u16,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machines: 6,
            processes_per_machine: 12,
        }
    }
}

/// A (machine, process) slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    pub machine: MachineId,
    pub process: ProcessId,
}

#[derive(Debug)]
struct SlotState {
    slot: Slot,
    active_sessions: u64,
    total_sessions: u64,
}

/// Tracks per-process load and places sessions.
#[derive(Debug)]
pub struct Cluster {
    slots: Mutex<Vec<SlotState>>,
    config: ClusterConfig,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.machines > 0 && config.processes_per_machine > 0);
        let mut slots = Vec::new();
        for m in 0..config.machines {
            for p in 0..config.processes_per_machine {
                slots.push(SlotState {
                    slot: Slot {
                        machine: MachineId::new(m),
                        process: ProcessId::new(p),
                    },
                    active_sessions: 0,
                    total_sessions: 0,
                });
            }
        }
        Self {
            slots: Mutex::new(slots),
            config,
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn slot_count(&self) -> usize {
        (self.config.machines as usize) * (self.config.processes_per_machine as usize)
    }

    /// Places a new session on the least-loaded process (§4's policy). Ties
    /// break on slot order, which keeps placement deterministic.
    pub fn place_session(&self) -> Slot {
        let mut slots = self.slots.lock();
        let best = slots
            .iter_mut()
            .min_by_key(|s| s.active_sessions)
            .expect("cluster has slots");
        best.active_sessions += 1;
        best.total_sessions += 1;
        best.slot
    }

    /// Releases a slot when its session closes.
    pub fn release_session(&self, slot: Slot) {
        let mut slots = self.slots.lock();
        if let Some(s) = slots.iter_mut().find(|s| s.slot == slot) {
            s.active_sessions = s.active_sessions.saturating_sub(1);
        }
    }

    /// Current active sessions per slot (diagnostics).
    pub fn active_sessions(&self) -> Vec<(Slot, u64)> {
        self.slots
            .lock()
            .iter()
            .map(|s| (s.slot, s.active_sessions))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_prefers_least_loaded() {
        let cluster = Cluster::new(ClusterConfig {
            machines: 2,
            processes_per_machine: 2,
        });
        // First four placements land on four distinct slots.
        let mut seen = std::collections::HashSet::new();
        let slots: Vec<Slot> = (0..4).map(|_| cluster.place_session()).collect();
        for s in &slots {
            assert!(seen.insert(*s));
        }
        // Fifth reuses some slot (all at load 1).
        let fifth = cluster.place_session();
        assert!(seen.contains(&fifth));
        // Release two sessions from slot[0]; next placement goes there.
        cluster.release_session(slots[0]);
        // slot[0] may or may not have hosted `fifth`; place and verify the
        // chosen slot has minimal load.
        let placed = cluster.place_session();
        let loads = cluster.active_sessions();
        let placed_load = loads.iter().find(|(s, _)| *s == placed).unwrap().1;
        assert!(loads.iter().all(|(_, l)| *l + 1 >= placed_load));
    }

    #[test]
    fn release_is_idempotent_at_zero() {
        let cluster = Cluster::new(ClusterConfig {
            machines: 1,
            processes_per_machine: 1,
        });
        let slot = cluster.place_session();
        cluster.release_session(slot);
        cluster.release_session(slot); // no underflow panic
        assert_eq!(cluster.active_sessions()[0].1, 0);
    }

    #[test]
    fn slot_count_matches_topology() {
        let cluster = Cluster::new(ClusterConfig::default());
        assert_eq!(cluster.slot_count(), 6 * 12);
    }
}
