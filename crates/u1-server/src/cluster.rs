//! Cluster topology: machines and API/RPC processes, and session placement.
//!
//! Production U1 ran "6 separate racked servers" with "normally 8–16
//! processes per physical machine" (§3.4), and "a session starts in the
//! least loaded machine and lives in the same node until it finishes" (§4).
//! That placement policy, combined with skewed/bursty user activity, is
//! what produces the short-window load imbalance of Fig. 14 — so we
//! reproduce it literally.
//!
//! Load accounting is kept **per partition origin** (see
//! [`u1_core::partition`]): each driver partition places its sessions
//! against its own private view of the slot loads. This removes the single
//! global placement lock from the parallel driver's hot path, and — more
//! importantly — makes every placement a pure function of that partition's
//! own deterministic history, so slot assignments (and hence the
//! machine/process columns of the trace) do not depend on how many worker
//! threads the partitions were packed onto. Threads without a partition
//! context share the origin-0 view and see exactly the legacy behavior.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use u1_core::{MachineId, ProcessId};

/// Topology parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Physical API/RPC machines (paper: 6).
    pub machines: u16,
    /// Server processes per machine (paper: 8–16).
    pub processes_per_machine: u16,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machines: 6,
            processes_per_machine: 12,
        }
    }
}

/// A (machine, process) slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    pub machine: MachineId,
    pub process: ProcessId,
}

#[derive(Debug, Clone, Copy, Default)]
struct SlotLoad {
    active_sessions: u64,
    total_sessions: u64,
}

/// Tracks per-process load and places sessions.
#[derive(Debug)]
pub struct Cluster {
    slots: Vec<Slot>,
    /// One private load view per partition origin, created on first use.
    views: RwLock<HashMap<u32, Arc<Mutex<Vec<SlotLoad>>>>>,
    config: ClusterConfig,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.machines > 0 && config.processes_per_machine > 0);
        let mut slots = Vec::new();
        for m in 0..config.machines {
            for p in 0..config.processes_per_machine {
                slots.push(Slot {
                    machine: MachineId::new(m),
                    process: ProcessId::new(p),
                });
            }
        }
        Self {
            slots,
            views: RwLock::new(HashMap::new()),
            config,
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn slot_count(&self) -> usize {
        (self.config.machines as usize) * (self.config.processes_per_machine as usize)
    }

    fn view(&self, origin: u32) -> Arc<Mutex<Vec<SlotLoad>>> {
        if let Some(v) = self.views.read().get(&origin) {
            return Arc::clone(v);
        }
        let mut views = self.views.write();
        Arc::clone(
            views.entry(origin).or_insert_with(|| {
                Arc::new(Mutex::new(vec![SlotLoad::default(); self.slots.len()]))
            }),
        )
    }

    /// Places a new session on the least-loaded process (§4's policy)
    /// according to the calling partition's own view. Ties break on slot
    /// order, which keeps placement deterministic.
    pub fn place_session(&self) -> Slot {
        let view = self.view(u1_core::partition::current_origin());
        let mut loads = view.lock();
        // Manual argmin rather than `min_by_key(..).expect(..)`: the
        // constructor guarantees ≥ 1 slot, and U1L001 keeps unwrap-style
        // panic paths out of the serving tiers.
        let mut idx = 0;
        for i in 1..loads.len() {
            if loads[i].active_sessions < loads[idx].active_sessions {
                idx = i;
            }
        }
        if let Some(best) = loads.get_mut(idx) {
            best.active_sessions += 1;
            best.total_sessions += 1;
        }
        self.slots.get(idx).copied().unwrap_or(Slot {
            machine: MachineId::new(0),
            process: ProcessId::new(0),
        })
    }

    /// Releases a slot when its session closes. Decrements the calling
    /// partition's view; a release from a different origin than the
    /// placement (e.g. a coordinator-driven ban) saturates at zero.
    pub fn release_session(&self, slot: Slot) {
        let view = self.view(u1_core::partition::current_origin());
        let mut loads = view.lock();
        if let Some(idx) = self.slots.iter().position(|s| *s == slot) {
            loads[idx].active_sessions = loads[idx].active_sessions.saturating_sub(1);
        }
    }

    /// Current active sessions per slot, summed over every partition's view
    /// (diagnostics).
    pub fn active_sessions(&self) -> Vec<(Slot, u64)> {
        let mut totals = vec![0u64; self.slots.len()];
        for view in self.views.read().values() {
            for (t, l) in totals.iter_mut().zip(view.lock().iter()) {
                *t += l.active_sessions;
            }
        }
        self.slots.iter().copied().zip(totals).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_prefers_least_loaded() {
        let cluster = Cluster::new(ClusterConfig {
            machines: 2,
            processes_per_machine: 2,
        });
        // First four placements land on four distinct slots.
        let mut seen = std::collections::HashSet::new();
        let slots: Vec<Slot> = (0..4).map(|_| cluster.place_session()).collect();
        for s in &slots {
            assert!(seen.insert(*s));
        }
        // Fifth reuses some slot (all at load 1).
        let fifth = cluster.place_session();
        assert!(seen.contains(&fifth));
        // Release two sessions from slot[0]; next placement goes there.
        cluster.release_session(slots[0]);
        // slot[0] may or may not have hosted `fifth`; place and verify the
        // chosen slot has minimal load.
        let placed = cluster.place_session();
        let loads = cluster.active_sessions();
        let placed_load = loads.iter().find(|(s, _)| *s == placed).unwrap().1;
        assert!(loads.iter().all(|(_, l)| *l + 1 >= placed_load));
    }

    #[test]
    fn release_is_idempotent_at_zero() {
        let cluster = Cluster::new(ClusterConfig {
            machines: 1,
            processes_per_machine: 1,
        });
        let slot = cluster.place_session();
        cluster.release_session(slot);
        cluster.release_session(slot); // no underflow panic
        assert_eq!(cluster.active_sessions()[0].1, 0);
    }

    #[test]
    fn slot_count_matches_topology() {
        let cluster = Cluster::new(ClusterConfig::default());
        assert_eq!(cluster.slot_count(), 6 * 12);
    }

    #[test]
    fn origins_place_against_independent_views() {
        let cluster = Cluster::new(ClusterConfig {
            machines: 1,
            processes_per_machine: 4,
        });
        // Origin 0 (no ctx) fills two slots.
        let a = cluster.place_session();
        let b = cluster.place_session();
        assert_ne!(a, b);
        // A different origin starts from an empty view: its first placement
        // is slot 0 again, regardless of origin 0's load.
        let ctx = u1_core::PartitionCtx::new(7);
        let _guard = u1_core::partition::install(ctx);
        let c = cluster.place_session();
        assert_eq!(c, a);
        // Diagnostics sum the views.
        let total: u64 = cluster.active_sessions().iter().map(|(_, l)| *l).sum();
        assert_eq!(total, 3);
    }
}
