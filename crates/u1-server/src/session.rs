//! The session table: one entry per live storage-protocol session.
//!
//! Both maps are striped so concurrent driver partitions do not serialize on
//! a single `RwLock` — `count_op` takes a write lock on every storage
//! operation, which made a global map the hottest lock in the server under
//! the parallel workload driver.

use crate::cluster::Slot;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use u1_core::{SessionId, SimTime, UserId};

/// Number of independent lock stripes for the live/by-user maps.
const SESSION_STRIPES: usize = 16;

/// A live session's bookkeeping.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    pub session: SessionId,
    pub user: UserId,
    pub slot: Slot,
    pub opened_at: SimTime,
}

#[derive(Debug)]
struct SessionEntry {
    handle: SessionHandle,
    ops: u64,
    data_ops: u64,
}

/// Thread-safe session registry.
#[derive(Debug)]
pub struct SessionTable {
    next_id: AtomicU64,
    live: Vec<RwLock<HashMap<SessionId, SessionEntry>>>,
    by_user: Vec<RwLock<HashMap<UserId, Vec<SessionId>>>>,
}

impl Default for SessionTable {
    fn default() -> Self {
        Self {
            next_id: AtomicU64::new(0),
            live: (0..SESSION_STRIPES).map(|_| RwLock::default()).collect(),
            by_user: (0..SESSION_STRIPES).map(|_| RwLock::default()).collect(),
        }
    }
}

impl SessionTable {
    pub fn new() -> Self {
        Self::default()
    }

    fn live_stripe(&self, session: SessionId) -> &RwLock<HashMap<SessionId, SessionEntry>> {
        &self.live[session.raw() as usize % SESSION_STRIPES]
    }

    fn user_stripe(&self, user: UserId) -> &RwLock<HashMap<UserId, Vec<SessionId>>> {
        &self.by_user[user.raw() as usize % SESSION_STRIPES]
    }

    /// Registers a new session.
    ///
    /// When the calling thread carries a [`u1_core::PartitionCtx`], the
    /// session id is derived from the partition's own counter — ids are then
    /// a pure function of (origin, per-origin arrival order), independent of
    /// how partitions are packed onto worker threads. Without a context the
    /// legacy global counter is used.
    pub fn open(&self, user: UserId, slot: Slot, now: SimTime) -> SessionHandle {
        let session = match u1_core::partition::next_session_id() {
            Some(id) => SessionId::new(id),
            None => SessionId::new(self.next_id.fetch_add(1, Ordering::Relaxed) + 1),
        };
        let handle = SessionHandle {
            session,
            user,
            slot,
            opened_at: now,
        };
        self.live_stripe(session).write().insert(
            session,
            SessionEntry {
                handle: handle.clone(),
                ops: 0,
                data_ops: 0,
            },
        );
        self.user_stripe(user)
            .write()
            .entry(user)
            .or_default()
            .push(session);
        handle
    }

    /// Removes a session; returns its handle and (ops, data_ops) counters.
    pub fn close(&self, session: SessionId) -> Option<(SessionHandle, u64, u64)> {
        let entry = self.live_stripe(session).write().remove(&session)?;
        let mut by_user = self.user_stripe(entry.handle.user).write();
        if let Some(v) = by_user.get_mut(&entry.handle.user) {
            v.retain(|s| *s != session);
            if v.is_empty() {
                by_user.remove(&entry.handle.user);
            }
        }
        Some((entry.handle, entry.ops, entry.data_ops))
    }

    pub fn get(&self, session: SessionId) -> Option<SessionHandle> {
        self.live_stripe(session)
            .read()
            .get(&session)
            .map(|e| e.handle.clone())
    }

    /// Counts an operation against a session. `data` marks data-management
    /// operations (the active/cold session distinction of §7.3).
    pub fn count_op(&self, session: SessionId, data: bool) {
        if let Some(e) = self.live_stripe(session).write().get_mut(&session) {
            e.ops += 1;
            if data {
                e.data_ops += 1;
            }
        }
    }

    /// All live sessions of a user (push targets — a user may run several
    /// devices).
    pub fn sessions_of(&self, user: UserId) -> Vec<SessionHandle> {
        let sids: Vec<SessionId> = self
            .user_stripe(user)
            .read()
            .get(&user)
            .cloned()
            .unwrap_or_default();
        sids.into_iter().filter_map(|sid| self.get(sid)).collect()
    }

    pub fn live_count(&self) -> usize {
        self.live.iter().map(|s| s.read().len()).sum()
    }

    /// Force-closes every session of a user (the §5.4 manual DDoS
    /// countermeasure). Returns the closed handles.
    pub fn evict_user(&self, user: UserId) -> Vec<SessionHandle> {
        let sids: Vec<SessionId> = self
            .user_stripe(user)
            .read()
            .get(&user)
            .cloned()
            .unwrap_or_default();
        sids.into_iter()
            .filter_map(|sid| self.close(sid).map(|(h, _, _)| h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use u1_core::{MachineId, ProcessId};

    fn slot() -> Slot {
        Slot {
            machine: MachineId::new(0),
            process: ProcessId::new(0),
        }
    }

    #[test]
    fn open_close_lifecycle() {
        let t = SessionTable::new();
        let h = t.open(UserId::new(1), slot(), SimTime::ZERO);
        assert_eq!(t.live_count(), 1);
        assert!(t.get(h.session).is_some());
        t.count_op(h.session, true);
        t.count_op(h.session, false);
        let (handle, ops, data_ops) = t.close(h.session).unwrap();
        assert_eq!(handle.user, UserId::new(1));
        assert_eq!((ops, data_ops), (2, 1));
        assert!(t.close(h.session).is_none());
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn multi_device_sessions_index_by_user() {
        let t = SessionTable::new();
        let u = UserId::new(9);
        let h1 = t.open(u, slot(), SimTime::ZERO);
        let h2 = t.open(u, slot(), SimTime::ZERO);
        assert_ne!(h1.session, h2.session);
        assert_eq!(t.sessions_of(u).len(), 2);
        t.close(h1.session);
        assert_eq!(t.sessions_of(u).len(), 1);
    }

    #[test]
    fn evict_user_closes_everything() {
        let t = SessionTable::new();
        let u = UserId::new(4);
        t.open(u, slot(), SimTime::ZERO);
        t.open(u, slot(), SimTime::ZERO);
        t.open(UserId::new(5), slot(), SimTime::ZERO);
        let evicted = t.evict_user(u);
        assert_eq!(evicted.len(), 2);
        assert_eq!(t.live_count(), 1);
        assert!(t.sessions_of(u).is_empty());
    }

    #[test]
    fn partition_ctx_derives_namespaced_session_ids() {
        let t = SessionTable::new();
        let ctx = u1_core::PartitionCtx::new(3);
        let _guard = u1_core::partition::install(ctx);
        let h = t.open(UserId::new(1), slot(), SimTime::ZERO);
        // Origin 3 => ids live in the (3 + 1) << 40 namespace.
        assert_eq!(h.session.raw() >> 40, 4);
        assert!(t.get(h.session).is_some());
        assert!(t.close(h.session).is_some());
    }
}
