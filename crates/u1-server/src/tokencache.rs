//! The API tier's token cache — the paper's memcached analogue (§3.2,
//! §3.4.1: "during the session, the token of that client is cached to avoid
//! overloading the authentication service"; the architecture diagram puts a
//! memcached tier between the API processes and the auth service).
//!
//! Sharded by token bytes so concurrent API processes resolving different
//! tokens never contend on one lock, TTL-aware (memcached entries expire),
//! with hit/miss counters surfaced in the workload driver's report.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use u1_auth::Token;
use u1_core::{SimDuration, SimTime, UserId};

const SHARDS: usize = 16;

/// Hit/miss counters of a [`TokenCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenCacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl TokenCacheStats {
    /// Hit rate in `[0, 1]`; 0 when the cache saw no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, TTL-aware token → user cache.
pub struct TokenCache {
    ttl: SimDuration,
    shards: Vec<Mutex<HashMap<Token, (UserId, SimTime)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TokenCache {
    pub fn new(ttl: SimDuration) -> Self {
        Self {
            ttl,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Tokens are uniformly random 16-byte strings, so any fixed 8 bytes
    /// spread evenly over the shards.
    fn shard_of(&self, token: &Token) -> usize {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&token.0[..8]);
        (u64::from_le_bytes(raw) % self.shards.len() as u64) as usize
    }

    /// Looks up a token, counting hit/miss. Expired entries are evicted
    /// lazily, on the lookup that finds them stale.
    pub fn lookup(&self, token: Token, now: SimTime) -> Option<UserId> {
        let mut shard = self.shards[self.shard_of(&token)].lock();
        match shard.get(&token) {
            Some((user, cached_at)) if now.since(*cached_at) <= self.ttl => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(*user)
            }
            Some(_) => {
                shard.remove(&token);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Degraded-mode lookup for auth-service outages: returns whatever the
    /// cache still holds for the token, *ignoring the TTL* and without
    /// evicting or touching the hit/miss counters. The real system's
    /// memcached tier kept serving stale entries while the SSO service was
    /// down; sessions opened this way are counted as `auth_fallbacks` by
    /// the backend.
    pub fn lookup_stale(&self, token: Token) -> Option<UserId> {
        self.shards[self.shard_of(&token)]
            .lock()
            .get(&token)
            .map(|(user, _)| *user)
    }

    pub fn insert(&self, token: Token, user: UserId, now: SimTime) {
        self.shards[self.shard_of(&token)]
            .lock()
            .insert(token, (user, now));
    }

    /// Drops a token (auth-side revocation must propagate here, or a banned
    /// user could keep opening sessions until the TTL runs out).
    pub fn invalidate(&self, token: Token) -> bool {
        self.shards[self.shard_of(&token)]
            .lock()
            .remove(&token)
            .is_some()
    }

    pub fn stats(&self) -> TokenCacheStats {
        TokenCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_within_ttl_only() {
        let c = TokenCache::new(SimDuration::from_hours(8));
        let t = Token([1u8; 16]);
        assert_eq!(c.lookup(t, SimTime::ZERO), None);
        c.insert(t, UserId::new(2), SimTime::ZERO);
        assert_eq!(c.lookup(t, SimTime::from_hours(1)), Some(UserId::new(2)));
        assert_eq!(c.lookup(t, SimTime::from_hours(9)), None); // expired + evicted
        assert!(c.is_empty());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stale_lookup_serves_expired_entries_without_counting() {
        let c = TokenCache::new(SimDuration::from_hours(1));
        let t = Token([3u8; 16]);
        assert_eq!(c.lookup_stale(t), None);
        c.insert(t, UserId::new(5), SimTime::ZERO);
        // Way past the TTL: the fresh path would evict, the stale path
        // serves.
        assert_eq!(c.lookup_stale(t), Some(UserId::new(5)));
        assert_eq!(c.stats(), TokenCacheStats::default());
        assert_eq!(c.len(), 1, "stale lookup must not evict");
    }

    #[test]
    fn invalidate_cuts_access_immediately() {
        let c = TokenCache::new(SimDuration::from_hours(8));
        let t = Token([7u8; 16]);
        c.insert(t, UserId::new(9), SimTime::ZERO);
        assert!(c.invalidate(t));
        assert!(!c.invalidate(t));
        assert_eq!(c.lookup(t, SimTime::ZERO), None);
    }

    #[test]
    fn tokens_spread_over_shards() {
        let c = TokenCache::new(SimDuration::from_hours(1));
        for i in 0..64u8 {
            let mut raw = [0u8; 16];
            raw[0] = i;
            c.insert(Token(raw), UserId::new(i as u64), SimTime::ZERO);
        }
        assert_eq!(c.len(), 64);
        let populated = c.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(populated > 1, "all 64 tokens landed in one shard");
    }
}
