//! [`Backend`]: ownership and wiring of every back-end component, plus the
//! cross-cutting helpers (RPC execution with service-time sampling and
//! tracing, push fan-out, maintenance, abuse response).

use crate::cluster::{Cluster, ClusterConfig, Slot};
use crate::push::{PushRouter, VolumeEvent};
use crate::session::{SessionHandle, SessionTable};
use crate::tokencache::{TokenCache, TokenCacheStats};
use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use u1_auth::{AuthConfig, AuthService};
use u1_blobstore::BlobStore;
use u1_core::fault::{self, ErrorClass, FaultInjector, FaultPlan};
use u1_core::{
    ApiOpKind, Clock, ContentHash, CoreError, CoreResult, NodeId, NodeKind, RpcKind, SimDuration,
    SimTime, UserId, VolumeId,
};
use u1_metastore::{LatencyModel, LatencyProfile, MetaStore, StoreConfig};
use u1_notify::{Broker, SubscriberId};
use u1_proto::msg::Push;
use u1_trace::{Payload, TraceRecord, TraceSink};

/// Everything tunable about the back-end.
#[derive(Clone)]
pub struct BackendConfig {
    pub cluster: ClusterConfig,
    pub store: StoreConfig,
    pub auth: AuthConfig,
    pub latency: LatencyProfile,
    /// Root seed for every stochastic model inside the back-end.
    pub seed: u64,
    /// Effective client↔S3 forwarding bandwidth used to account transfer
    /// time into upload/download durations (bytes/second).
    pub transfer_bandwidth: u64,
    /// Keep real object bytes (live mode) or sizes only (measurement mode).
    pub store_real_bytes: bool,
    /// TTL of the API tier's token cache (the paper's memcached tier,
    /// §3.2). `None` disables the cache: every session open then takes the
    /// full `GetUserIdFromToken` round trip, which keeps traces bit-for-bit
    /// identical to pre-cache builds.
    pub auth_cache_ttl: Option<SimDuration>,
    /// Deterministic fault-injection plan ([`FaultPlan::none`] by default).
    /// With the default plan no fault RNG is ever materialized and every
    /// trace stays bit-for-bit identical to a build without the fault
    /// plane.
    pub fault: FaultPlan,
}

impl Default for BackendConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterConfig::default(),
            store: StoreConfig::default(),
            auth: AuthConfig::default(),
            latency: LatencyProfile::default(),
            seed: 0xD1CE,
            transfer_bandwidth: 10 * 1024 * 1024,
            store_real_bytes: false,
            auth_cache_ttl: None,
            fault: FaultPlan::none(),
        }
    }
}

/// Fault-plane counters owned by the backend, read once at the end of a
/// run (like the token-cache stats) rather than summed per partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendFaultStats {
    /// Injected DAL RPC timeouts (each one is a failed attempt; most are
    /// absorbed by the server-side retry loop).
    pub rpc_timeouts: u64,
    /// Backoff-retries the API→DAL path performed after a timeout.
    pub rpc_retries: u64,
    /// Sessions opened from a stale token-cache entry while the auth
    /// service was down.
    pub auth_fallbacks: u64,
    /// Fan-out notifications lost in the notification plane.
    pub notify_dropped: u64,
}

/// Per-partition-origin latency models.
///
/// Service-time sampling is stochastic: with a single shared model, the
/// interleaving of concurrent driver partitions would decide which RPC
/// draws which sample, making traces depend on worker count. Each origin
/// gets its own independently seeded [`LatencyModel`]; origin 0 (threads
/// without a partition context) keeps the legacy seed bit-for-bit.
pub(crate) struct LatencyBank {
    profile: LatencyProfile,
    seed: u64,
    models: RwLock<HashMap<u32, Arc<Mutex<LatencyModel>>>>,
}

impl LatencyBank {
    fn new(profile: LatencyProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            models: RwLock::new(HashMap::new()),
        }
    }

    pub(crate) fn current(&self) -> Arc<Mutex<LatencyModel>> {
        let origin = u1_core::partition::current_origin();
        if let Some(m) = self.models.read().get(&origin) {
            return Arc::clone(m);
        }
        let mut models = self.models.write();
        Arc::clone(models.entry(origin).or_insert_with(|| {
            let seed = if origin == 0 {
                self.seed
            } else {
                u1_core::rngx::derive_seed(self.seed, "latency-origin", origin as u64)
            };
            Arc::new(Mutex::new(LatencyModel::new(self.profile.clone(), seed)))
        }))
    }
}

/// The U1 back-end.
pub struct Backend {
    pub(crate) cfg: BackendConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub store: MetaStore,
    pub blobs: BlobStore,
    pub auth: AuthService,
    pub broker: Broker<VolumeEvent>,
    pub(crate) cluster: Cluster,
    pub sessions: SessionTable,
    pub push_router: PushRouter,
    pub(crate) latency: LatencyBank,
    pub(crate) sink: Arc<dyn TraceSink>,
    /// The memcached-style token cache (`None` when disabled).
    pub(crate) token_cache: Option<TokenCache>,
    /// The fault-injection plane shared with the metastore and blobstore;
    /// a no-op injector when `cfg.fault` is [`FaultPlan::none`].
    pub(crate) faults: Arc<FaultInjector>,
    rpc_timeouts: AtomicU64,
    rpc_retries: AtomicU64,
    pub(crate) auth_fallbacks: AtomicU64,
    /// Volumes whose change notification was dropped before it reached a
    /// user, keyed by that user. Only targets on the *origin's own shard*
    /// are recorded: the shard-parallel driver serializes all activity of
    /// one shard, so same-shard read-after-write on this map is
    /// deterministic, while cross-shard entries would race the reader.
    missed_notify: Mutex<HashMap<UserId, Vec<VolumeId>>>,
    /// One broker subscription per API process; drained synchronously after
    /// every publish (`pump_broker`).
    subscriptions: Vec<(Slot, SubscriberId, Receiver<VolumeEvent>)>,
    slot_to_sub: HashMap<(u16, u16), SubscriberId>,
}

impl Backend {
    pub fn new(cfg: BackendConfig, clock: Arc<dyn Clock>, sink: Arc<dyn TraceSink>) -> Self {
        let store = MetaStore::new(cfg.store.clone());
        let blobs = BlobStore::new();
        let faults = Arc::new(FaultInjector::new(cfg.fault.clone(), cfg.seed ^ 0xFA17));
        if !faults.is_none() {
            store.set_faults(Arc::clone(&faults));
            blobs.set_faults(Arc::clone(&faults));
        }
        let auth = AuthService::new(cfg.auth.clone(), cfg.seed ^ 0xA117);
        let latency = LatencyBank::new(cfg.latency.clone(), cfg.seed ^ 0x1A7);
        let cluster = Cluster::new(cfg.cluster.clone());
        let broker = Broker::new();
        let mut subscriptions = Vec::new();
        let mut slot_to_sub = HashMap::new();
        for (slot, _) in cluster.active_sessions() {
            let (id, rx) = broker.subscribe();
            slot_to_sub.insert((slot.machine.raw(), slot.process.raw()), id);
            subscriptions.push((slot, id, rx));
        }
        let token_cache = cfg.auth_cache_ttl.map(TokenCache::new);
        Self {
            cfg,
            clock,
            store,
            blobs,
            auth,
            broker,
            cluster,
            sessions: SessionTable::new(),
            push_router: PushRouter::new(),
            latency,
            sink,
            token_cache,
            faults,
            rpc_timeouts: AtomicU64::new(0),
            rpc_retries: AtomicU64::new(0),
            auth_fallbacks: AtomicU64::new(0),
            missed_notify: Mutex::new(HashMap::new()),
            subscriptions,
            slot_to_sub,
        }
    }

    /// Fault-plane counters; all zeros under [`FaultPlan::none`].
    pub fn fault_stats(&self) -> BackendFaultStats {
        BackendFaultStats {
            rpc_timeouts: self.rpc_timeouts.load(Ordering::Relaxed),
            rpc_retries: self.rpc_retries.load(Ordering::Relaxed),
            auth_fallbacks: self.auth_fallbacks.load(Ordering::Relaxed),
            notify_dropped: self.broker.stats().lost,
        }
    }

    /// Degraded-mode I/O errors of the trace sink (see
    /// [`u1_trace::TraceSink::io_errors`]); zero for in-memory sinks.
    pub fn trace_io_errors(&self) -> u64 {
        self.sink.io_errors()
    }

    /// Drains the volumes whose change notification to `user` was dropped.
    /// The client calls this at session open and rescans each volume — the
    /// recovery path for lost fan-out (a client that missed a push is out
    /// of sync until its next full generation check).
    pub fn take_missed_notify(&self, user: UserId) -> Vec<VolumeId> {
        let mut vols = self.missed_notify.lock().remove(&user).unwrap_or_default();
        vols.sort_unstable();
        vols.dedup();
        vols
    }

    /// Hit/miss counters of the token cache; zeros when the cache is
    /// disabled.
    pub fn token_cache_stats(&self) -> TokenCacheStats {
        self.token_cache
            .as_ref()
            .map(TokenCache::stats)
            .unwrap_or_default()
    }

    pub fn config(&self) -> &BackendConfig {
        &self.cfg
    }

    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    // ----- tracing helpers (crate-internal) ------------------------------

    /// Executes one metadata RPC: samples its service time, logs the `rpc`
    /// trace record against the acting user's shard, and returns the
    /// sampled duration.
    ///
    /// With the fault plane active, each attempt may time out; timed-out
    /// attempts are retried with bounded exponential backoff
    /// ([`u1_core::RetryPolicy`]), each attempt emitting its own `rpc`
    /// record tagged with the attempt number and (for timeouts) the
    /// `timeout` error class. The returned duration is the sum of every
    /// attempt's service time plus the backoff waits; `Err` means the
    /// retry budget ran out. The caller's attempt tag is restored on exit
    /// so `storage_done` records keep the *client-level* attempt number.
    pub(crate) fn rpc(
        &self,
        slot: Slot,
        shard_user: UserId,
        rpc: RpcKind,
        cascade_rows: u64,
    ) -> CoreResult<SimDuration> {
        let model = self.latency.current();
        let policy = self.faults.plan().rpc_retry;
        let outer_attempt = fault::current_attempt();
        let mut total = SimDuration::ZERO;
        let mut attempt = 1u32;
        loop {
            let d = model.lock().sample(rpc, cascade_rows);
            total = total + d;
            let timed_out = !self.faults.is_none() && self.faults.rpc_timeout();
            fault::set_attempt(attempt);
            fault::set_error_class(if timed_out {
                Some(ErrorClass::Timeout)
            } else {
                None
            });
            self.sink.record(TraceRecord::new(
                self.now(),
                slot.machine,
                slot.process,
                Payload::Rpc {
                    rpc,
                    shard: self.store.shard_of(shard_user),
                    user: shard_user,
                    service_us: d.as_micros(),
                },
            ));
            if !timed_out {
                fault::set_attempt(outer_attempt);
                fault::set_error_class(None);
                return Ok(total);
            }
            self.rpc_timeouts.fetch_add(1, Ordering::Relaxed);
            if attempt >= policy.max_attempts {
                fault::set_attempt(outer_attempt);
                fault::set_error_class(Some(ErrorClass::Timeout));
                return Err(CoreError::unavailable(format!(
                    "rpc timed out after {attempt} attempts"
                )));
            }
            total = total + policy.backoff(attempt);
            self.rpc_retries.fetch_add(1, Ordering::Relaxed);
            attempt += 1;
        }
    }

    /// Logs a completed (or failed) API operation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn log_storage(
        &self,
        h: &SessionHandle,
        op: ApiOpKind,
        volume: VolumeId,
        node: Option<NodeId>,
        kind: Option<NodeKind>,
        size: u64,
        hash: Option<ContentHash>,
        ext: &str,
        success: bool,
        duration: SimDuration,
    ) {
        self.sessions.count_op(h.session, op.is_data_management());
        self.sink.record(TraceRecord::new(
            self.now(),
            h.slot.machine,
            h.slot.process,
            Payload::Storage {
                op,
                session: h.session,
                user: h.user,
                volume,
                node,
                kind,
                size,
                hash,
                ext: u1_core::Ext::new(ext),
                success,
                duration_us: duration.as_micros(),
            },
        ));
    }

    pub(crate) fn log_session_event(&self, h: &SessionHandle, event: u1_trace::SessionEvent) {
        self.sink.record(TraceRecord::new(
            self.now(),
            h.slot.machine,
            h.slot.process,
            Payload::Session {
                event,
                session: h.session,
                user: h.user,
            },
        ));
    }

    pub(crate) fn log_auth(&self, slot: Slot, user: UserId, success: bool) {
        self.sink.record(TraceRecord::new(
            self.now(),
            slot.machine,
            slot.process,
            Payload::Auth { user, success },
        ));
    }

    /// Transfer-time component of an upload/download.
    pub(crate) fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cfg.transfer_bandwidth as f64)
    }

    // ----- push fan-out ----------------------------------------------------

    /// Notifies every affected client of a volume change: the volume
    /// owner's and share recipients' live sessions, except the session that
    /// caused it. Same-process sessions take the direct path; everything
    /// else goes through the broker (§3.4.2 footnote 4).
    pub(crate) fn notify_change(&self, origin: &SessionHandle, volume: VolumeId, push: Push) {
        let mut targets = Vec::new();
        if let Some(owner) = self.store.owner_of(volume) {
            targets.push(owner);
        }
        targets.extend(self.store.share_recipients(volume));
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            return;
        }
        if !self.faults.is_none() && self.faults.notify_dropped() {
            // The fan-out dies inside the notification plane: nobody is
            // pushed, and affected same-shard clients are remembered so
            // their next session rescans the volume (see
            // `take_missed_notify` for why only same-shard targets are
            // recorded).
            self.broker.note_lost();
            let origin_shard = self.store.shard_of(origin.user);
            let mut missed = self.missed_notify.lock();
            for user in targets {
                if self.store.shard_of(user) == origin_shard {
                    missed.entry(user).or_default().push(volume);
                }
            }
            return;
        }

        let mut remote_any = false;
        for user in &targets {
            for sess in self.sessions.sessions_of(*user) {
                if sess.session == origin.session {
                    continue;
                }
                if sess.slot == origin.slot {
                    // Same API process: immediate delivery, no broker.
                    self.push_router.deliver(sess.session, push.clone(), true);
                } else {
                    remote_any = true;
                }
            }
        }
        if remote_any {
            let from = self
                .slot_to_sub
                .get(&(origin.slot.machine.raw(), origin.slot.process.raw()))
                .copied();
            self.broker.publish_except(
                from,
                VolumeEvent {
                    volume,
                    targets,
                    origin_session: origin.session,
                    origin: origin.slot,
                    push,
                },
            );
            self.pump_broker();
        }
    }

    /// Drains every process's broker queue, delivering pushes to the
    /// sessions that process hosts. Called synchronously after publishes;
    /// also usable directly in tests.
    pub fn pump_broker(&self) {
        for (slot, _, rx) in &self.subscriptions {
            for ev in u1_notify::drain(rx) {
                for user in &ev.targets {
                    for sess in self.sessions.sessions_of(*user) {
                        if sess.session != ev.origin_session && sess.slot == *slot {
                            self.push_router
                                .deliver(sess.session, ev.push.clone(), false);
                        }
                    }
                }
            }
        }
    }

    // ----- maintenance & abuse response -------------------------------------

    /// The periodic server-side sweep: touches and garbage-collects upload
    /// jobs older than the configured week (Appendix A), aborting their
    /// object-store multiparts.
    pub fn run_maintenance(&self) -> usize {
        let now = self.now();
        let reaped = self.store.gc_uploadjobs(now);
        for job in &reaped {
            // The GC check itself is an RPC against the store.
            let slot = Slot {
                machine: u1_core::MachineId::new(0),
                process: u1_core::ProcessId::new(0),
            };
            // Maintenance tolerates RPC failures: the row is already gone
            // and the sweep re-runs daily.
            let _ = self.rpc(slot, job.user, RpcKind::TouchUploadJob, 0);
            let _ = self.rpc(slot, job.user, RpcKind::DeleteUploadJob, 0);
            if let Some(mp) = job.multipart_id {
                let _ = self.blobs.abort_multipart(mp);
            }
        }
        reaped.len()
    }

    /// Closes the current content-index epoch (see
    /// [`u1_metastore::ContentIndex`]) and reconciles the object store with
    /// the folded outcome: hashes whose global refcount folded to zero lose
    /// their objects, and hashes some partition view-zeroed but that
    /// survived the fold get their objects restored (size-only in
    /// measurement mode). The workload driver calls this at day boundaries,
    /// while every partition is quiescent.
    pub fn seal_content_epoch(&self) {
        let outcome = self.store.seal_epoch();
        let now = self.now();
        for hash in outcome.dead {
            self.blobs.delete(hash);
        }
        for (hash, size) in outcome.live {
            if !self.blobs.contains(hash) {
                self.blobs.put(hash, size, None, now);
            }
        }
    }

    /// The manual DDoS countermeasure of §5.4: "U1 engineers manually
    /// handled DDoS by means of deleting fraudulent users and the content
    /// to be shared". Revokes the token, closes every session, and deletes
    /// the user's volumes and contents.
    pub fn ban_user(&self, user: UserId) -> usize {
        if let Some(token) = self.auth.revoke_user(user) {
            // Revocation must reach the memcached tier too, or the banned
            // user could keep opening sessions until the TTL ran out.
            if let Some(cache) = &self.token_cache {
                cache.invalidate(token);
            }
        }
        let evicted = self.sessions.evict_user(user);
        for h in &evicted {
            self.push_router.unregister(h.session);
            self.cluster.release_session(h.slot);
            self.log_session_event(h, u1_trace::SessionEvent::Close);
        }
        // Delete the fraudulent content (every non-root volume, then the
        // root volume's nodes).
        if let Ok(vols) = self.store.list_volumes(user) {
            for v in vols {
                if v.kind != u1_core::VolumeKind::Root {
                    if let Ok(released) = self.store.delete_volume(user, v.volume) {
                        for hash in released.unreferenced {
                            self.blobs.delete(hash);
                        }
                    }
                } else if let Ok((_, nodes)) = self.store.get_from_scratch(user, v.volume) {
                    for n in nodes {
                        if n.parent.is_none() {
                            if let Ok(released) =
                                self.store.unlink(user, v.volume, n.node, self.now())
                            {
                                for hash in released.unreferenced {
                                    self.blobs.delete(hash);
                                }
                            }
                        }
                    }
                }
            }
        }
        evicted.len()
    }

    /// Flushes the trace sink.
    pub fn flush_trace(&self) {
        self.sink.flush();
    }

    /// Flushes only one origin's (driver partition's) buffered trace
    /// records. Driver workers call this for their own shards at day
    /// boundaries, before parking at the barrier, so the day flush runs in
    /// parallel instead of serially on the coordinator.
    pub fn flush_trace_origin(&self, origin: u32) {
        self.sink.flush_origin(origin);
    }
}
