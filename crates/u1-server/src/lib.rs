//! The U1 metadata back-end (§3.2, §3.4): everything that ran inside the
//! Canonical datacenter.
//!
//! ```text
//!                       ┌───────────────────────────────────────────┐
//!   clients ── TCP ──▶  │ gateway (least-loaded session placement)  │
//!                       │   API processes ──▶ RPC workers           │
//!                       │        │                 │                │
//!                       │        │                 ▼                │
//!                       │        │        metadata store (shards)   │
//!                       │        ▼                                  │
//!                       │   notification broker (RabbitMQ stand-in) │
//!                       └────────┼──────────────────────────────────┘
//!                                ▼
//!                        object store (S3 stand-in)
//! ```
//!
//! The central type is [`Backend`]: it owns the metadata store, the object
//! store, the auth service, the broker, the cluster topology (machines ×
//! API/RPC processes), the session table and the trace sink. Handlers are
//! synchronous so the same code path serves
//!
//! * **live mode** — [`tcpserver::TcpServer`] accepts real protocol
//!   connections and dispatches decoded requests, and
//! * **measurement mode** — the workload driver calls handlers directly
//!   under a virtual clock, producing month-scale traces in seconds.
//!
//! Every handler logs the paper's trace vocabulary (session, storage_done,
//! rpc, auth records) through the configured sink.

pub mod api;
pub mod backend;
pub mod cluster;
pub mod push;
pub mod session;
pub mod tcpserver;
pub mod tokencache;

pub use backend::{Backend, BackendConfig};
pub use cluster::ClusterConfig;
pub use push::VolumeEvent;
pub use session::SessionHandle;
pub use tcpserver::{ReactorConfig, TcpServer, WireStats};
pub use tokencache::{TokenCache, TokenCacheStats};
