//! Live TCP front-end: real protocol connections against the backend.
//!
//! Threading model (the guides' classic blocking design): one acceptor
//! thread, one reader thread per connection, plus one push-writer thread
//! per authenticated session that forwards broker-routed pushes onto the
//! client's TCP connection — the persistent connection that makes U1's
//! push notifications possible (§3.3).

use crate::api::UploadOutcome;
use crate::backend::Backend;
use crate::session::SessionHandle;
use parking_lot::Mutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use u1_auth::Token;
use u1_core::{CoreError, NodeKind};
use u1_proto::conn::{ServerConn, ServerEvent};
use u1_proto::msg::{Request, RequestId, Response};
use u1_proto::tcp;

/// Maximum bytes per ContentChunk response.
const DOWNLOAD_CHUNK: usize = 256 * 1024;

/// A running TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds and starts accepting. Pass `"127.0.0.1:0"` to get an ephemeral
    /// port (see [`TcpServer::local_addr`]).
    pub fn start(backend: Arc<Backend>, addr: &str) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let accept_thread =
            std::thread::Builder::new()
                .name("u1-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown2.load(Ordering::SeqCst) {
                            return;
                        }
                        match stream {
                            Ok(stream) => {
                                let backend = Arc::clone(&backend);
                                let _ = std::thread::Builder::new()
                                    .name("u1-conn".into())
                                    .spawn(move || handle_connection(backend, stream));
                            }
                            Err(_) => return,
                        }
                    }
                })?;
        Ok(TcpServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections. Existing connections drain on their
    /// own when clients disconnect.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn err_response(e: &CoreError) -> Response {
    Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    }
}

/// Per-connection server loop.
fn handle_connection(backend: Arc<Backend>, stream: TcpStream) {
    let _ = tcp::configure(&stream);
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    }));
    let mut reader = stream;
    let mut conn = ServerConn::new();
    let mut handle: Option<SessionHandle> = None;
    let mut push_thread: Option<JoinHandle<()>> = None;
    let mut buf = vec![0u8; 64 * 1024];

    'outer: loop {
        let n = match tcp::read_some(&mut reader, &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let events = match conn.on_bytes(&buf[..n]) {
            Ok(evs) => evs,
            Err(_) => break, // protocol violation: drop the connection
        };
        for ev in events {
            match ev {
                ServerEvent::Unauthenticated { id } => {
                    if let Ok(resp) = conn.respond(
                        id,
                        Response::Error {
                            code: "denied".into(),
                            message: "authenticate first".into(),
                        },
                    ) {
                        // u1-lint: allow(U1L007) — the writer mutex is what keeps response frames whole against the push thread; writing under it is the framing contract
                        let _ = writer.lock().write_all(&resp);
                    }
                    break 'outer;
                }
                ServerEvent::Request { id, req } => {
                    if !dispatch(
                        &backend,
                        &mut conn,
                        &writer,
                        &mut handle,
                        &mut push_thread,
                        id,
                        req,
                    ) {
                        break 'outer;
                    }
                }
            }
        }
    }

    // Connection died (client disconnect, NAT cut, shutdown): the session
    // dies with it (§3.1.1).
    if let Some(h) = handle {
        let _ = backend.close_session(h.session);
    }
    if let Some(t) = push_thread {
        let _ = t.join();
    }
}

fn send_resp(
    conn: &ServerConn,
    writer: &Arc<Mutex<TcpStream>>,
    id: RequestId,
    resp: Response,
) -> bool {
    // An encode failure (oversized frame) is as fatal as a dead socket:
    // report it the same way so the caller drops the connection.
    let Ok(bytes) = conn.respond(id, resp) else {
        return false;
    };
    // u1-lint: allow(U1L007) — whole-frame writes are serialized by this mutex so responses and pushes never interleave on the socket
    writer.lock().write_all(&bytes).is_ok()
}

/// Handles one request; returns false to drop the connection.
fn dispatch(
    backend: &Arc<Backend>,
    conn: &mut ServerConn,
    writer: &Arc<Mutex<TcpStream>>,
    handle: &mut Option<SessionHandle>,
    push_thread: &mut Option<JoinHandle<()>>,
    id: RequestId,
    req: Request,
) -> bool {
    match req {
        Request::Ping => send_resp(conn, writer, id, Response::Pong),
        Request::QuerySetCaps { caps } => {
            if let Some(h) = handle {
                let _ = backend.query_set_caps(h.session, caps.clone());
            }
            send_resp(conn, writer, id, Response::Capabilities { accepted: caps })
        }
        Request::Authenticate { token } => {
            if handle.is_some() {
                return send_resp(
                    conn,
                    writer,
                    id,
                    err_response(&CoreError::conflict("already authenticated")),
                );
            }
            let Some(token) = Token::from_bytes(&token) else {
                return send_resp(
                    conn,
                    writer,
                    id,
                    err_response(&CoreError::invalid("malformed token")),
                );
            };
            match backend.open_session(token) {
                Ok(h) => {
                    conn.mark_authenticated(h.session, h.user);
                    // Route pushes for this session onto the connection.
                    let (tx, rx) = crossbeam::channel::unbounded();
                    backend.push_router.register(h.session, tx);
                    let push_writer = Arc::clone(writer);
                    let pconn = ServerConn::new();
                    let spawned =
                        std::thread::Builder::new()
                            .name("u1-push".into())
                            .spawn(move || {
                                while let Ok(push) = rx.recv() {
                                    let Ok(bytes) = pconn.push(push) else {
                                        return;
                                    };
                                    // u1-lint: allow(U1L007) — push frames share the socket with responses; the mutex hold over the write is the frame-atomicity contract
                                    if push_writer.lock().write_all(&bytes).is_err() {
                                        return;
                                    }
                                }
                            });
                    match spawned {
                        Ok(t) => *push_thread = Some(t),
                        Err(_) => {
                            // Without a push writer the session would sync
                            // stale data silently; refuse it instead.
                            backend.push_router.unregister(h.session);
                            let _ = backend.close_session(h.session);
                            send_resp(
                                conn,
                                writer,
                                id,
                                err_response(&CoreError::unavailable("push delivery")),
                            );
                            return false;
                        }
                    }
                    let resp = Response::AuthOk {
                        session: h.session,
                        user: h.user,
                    };
                    *handle = Some(h);
                    send_resp(conn, writer, id, resp)
                }
                Err(e) => {
                    send_resp(conn, writer, id, err_response(&e));
                    false
                }
            }
        }
        other => {
            let Some(h) = handle.as_ref() else {
                return send_resp(
                    conn,
                    writer,
                    id,
                    err_response(&CoreError::permission_denied("no session")),
                );
            };
            let sid = h.session;
            match other {
                Request::ListVolumes => match backend.list_volumes(sid) {
                    Ok(volumes) => send_resp(conn, writer, id, Response::Volumes { volumes }),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::ListShares => match backend.list_shares(sid) {
                    Ok(volumes) => send_resp(conn, writer, id, Response::Volumes { volumes }),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::CreateUdf { name } => match backend.create_udf(sid, &name) {
                    Ok(v) => send_resp(
                        conn,
                        writer,
                        id,
                        Response::VolumeCreated {
                            volume: v.volume,
                            generation: v.generation,
                        },
                    ),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::DeleteVolume { volume } => match backend.delete_volume(sid, volume) {
                    Ok(_) => send_resp(conn, writer, id, Response::Ok),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::MakeFile {
                    volume,
                    parent,
                    name,
                } => {
                    let parent = if parent.raw() == 0 {
                        None
                    } else {
                        Some(parent)
                    };
                    match backend.make_node(sid, volume, parent, NodeKind::File, &name) {
                        Ok(n) => send_resp(
                            conn,
                            writer,
                            id,
                            Response::NodeCreated {
                                node: n.node,
                                generation: n.generation,
                            },
                        ),
                        Err(e) => send_resp(conn, writer, id, err_response(&e)),
                    }
                }
                Request::MakeDir {
                    volume,
                    parent,
                    name,
                } => {
                    let parent = if parent.raw() == 0 {
                        None
                    } else {
                        Some(parent)
                    };
                    match backend.make_node(sid, volume, parent, NodeKind::Directory, &name) {
                        Ok(n) => send_resp(
                            conn,
                            writer,
                            id,
                            Response::NodeCreated {
                                node: n.node,
                                generation: n.generation,
                            },
                        ),
                        Err(e) => send_resp(conn, writer, id, err_response(&e)),
                    }
                }
                Request::Unlink { volume, node } => match backend.unlink(sid, volume, node) {
                    Ok(_) => send_resp(conn, writer, id, Response::Ok),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::Move {
                    volume,
                    node,
                    new_parent,
                    new_name,
                } => {
                    let new_parent = if new_parent.raw() == 0 {
                        None
                    } else {
                        Some(new_parent)
                    };
                    match backend.move_node(sid, volume, node, new_parent, &new_name) {
                        Ok(_) => send_resp(conn, writer, id, Response::Ok),
                        Err(e) => send_resp(conn, writer, id, err_response(&e)),
                    }
                }
                Request::GetDelta {
                    volume,
                    from_generation,
                } => match backend.get_delta(sid, volume, from_generation) {
                    Ok((generation, nodes)) => send_resp(
                        conn,
                        writer,
                        id,
                        Response::Delta {
                            volume,
                            generation,
                            nodes,
                        },
                    ),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::RescanFromScratch { volume } => {
                    match backend.rescan_from_scratch(sid, volume) {
                        Ok((generation, nodes)) => send_resp(
                            conn,
                            writer,
                            id,
                            Response::Delta {
                                volume,
                                generation,
                                nodes,
                            },
                        ),
                        Err(e) => send_resp(conn, writer, id, err_response(&e)),
                    }
                }
                Request::BeginUpload {
                    volume,
                    node,
                    hash,
                    size,
                } => match backend.begin_upload(sid, volume, node, hash, size) {
                    Ok(UploadOutcome::Deduplicated { node, generation }) => send_resp(
                        conn,
                        writer,
                        id,
                        Response::UploadDone {
                            node,
                            generation,
                            hash,
                        },
                    ),
                    Ok(UploadOutcome::Started { upload }) => send_resp(
                        conn,
                        writer,
                        id,
                        Response::UploadBegun {
                            upload,
                            reusable: false,
                        },
                    ),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::UploadChunk { upload, data } => {
                    match backend.upload_chunk(sid, upload, data.len() as u64, Some(data)) {
                        Ok(()) => send_resp(conn, writer, id, Response::Ok),
                        Err(e) => send_resp(conn, writer, id, err_response(&e)),
                    }
                }
                Request::CommitUpload { upload } => match backend.commit_upload(sid, upload) {
                    Ok(c) => send_resp(
                        conn,
                        writer,
                        id,
                        Response::UploadDone {
                            node: c.node,
                            generation: c.generation,
                            hash: c.hash,
                        },
                    ),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::CancelUpload { upload } => match backend.cancel_upload(sid, upload) {
                    Ok(()) => send_resp(conn, writer, id, Response::Ok),
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                Request::GetContent { volume, node } => match backend.download(sid, volume, node) {
                    Ok((size, hash, data)) => {
                        if !send_resp(conn, writer, id, Response::ContentBegin { size, hash }) {
                            return false;
                        }
                        let bytes = data.unwrap_or_else(|| vec![0u8; size as usize]);
                        for chunk in bytes.chunks(DOWNLOAD_CHUNK) {
                            if !send_resp(
                                conn,
                                writer,
                                id,
                                Response::ContentChunk {
                                    data: chunk.to_vec(),
                                },
                            ) {
                                return false;
                            }
                        }
                        send_resp(conn, writer, id, Response::ContentEnd)
                    }
                    Err(e) => send_resp(conn, writer, id, err_response(&e)),
                },
                // Handled by the outer match arms; if control flow ever
                // regresses, answer with a typed error instead of panicking
                // the connection thread.
                Request::Authenticate { .. } | Request::QuerySetCaps { .. } | Request::Ping => {
                    send_resp(
                        conn,
                        writer,
                        id,
                        err_response(&CoreError::invalid("control request in data path")),
                    )
                }
            }
        }
    }
}
