//! Live TCP front-end: an epoll reactor serving the storage protocol.
//!
//! Threading model (DESIGN.md §15): **one thread**, the Twisted shape the
//! real U1 API servers had — a single event loop multiplexing every
//! persistent client connection over level-triggered `epoll` (via
//! [`u1_net::Poller`]). There are no per-connection threads, no
//! per-session push-writer threads, and no socket mutexes: every read,
//! every dispatch, and every write happens on the reactor thread, and
//! outbound frames (responses *and* pushes) go through a per-connection
//! [`SendQueue`] that the reactor drains when the socket reports writable.
//!
//! Admission control (§5.4 — U1 ran per-IP throttling after the 2014
//! abuse incident):
//!
//! * a hard cap on concurrent connections ([`ReactorConfig::max_connections`]),
//! * a per-IP accept throttle (at most `accept_burst_per_ip` accepts per
//!   `accept_window` from one address),
//! * a per-connection send budget: a client that stops reading while the
//!   server owes it bytes accumulates queued frames, and once the queue
//!   exceeds [`ReactorConfig::send_budget_bytes`] the connection is evicted
//!   — slow readers cost bounded memory, not unbounded growth.
//!
//! Shutdown drains: accepting stops, queued bytes are flushed, and any
//! connection still unflushed at `drain_timeout` is force-closed.

use crate::api::UploadOutcome;
use crate::backend::Backend;
use crate::session::SessionHandle;
use std::collections::HashMap;
use std::io::Write;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use u1_auth::Token;
use u1_core::timing::{Phase, PhaseNanos, PhaseTimers};
use u1_core::{CoreError, NodeKind};
use u1_net::{Interest, Poller};
use u1_proto::conn::{ServerConn, ServerEvent};
use u1_proto::msg::{Push, Request, RequestId, Response};
use u1_proto::nio::{read_once, ReadOutcome, SendQueue};
use u1_proto::tcp;

/// Maximum bytes per ContentChunk response.
const DOWNLOAD_CHUNK: usize = 256 * 1024;

/// Token under which the listening socket is registered.
const LISTENER: u64 = 0;

/// Reactor tuning knobs. [`ReactorConfig::default`] matches what the tests
/// and benches expect from a well-behaved deployment.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Hard cap on concurrently served connections; accepts beyond it are
    /// refused (closed immediately).
    pub max_connections: usize,
    /// Accepts allowed from one IP per `accept_window` before the reactor
    /// starts refusing that address (§5.4 per-IP throttling).
    pub accept_burst_per_ip: u32,
    /// Length of the per-IP accounting window.
    pub accept_window: Duration,
    /// Eviction threshold for a connection's unsent queued bytes.
    pub send_budget_bytes: usize,
    /// Upper bound on one `epoll_wait`; also the cadence at which pending
    /// pushes are forwarded and the shutdown flag is observed.
    pub tick: Duration,
    /// How long shutdown waits for queued bytes to flush before
    /// force-closing the stragglers.
    pub drain_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 1024,
            accept_burst_per_ip: 256,
            accept_window: Duration::from_secs(1),
            send_budget_bytes: 32 * 1024 * 1024,
            tick: Duration::from_millis(5),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotone counters the reactor maintains; snapshot via
/// [`TcpServer::stats`]. All relaxed: they are diagnostics, not
/// synchronization.
#[derive(Debug, Default)]
struct WireCounters {
    accepted: AtomicU64,
    refused_capacity: AtomicU64,
    refused_throttle: AtomicU64,
    evicted_slow: AtomicU64,
    graceful_byes: AtomicU64,
    eof_reaps: AtomicU64,
    protocol_errors: AtomicU64,
    pushes_forwarded: AtomicU64,
}

/// A point-in-time copy of the reactor's admission/lifecycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Connections admitted past all admission checks.
    pub accepted: u64,
    /// Accepts refused because `max_connections` was reached.
    pub refused_capacity: u64,
    /// Accepts refused by the per-IP throttle.
    pub refused_throttle: u64,
    /// Connections evicted for exceeding their send budget (slow readers).
    pub evicted_slow: u64,
    /// Sessions ended by an explicit `Bye` (vs. reaped on EOF).
    pub graceful_byes: u64,
    /// Connections reaped because the peer disconnected (EOF/hangup/error).
    pub eof_reaps: u64,
    /// Connections dropped for framing or protocol violations.
    pub protocol_errors: u64,
    /// Push notifications forwarded onto client connections.
    pub pushes_forwarded: u64,
}

impl WireCounters {
    fn snapshot(&self) -> WireStats {
        WireStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused_capacity: self.refused_capacity.load(Ordering::Relaxed),
            refused_throttle: self.refused_throttle.load(Ordering::Relaxed),
            evicted_slow: self.evicted_slow.load(Ordering::Relaxed),
            graceful_byes: self.graceful_byes.load(Ordering::Relaxed),
            eof_reaps: self.eof_reaps.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            pushes_forwarded: self.pushes_forwarded.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the [`TcpServer`] handle and the reactor thread.
struct Shared {
    shutdown: AtomicBool,
    counters: WireCounters,
    timers: PhaseTimers,
}

/// A running TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds and starts the reactor with default tuning. Pass
    /// `"127.0.0.1:0"` to get an ephemeral port (see
    /// [`TcpServer::local_addr`]).
    pub fn start(backend: Arc<Backend>, addr: &str) -> std::io::Result<TcpServer> {
        Self::start_with(backend, addr, ReactorConfig::default())
    }

    /// Binds and starts the reactor with explicit tuning.
    pub fn start_with(
        backend: Arc<Backend>,
        addr: &str,
        cfg: ReactorConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READ)?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            counters: WireCounters::default(),
            timers: PhaseTimers::new(),
        });
        let shared2 = Arc::clone(&shared);
        let reactor = std::thread::Builder::new()
            .name("u1-reactor".into())
            .spawn(move || {
                Reactor {
                    backend,
                    listener,
                    poller,
                    shared: shared2,
                    cfg,
                    conns: HashMap::new(),
                    throttle: HashMap::new(),
                    next_token: LISTENER + 1,
                }
                .run();
            })?;
        Ok(TcpServer {
            addr: local,
            shared,
            reactor: Some(reactor),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Admission and lifecycle counters, as of now.
    pub fn stats(&self) -> WireStats {
        self.shared.counters.snapshot()
    }

    /// Cumulative reactor time by phase (NetAccept/NetRead/NetServe/NetWrite).
    pub fn phase_nanos(&self) -> PhaseNanos {
        self.shared.timers.snapshot()
    }

    /// Stops accepting, drains queued bytes (bounded by
    /// [`ReactorConfig::drain_timeout`]), closes every connection, and joins
    /// the reactor thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
    }
}

fn err_response(e: &CoreError) -> Response {
    Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    }
}

/// Why a connection is being torn down — selects the stat to bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    Eof,
    Protocol,
    Evicted,
    /// Queue flushed after a close-worthy exchange (Bye, auth refusal,
    /// pre-auth violation) or during shutdown drain.
    Flushed,
}

/// One live connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    peer_ip: IpAddr,
    proto: ServerConn,
    sendq: SendQueue,
    handle: Option<SessionHandle>,
    push_rx: Option<crossbeam::channel::Receiver<Push>>,
    /// Flush the send queue, then close — no more reads are processed.
    closing: bool,
    /// Last interest registered with the poller (write side toggles).
    want_write: bool,
}

struct Reactor {
    backend: Arc<Backend>,
    listener: TcpListener,
    poller: Poller,
    shared: Arc<Shared>,
    cfg: ReactorConfig,
    conns: HashMap<u64, Conn>,
    throttle: HashMap<IpAddr, (Instant, u32)>,
    next_token: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::with_capacity(256);
        let mut read_buf = vec![0u8; 64 * 1024];
        let mut draining_since: Option<Instant> = None;

        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && draining_since.is_none() {
                draining_since = Some(Instant::now());
                let _ = self.poller.deregister(self.listener.as_raw_fd());
                for conn in self.conns.values_mut() {
                    conn.closing = true;
                }
            }
            if let Some(t0) = draining_since {
                if self.conns.is_empty() {
                    return;
                }
                if t0.elapsed() >= self.cfg.drain_timeout {
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.teardown(token, Cause::Flushed);
                    }
                    return;
                }
            }

            events.clear();
            if self.poller.wait(&mut events, Some(self.cfg.tick)).is_err() {
                // The poller itself failing is unrecoverable; drop
                // everything (sessions are reaped in teardown).
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for token in tokens {
                    self.teardown(token, Cause::Flushed);
                }
                return;
            }

            for &ev in &events {
                if ev.token == LISTENER {
                    if draining_since.is_none() {
                        self.accept_ready();
                    }
                    continue;
                }
                if !self.conns.contains_key(&ev.token) {
                    continue; // torn down earlier this batch
                }
                if ev.hangup {
                    self.teardown(ev.token, Cause::Eof);
                    continue;
                }
                if ev.readable {
                    self.conn_readable(ev.token, &mut read_buf);
                }
                // Writability is consumed by the post-pass below.
            }

            self.post_pass();
        }
    }

    /// Accepts until the backlog is empty, applying admission control.
    fn accept_ready(&mut self) {
        loop {
            let accepted = self
                .shared
                .timers
                .time(Phase::NetAccept, || self.listener.accept());
            let (stream, peer) = match accepted {
                Ok(pair) => pair,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            if self.conns.len() >= self.cfg.max_connections {
                self.shared
                    .counters
                    .refused_capacity
                    .fetch_add(1, Ordering::Relaxed);
                continue; // dropping the stream closes it
            }
            if !self.admit_ip(peer.ip()) {
                self.shared
                    .counters
                    .refused_throttle
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = tcp::configure(&stream);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .register(stream.as_raw_fd(), token, Interest::READ)
                .is_err()
            {
                continue;
            }
            self.shared
                .counters
                .accepted
                .fetch_add(1, Ordering::Relaxed);
            self.conns.insert(
                token,
                Conn {
                    stream,
                    peer_ip: peer.ip(),
                    proto: ServerConn::new(),
                    sendq: SendQueue::new(),
                    handle: None,
                    push_rx: None,
                    closing: false,
                    want_write: false,
                },
            );
        }
    }

    /// Sliding-window per-IP accept throttle.
    fn admit_ip(&mut self, ip: IpAddr) -> bool {
        let now = Instant::now();
        let entry = self.throttle.entry(ip).or_insert((now, 0));
        if now.duration_since(entry.0) > self.cfg.accept_window {
            *entry = (now, 0);
        }
        entry.1 += 1;
        entry.1 <= self.cfg.accept_burst_per_ip
    }

    /// Reads once and feeds the protocol state machine.
    fn conn_readable(&mut self, token: u64, buf: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.closing {
            return; // draining: ignore further input
        }
        let outcome = self
            .shared
            .timers
            .time(Phase::NetRead, || read_once(&mut conn.stream, buf));
        let n = match outcome {
            Ok(ReadOutcome::Bytes(n)) => n,
            Ok(ReadOutcome::WouldBlock) => return,
            Ok(ReadOutcome::Closed) | Err(_) => {
                self.teardown(token, Cause::Eof);
                return;
            }
        };
        let events = match conn.proto.on_bytes(&buf[..n]) {
            Ok(evs) => evs,
            Err(_) => {
                self.teardown(token, Cause::Protocol);
                return;
            }
        };
        for ev in events {
            // `conn` must be re-fetched per event: dispatch borrows the map
            // entry and may mark it closing.
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing {
                return;
            }
            match ev {
                ServerEvent::Unauthenticated { id } => {
                    let resp = Response::Error {
                        code: "denied".into(),
                        message: "authenticate first".into(),
                    };
                    let ok = conn.proto.respond(id, resp).map(|b| conn.sendq.push(b));
                    conn.closing = true;
                    if ok.is_err() {
                        self.teardown(token, Cause::Protocol);
                        return;
                    }
                }
                ServerEvent::Request { id, req } => {
                    let backend = Arc::clone(&self.backend);
                    let timers = &self.shared.timers;
                    let counters = &self.shared.counters;
                    let keep = timers.time(Phase::NetServe, || {
                        dispatch(&backend, counters, conn, id, req)
                    });
                    if !keep {
                        self.teardown(token, Cause::Protocol);
                        return;
                    }
                }
            }
        }
    }

    /// Per-tick maintenance over every connection: forward pending pushes,
    /// flush send queues, toggle write interest, enforce the send budget,
    /// and finish `closing` connections whose queues drained.
    fn post_pass(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };

            // Pushes routed to this session since the last tick (delivered
            // by backend calls — possibly on behalf of *other* connections'
            // requests — earlier in this same reactor loop).
            if !conn.closing {
                if let Some(rx) = &conn.push_rx {
                    let mut forwarded = 0u64;
                    let mut dead = false;
                    while let Ok(push) = rx.try_recv() {
                        match conn.proto.push(push) {
                            Ok(bytes) => {
                                conn.sendq.push(bytes);
                                forwarded += 1;
                            }
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    if forwarded > 0 {
                        self.shared
                            .counters
                            .pushes_forwarded
                            .fetch_add(forwarded, Ordering::Relaxed);
                    }
                    if dead {
                        self.teardown(token, Cause::Protocol);
                        continue;
                    }
                }
            }

            if !conn.sendq.is_empty() {
                let flushed = self
                    .shared
                    .timers
                    .time(Phase::NetWrite, || conn.sendq.write_to(&mut conn.stream));
                if flushed.is_err() {
                    self.teardown(token, Cause::Eof);
                    continue;
                }
            }

            if conn.sendq.queued_bytes() > self.cfg.send_budget_bytes {
                self.teardown(token, Cause::Evicted);
                continue;
            }

            if conn.closing && conn.sendq.is_empty() {
                self.teardown(token, Cause::Flushed);
                continue;
            }

            let want_write = !conn.sendq.is_empty();
            if want_write != conn.want_write {
                let interest = if want_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if self
                    .poller
                    .reregister(conn.stream.as_raw_fd(), token, interest)
                    .is_ok()
                {
                    conn.want_write = want_write;
                }
            }
        }
    }

    /// Removes a connection: best-effort flush of anything already queued,
    /// session reap, poller cleanup, stats.
    fn teardown(&mut self, token: u64, cause: Cause) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if cause == Cause::Flushed {
            let _ = conn.sendq.write_to(&mut conn.stream);
            let _ = conn.stream.flush();
        }
        // The session dies with its TCP connection (§3.1.1) — unless Bye
        // already closed it (handle was taken then).
        if let Some(h) = conn.handle.take() {
            let _ = self.backend.close_session(h.session);
        }
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let counter = match cause {
            Cause::Eof => Some(&self.shared.counters.eof_reaps),
            Cause::Protocol => Some(&self.shared.counters.protocol_errors),
            Cause::Evicted => Some(&self.shared.counters.evicted_slow),
            Cause::Flushed => None,
        };
        if let Some(c) = counter {
            c.fetch_add(1, Ordering::Relaxed);
        }
        // Stop the throttle map from growing without bound: the entry is
        // only interesting while its window is hot.
        if let Some((start, _)) = self.throttle.get(&conn.peer_ip) {
            if start.elapsed() > self.cfg.accept_window {
                self.throttle.remove(&conn.peer_ip);
            }
        }
    }
}

/// Queues the response(s) for one request; returns false to drop the
/// connection (protocol-fatal encode failure). All writes go through the
/// send queue — nothing here touches the socket.
fn dispatch(
    backend: &Arc<Backend>,
    counters: &WireCounters,
    conn: &mut Conn,
    id: RequestId,
    req: Request,
) -> bool {
    let queue = |conn: &mut Conn, resp: Response| -> bool {
        match conn.proto.respond(id, resp) {
            Ok(bytes) => {
                conn.sendq.push(bytes);
                true
            }
            Err(_) => false,
        }
    };
    match req {
        Request::Ping => queue(conn, Response::Pong),
        Request::QuerySetCaps { caps } => {
            if let Some(h) = &conn.handle {
                let _ = backend.query_set_caps(h.session, caps.clone());
            }
            queue(conn, Response::Capabilities { accepted: caps })
        }
        Request::Authenticate { token } => {
            if conn.handle.is_some() {
                return queue(
                    conn,
                    err_response(&CoreError::conflict("already authenticated")),
                );
            }
            let Some(token) = Token::from_bytes(&token) else {
                return queue(conn, err_response(&CoreError::invalid("malformed token")));
            };
            match backend.open_session(token) {
                Ok(h) => {
                    conn.proto.mark_authenticated(h.session, h.user);
                    // Route pushes for this session into the reactor: the
                    // receiver is drained into this connection's send queue
                    // every tick.
                    let (tx, rx) = crossbeam::channel::unbounded();
                    backend.push_router.register(h.session, tx);
                    conn.push_rx = Some(rx);
                    let resp = Response::AuthOk {
                        session: h.session,
                        user: h.user,
                    };
                    conn.handle = Some(h);
                    queue(conn, resp)
                }
                Err(e) => {
                    let ok = queue(conn, err_response(&e));
                    // Auth refusal ends the connection once the error has
                    // flushed.
                    conn.closing = true;
                    ok
                }
            }
        }
        Request::Bye => {
            // Synchronous goodbye: the session is closed *before* the Ok is
            // queued, so a client that waits for the reply observes its
            // teardown strictly ordered. The connection flushes and closes.
            if let Some(h) = conn.handle.take() {
                let _ = backend.close_session(h.session);
                conn.push_rx = None;
                counters.graceful_byes.fetch_add(1, Ordering::Relaxed);
            }
            let ok = queue(conn, Response::Ok);
            conn.closing = true;
            ok
        }
        other => {
            let Some(h) = conn.handle.as_ref() else {
                return queue(
                    conn,
                    err_response(&CoreError::permission_denied("no session")),
                );
            };
            let sid = h.session;
            match other {
                Request::ListVolumes => match backend.list_volumes(sid) {
                    Ok(volumes) => queue(conn, Response::Volumes { volumes }),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::ListShares => match backend.list_shares(sid) {
                    Ok(volumes) => queue(conn, Response::Volumes { volumes }),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::CreateUdf { name } => match backend.create_udf(sid, &name) {
                    Ok(v) => queue(
                        conn,
                        Response::VolumeCreated {
                            volume: v.volume,
                            generation: v.generation,
                        },
                    ),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::DeleteVolume { volume } => match backend.delete_volume(sid, volume) {
                    Ok(_) => queue(conn, Response::Ok),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::MakeFile {
                    volume,
                    parent,
                    name,
                } => {
                    let parent = if parent.raw() == 0 {
                        None
                    } else {
                        Some(parent)
                    };
                    match backend.make_node(sid, volume, parent, NodeKind::File, &name) {
                        Ok(n) => queue(
                            conn,
                            Response::NodeCreated {
                                node: n.node,
                                generation: n.generation,
                            },
                        ),
                        Err(e) => queue(conn, err_response(&e)),
                    }
                }
                Request::MakeDir {
                    volume,
                    parent,
                    name,
                } => {
                    let parent = if parent.raw() == 0 {
                        None
                    } else {
                        Some(parent)
                    };
                    match backend.make_node(sid, volume, parent, NodeKind::Directory, &name) {
                        Ok(n) => queue(
                            conn,
                            Response::NodeCreated {
                                node: n.node,
                                generation: n.generation,
                            },
                        ),
                        Err(e) => queue(conn, err_response(&e)),
                    }
                }
                Request::Unlink { volume, node } => match backend.unlink(sid, volume, node) {
                    Ok(_) => queue(conn, Response::Ok),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::Move {
                    volume,
                    node,
                    new_parent,
                    new_name,
                } => {
                    let new_parent = if new_parent.raw() == 0 {
                        None
                    } else {
                        Some(new_parent)
                    };
                    match backend.move_node(sid, volume, node, new_parent, &new_name) {
                        Ok(_) => queue(conn, Response::Ok),
                        Err(e) => queue(conn, err_response(&e)),
                    }
                }
                Request::GetDelta {
                    volume,
                    from_generation,
                } => match backend.get_delta(sid, volume, from_generation) {
                    Ok((generation, nodes)) => queue(
                        conn,
                        Response::Delta {
                            volume,
                            generation,
                            nodes,
                        },
                    ),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::RescanFromScratch { volume } => {
                    match backend.rescan_from_scratch(sid, volume) {
                        Ok((generation, nodes)) => queue(
                            conn,
                            Response::Delta {
                                volume,
                                generation,
                                nodes,
                            },
                        ),
                        Err(e) => queue(conn, err_response(&e)),
                    }
                }
                Request::BeginUpload {
                    volume,
                    node,
                    hash,
                    size,
                } => match backend.begin_upload(sid, volume, node, hash, size) {
                    Ok(UploadOutcome::Deduplicated { node, generation }) => queue(
                        conn,
                        Response::UploadDone {
                            node,
                            generation,
                            hash,
                        },
                    ),
                    Ok(UploadOutcome::Started { upload }) => queue(
                        conn,
                        Response::UploadBegun {
                            upload,
                            reusable: false,
                        },
                    ),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::UploadChunk { upload, data } => {
                    match backend.upload_chunk(sid, upload, data.len() as u64, Some(data)) {
                        Ok(()) => queue(conn, Response::Ok),
                        Err(e) => queue(conn, err_response(&e)),
                    }
                }
                Request::UploadChunkSparse { upload, len } => {
                    // Sparse chunks exist for the measurement path only; a
                    // server storing real bytes must not account content it
                    // never received.
                    if backend.cfg.store_real_bytes {
                        return queue(
                            conn,
                            err_response(&CoreError::invalid(
                                "sparse chunk on a real-bytes server",
                            )),
                        );
                    }
                    match backend.upload_chunk(sid, upload, len, None) {
                        Ok(()) => queue(conn, Response::Ok),
                        Err(e) => queue(conn, err_response(&e)),
                    }
                }
                Request::CommitUpload { upload } => match backend.commit_upload(sid, upload) {
                    Ok(c) => queue(
                        conn,
                        Response::UploadDone {
                            node: c.node,
                            generation: c.generation,
                            hash: c.hash,
                        },
                    ),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::CancelUpload { upload } => match backend.cancel_upload(sid, upload) {
                    Ok(()) => queue(conn, Response::Ok),
                    Err(e) => queue(conn, err_response(&e)),
                },
                Request::GetContent { volume, node } => match backend.download(sid, volume, node) {
                    Ok((size, hash, data)) => {
                        if !queue(conn, Response::ContentBegin { size, hash }) {
                            return false;
                        }
                        // Measurement mode returns no bytes: the stream is
                        // Begin immediately followed by End, and the
                        // declared size is the transfer's accounting. Live
                        // bytes are chunked below the frame limit.
                        if let Some(bytes) = data {
                            for chunk in bytes.chunks(DOWNLOAD_CHUNK) {
                                if !queue(
                                    conn,
                                    Response::ContentChunk {
                                        data: chunk.to_vec(),
                                    },
                                ) {
                                    return false;
                                }
                            }
                        }
                        queue(conn, Response::ContentEnd)
                    }
                    Err(e) => queue(conn, err_response(&e)),
                },
                // Handled by the outer match arms; if control flow ever
                // regresses, answer with a typed error instead of panicking
                // the reactor.
                Request::Authenticate { .. }
                | Request::QuerySetCaps { .. }
                | Request::Ping
                | Request::Bye => queue(
                    conn,
                    err_response(&CoreError::invalid("control request in data path")),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use std::io::Read;
    use u1_core::{RealClock, UserId};
    use u1_proto::conn::{ClientConn, ClientEvent};
    use u1_trace::MemorySink;

    fn test_backend(store_real_bytes: bool) -> Arc<Backend> {
        Arc::new(Backend::new(
            BackendConfig {
                auth: u1_auth::AuthConfig {
                    transient_failure_rate: 0.0,
                    token_ttl: None,
                },
                store_real_bytes,
                ..Default::default()
            },
            Arc::new(RealClock::new()),
            Arc::new(MemorySink::new()),
        ))
    }

    /// Minimal blocking client against the reactor.
    struct TestClient {
        stream: TcpStream,
        conn: ClientConn,
    }

    impl TestClient {
        fn connect(addr: SocketAddr) -> Self {
            TestClient {
                stream: TcpStream::connect(addr).expect("connect"),
                conn: ClientConn::new(),
            }
        }

        fn call(&mut self, req: Request) -> Response {
            let (id, bytes) = self.conn.request(req).expect("encode");
            self.stream.write_all(&bytes).expect("send");
            let mut buf = [0u8; 64 * 1024];
            loop {
                let n = self.stream.read(&mut buf).expect("recv");
                assert!(n > 0, "server closed mid-call");
                for ev in self.conn.on_bytes(&buf[..n]).expect("protocol") {
                    if let ClientEvent::Response { id: got, resp } = ev {
                        if got == id && resp.is_final() {
                            return resp;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn over_capacity_accepts_are_refused() {
        let backend = test_backend(false);
        let server = TcpServer::start_with(
            backend,
            "127.0.0.1:0",
            ReactorConfig {
                max_connections: 2,
                ..Default::default()
            },
        )
        .expect("start");
        let mut a = TestClient::connect(server.local_addr());
        let mut b = TestClient::connect(server.local_addr());
        assert_eq!(a.call(Request::Ping), Response::Pong);
        assert_eq!(b.call(Request::Ping), Response::Pong);

        // The third connection is admitted by the kernel but refused by the
        // reactor: the first read observes the close.
        let mut c = TcpStream::connect(server.local_addr()).expect("connect");
        let mut buf = [0u8; 16];
        let n = c.read(&mut buf).expect("refused reads as EOF");
        assert_eq!(n, 0, "refused connection must be closed unread");
        assert_eq!(server.stats().refused_capacity, 1);
        assert_eq!(server.stats().accepted, 2);
        server.shutdown();
    }

    #[test]
    fn per_ip_throttle_refuses_bursts() {
        let backend = test_backend(false);
        let server = TcpServer::start_with(
            backend,
            "127.0.0.1:0",
            ReactorConfig {
                accept_burst_per_ip: 3,
                accept_window: Duration::from_secs(60),
                ..Default::default()
            },
        )
        .expect("start");
        let mut kept = Vec::new();
        for _ in 0..3 {
            let mut c = TestClient::connect(server.local_addr());
            assert_eq!(c.call(Request::Ping), Response::Pong);
            kept.push(c);
        }
        let mut c = TcpStream::connect(server.local_addr()).expect("connect");
        let mut buf = [0u8; 16];
        assert_eq!(c.read(&mut buf).expect("refused"), 0);
        let stats = server.stats();
        assert_eq!(stats.refused_throttle, 1);
        assert_eq!(stats.accepted, 3);
        server.shutdown();
    }

    #[test]
    fn slow_reader_is_evicted_once_over_budget() {
        let backend = test_backend(true);
        let token = backend.register_user(UserId::new(9));
        let server = TcpServer::start_with(
            Arc::clone(&backend),
            "127.0.0.1:0",
            ReactorConfig {
                send_budget_bytes: 64 * 1024,
                ..Default::default()
            },
        )
        .expect("start");
        let mut c = TestClient::connect(server.local_addr());
        let auth = c.call(Request::Authenticate {
            token: token.as_bytes().to_vec(),
        });
        assert!(matches!(auth, Response::AuthOk { .. }));
        let Response::Volumes { volumes } = c.call(Request::ListVolumes) else {
            panic!("volumes");
        };
        let root = volumes[0].volume;
        let resp = c.call(Request::MakeFile {
            volume: root,
            parent: u1_core::NodeId::new(0),
            name: "big.bin".into(),
        });
        let Response::NodeCreated { node, .. } = resp else {
            panic!("make_file: {resp:?}");
        };
        // 32MB of real bytes: larger than any loopback socket buffer, so
        // queued frames must exceed the 64KB budget while we refuse to read.
        let data: Vec<u8> = (0..32 * 1024 * 1024u32).map(|i| (i % 240) as u8).collect();
        let hash = u1_core::Sha1::digest(&data);
        let resp = c.call(Request::BeginUpload {
            volume: root,
            node,
            hash,
            size: data.len() as u64,
        });
        let Response::UploadBegun { upload, .. } = resp else {
            panic!("begin: {resp:?}");
        };
        for chunk in data.chunks(4 * 1024 * 1024) {
            assert_eq!(
                c.call(Request::UploadChunk {
                    upload,
                    data: chunk.to_vec(),
                }),
                Response::Ok
            );
        }
        assert!(matches!(
            c.call(Request::CommitUpload { upload }),
            Response::UploadDone { .. }
        ));

        // Ask for the content back, then stop reading entirely.
        let (_id, bytes) = c
            .conn
            .request(Request::GetContent { volume: root, node })
            .expect("encode");
        c.stream.write_all(&bytes).expect("send");
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().evicted_slow == 0 {
            assert!(Instant::now() < deadline, "eviction never happened");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.stats().evicted_slow, 1);
        server.shutdown();
    }

    #[test]
    fn bye_closes_session_before_responding() {
        let backend = test_backend(false);
        let token = backend.register_user(UserId::new(4));
        let server = TcpServer::start(Arc::clone(&backend), "127.0.0.1:0").expect("start");
        let mut c = TestClient::connect(server.local_addr());
        assert!(matches!(
            c.call(Request::Authenticate {
                token: token.as_bytes().to_vec(),
            }),
            Response::AuthOk { .. }
        ));
        assert_eq!(backend.sessions.live_count(), 1);
        assert_eq!(c.call(Request::Bye), Response::Ok);
        // The Ok was queued after close_session ran on the reactor: by the
        // time the client has it, the session is gone.
        assert_eq!(backend.sessions.live_count(), 0);
        assert_eq!(server.stats().graceful_byes, 1);
        // And the connection is closed right after the flush.
        let mut buf = [0u8; 16];
        assert_eq!(c.stream.read(&mut buf).expect("closed"), 0);
        server.shutdown();
    }

    #[test]
    fn sparse_chunks_are_refused_when_storing_real_bytes() {
        let backend = test_backend(true);
        let token = backend.register_user(UserId::new(5));
        let server = TcpServer::start(Arc::clone(&backend), "127.0.0.1:0").expect("start");
        let mut c = TestClient::connect(server.local_addr());
        assert!(matches!(
            c.call(Request::Authenticate {
                token: token.as_bytes().to_vec(),
            }),
            Response::AuthOk { .. }
        ));
        let Response::Volumes { volumes } = c.call(Request::ListVolumes) else {
            panic!("volumes");
        };
        let root = volumes[0].volume;
        let resp = c.call(Request::MakeFile {
            volume: root,
            parent: u1_core::NodeId::new(0),
            name: "f".into(),
        });
        let Response::NodeCreated { node, .. } = resp else {
            panic!("make_file: {resp:?}");
        };
        let data = vec![7u8; 64];
        let resp = c.call(Request::BeginUpload {
            volume: root,
            node,
            hash: u1_core::Sha1::digest(&data),
            size: data.len() as u64,
        });
        let Response::UploadBegun { upload, .. } = resp else {
            panic!("begin: {resp:?}");
        };
        let resp = c.call(Request::UploadChunkSparse {
            upload,
            len: data.len() as u64,
        });
        assert!(
            matches!(resp, Response::Error { ref code, .. } if code == "invalid"),
            "sparse chunk must be refused: {resp:?}"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_and_closes_connections() {
        let backend = test_backend(false);
        let server = TcpServer::start(backend, "127.0.0.1:0").expect("start");
        let mut c = TestClient::connect(server.local_addr());
        assert_eq!(c.call(Request::Ping), Response::Pong);
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "idle connections drain immediately, not at the deadline"
        );
        let mut buf = [0u8; 16];
        assert_eq!(c.stream.read(&mut buf).expect("drained close"), 0);
    }
}
