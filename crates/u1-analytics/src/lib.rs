//! Trace analytics: everything needed to regenerate the paper's §5–§7
//! figures and tables from a trace.
//!
//! The input is always a timestamp-sorted `&[TraceRecord]` (from a
//! [`u1_trace::MemorySink`] or a merged logfile directory read). Each
//! analyzer module mirrors one slice of the paper:
//!
//! * [`stats`] — the numeric kit: ECDF, quantiles, histograms, Gini/Lorenz,
//!   autocorrelation, power-law MLE, Pearson correlation,
//! * [`timeseries`] — hourly/minutely binning of requests and traffic
//!   (Figs. 2(a), 5, 6, 15),
//! * [`storage`] — storage-workload analyses (Figs. 2(b), 2(c), 4(b), 4(c)),
//! * [`dedup`] — duplicates-per-hash and the dedup ratio (Fig. 4(a)),
//! * [`dependencies`] — per-node operation dependencies, reads-per-file and
//!   node lifetimes (Fig. 3),
//! * [`users`] — online/active users, op mix, per-user traffic, Lorenz/Gini,
//!   activity classes (Figs. 6, 7),
//! * [`markov`] — the empirical operation-transition graph (Fig. 8),
//! * [`burstiness`] — inter-operation times and their power-law fit (Fig. 9),
//! * [`volumes`] — files/dirs per volume and volume-type distributions
//!   (Figs. 10, 11; consumes a [`u1_metastore::store::VolumeSnapshot`]),
//! * [`faults`] — error rates, error-class mix and retry-latency
//!   inflation under an injected fault plan,
//! * [`rpc`] — RPC service-time distributions, the class scatter, and load
//!   balance (Figs. 12, 13, 14),
//! * [`sessions`] — session lengths, ops/session, auth activity (Figs. 15,
//!   16),
//! * [`ddos`] — attack detection from request-rate anomalies (Fig. 5),
//! * [`summary`] — Table 3 and the Table 1 findings check.
//!
//! Every analyzer is implemented as an [`engine::TraceFold`]: a streaming
//! fold that can also run chunk-parallel and merge partial states without
//! changing any output bit. [`engine::run_all`] evaluates the whole battery
//! in a single pass over the records.

pub mod burstiness;
pub mod ddos;
pub mod dedup;
pub mod dependencies;
pub mod engine;
pub mod faults;
pub mod markov;
pub mod rpc;
pub mod sessions;
pub mod stats;
pub mod storage;
pub mod summary;
pub mod testkit;
pub mod timeseries;
pub mod users;
pub mod volumes;

pub use stats::Ecdf;
