//! DDoS detection (§5.4, Fig. 5): find hours whose session/auth/storage
//! request rates are anomalously far above trailing behavior, and group
//! them into episodes.
//!
//! The paper found the attacks manually; §9 calls for automated
//! countermeasures — this module is that automation, and the harness
//! verifies it rediscovers the three injected attacks.

use crate::engine::TraceFold;
use serde::Serialize;
use u1_core::{SimDuration, SimTime};
use u1_trace::{Payload, TraceRecord};

/// A detected attack episode.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Episode {
    /// First and last anomalous hour indices.
    pub start_hour: usize,
    pub end_hour: usize,
    /// Peak multiplier over the baseline during the episode.
    pub peak_multiplier: f64,
    /// Which signal tripped: "session", "auth" or "storage".
    pub signal: &'static str,
}

impl Episode {
    pub fn start_day(&self) -> u64 {
        self.start_hour as u64 / 24
    }
}

/// Detection parameters.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// An hour is anomalous when its count exceeds `threshold ×` the
    /// trailing-window median.
    pub threshold: f64,
    /// Trailing window, hours.
    pub window: usize,
    /// Minimum absolute count for an anomaly (suppresses cold-start noise).
    pub min_count: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            threshold: 4.0,
            window: 48,
            min_count: 50.0,
        }
    }
}

fn trailing_median(series: &[f64], i: usize, window: usize) -> f64 {
    let lo = i.saturating_sub(window);
    let mut slice: Vec<f64> = series[lo..i].to_vec();
    if slice.is_empty() {
        return f64::MAX; // nothing to compare against yet
    }
    slice.sort_by(|a, b| a.partial_cmp(b).unwrap());
    slice[slice.len() / 2].max(1.0)
}

fn detect_series(series: &[f64], signal: &'static str, cfg: &DetectorConfig) -> Vec<Episode> {
    let mut episodes: Vec<Episode> = Vec::new();
    let mut current: Option<Episode> = None;
    for (i, &v) in series.iter().enumerate() {
        let baseline = trailing_median(series, i, cfg.window);
        let mult = v / baseline;
        // Warm-up guard: the trailing median needs a day of history before
        // diurnal ramps stop looking anomalous.
        let anomalous = i >= 24 && v >= cfg.min_count && mult >= cfg.threshold;
        match (&mut current, anomalous) {
            (None, true) => {
                current = Some(Episode {
                    start_hour: i,
                    end_hour: i,
                    peak_multiplier: mult,
                    signal,
                });
            }
            (Some(ep), true) => {
                ep.end_hour = i;
                ep.peak_multiplier = ep.peak_multiplier.max(mult);
            }
            (Some(_), false) => {
                episodes.push(current.take().unwrap());
            }
            (None, false) => {}
        }
    }
    episodes.extend(current);
    episodes
}

/// Full detection report over the three Fig. 5 signals.
#[derive(Debug, Serialize)]
pub struct DdosReport {
    pub episodes: Vec<Episode>,
    pub session_per_hour: Vec<f64>,
    pub auth_per_hour: Vec<f64>,
    pub storage_per_hour: Vec<f64>,
}

/// Merges overlapping episodes across signals into distinct attacks.
pub fn distinct_attacks(episodes: &[Episode]) -> Vec<(usize, usize, f64)> {
    let mut spans: Vec<(usize, usize, f64)> = Vec::new();
    let mut sorted = episodes.to_vec();
    sorted.sort_by_key(|e| e.start_hour);
    for e in sorted {
        match spans.last_mut() {
            // Merge episodes within 3 hours of each other.
            Some((_, end, peak)) if e.start_hour <= *end + 3 => {
                *end = (*end).max(e.end_hour);
                *peak = peak.max(e.peak_multiplier);
            }
            _ => spans.push((e.start_hour, e.end_hour, e.peak_multiplier)),
        }
    }
    spans
}

/// Streaming state behind [`detect`]: the three Fig. 5 hourly count series.
/// Counts are integers, so chunk merges add exactly and the episode search
/// at finish sees the same series the legacy three-pass binning built.
pub struct DdosFold {
    horizon: SimTime,
    cfg: DetectorConfig,
    session: Vec<u64>,
    auth: Vec<u64>,
    storage: Vec<u64>,
}

impl DdosFold {
    pub fn new(horizon: SimTime, cfg: DetectorConfig) -> Self {
        let bins = crate::timeseries::hour_bins(horizon);
        Self {
            horizon,
            cfg,
            session: vec![0; bins],
            auth: vec![0; bins],
            storage: vec![0; bins],
        }
    }
}

impl TraceFold for DdosFold {
    type Output = DdosReport;

    fn new_partial(&self) -> Self {
        DdosFold::new(self.horizon, self.cfg.clone())
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if rec.t >= self.horizon {
            return;
        }
        let h = rec.t.bin_index(SimDuration::from_hours(1)) as usize;
        match &rec.payload {
            Payload::Session { .. } => self.session[h] += 1,
            Payload::Auth { .. } => self.auth[h] += 1,
            Payload::Storage { .. } => self.storage[h] += 1,
            _ => {}
        }
    }

    fn merge(&mut self, later: Self) {
        for (d, s) in self.session.iter_mut().zip(later.session) {
            *d += s;
        }
        for (d, s) in self.auth.iter_mut().zip(later.auth) {
            *d += s;
        }
        for (d, s) in self.storage.iter_mut().zip(later.storage) {
            *d += s;
        }
    }

    fn finish(self) -> DdosReport {
        let to_f64 = |v: Vec<u64>| -> Vec<f64> { v.into_iter().map(|c| c as f64).collect() };
        let session = to_f64(self.session);
        let auth = to_f64(self.auth);
        let storage = to_f64(self.storage);
        let mut episodes = detect_series(&session, "session", &self.cfg);
        episodes.extend(detect_series(&auth, "auth", &self.cfg));
        episodes.extend(detect_series(&storage, "storage", &self.cfg));
        episodes.sort_by_key(|e| (e.start_hour, e.signal));
        DdosReport {
            episodes,
            session_per_hour: session,
            auth_per_hour: auth,
            storage_per_hour: storage,
        }
    }
}

pub fn detect(records: &[TraceRecord], horizon: SimTime, cfg: &DetectorConfig) -> DdosReport {
    crate::engine::run_fold(DdosFold::new(horizon, cfg.clone()), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    #[test]
    fn flat_series_has_no_episodes() {
        let series = vec![100.0; 200];
        assert!(detect_series(&series, "auth", &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn spike_is_detected_with_right_multiplier() {
        let mut series = vec![100.0; 100];
        series[60] = 1500.0;
        series[61] = 1500.0;
        let eps = detect_series(&series, "auth", &DetectorConfig::default());
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].start_hour, 60);
        assert_eq!(eps[0].end_hour, 61);
        assert!((eps[0].peak_multiplier - 15.0).abs() < 0.5);
    }

    #[test]
    fn low_volume_noise_is_suppressed() {
        // A 10x spike on a nearly-zero baseline is below min_count.
        let mut series = vec![1.0; 100];
        series[50] = 10.0;
        assert!(detect_series(&series, "auth", &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn distinct_attacks_merge_signals() {
        let episodes = vec![
            Episode {
                start_hour: 100,
                end_hour: 102,
                peak_multiplier: 10.0,
                signal: "auth",
            },
            Episode {
                start_hour: 101,
                end_hour: 103,
                peak_multiplier: 245.0,
                signal: "storage",
            },
            Episode {
                start_hour: 600,
                end_hour: 601,
                peak_multiplier: 6.0,
                signal: "session",
            },
        ];
        let attacks = distinct_attacks(&episodes);
        assert_eq!(attacks.len(), 2);
        assert_eq!(attacks[0], (100, 103, 245.0));
    }

    #[test]
    fn end_to_end_detection_on_synthetic_trace() {
        let mut recs = Vec::new();
        // 40 auths/hour baseline for 5 days, 600/hour during hour 60-61.
        for h in 0..120u64 {
            let n = if (60..62).contains(&h) { 600 } else { 40 };
            for k in 0..n {
                recs.push(auth(
                    SimTime::from_hours(h) + SimDuration::from_secs(k),
                    k,
                    true,
                ));
            }
        }
        let report = detect(&recs, SimTime::from_days(5), &DetectorConfig::default());
        let attacks = distinct_attacks(&report.episodes);
        assert_eq!(attacks.len(), 1);
        assert_eq!(attacks[0].0 / 24, 2, "attack on day 2");
    }

    #[test]
    fn chunked_detection_matches_serial() {
        let mut recs = Vec::new();
        for h in 0..120u64 {
            let n = if (60..62).contains(&h) { 600 } else { 40 };
            for k in 0..n {
                recs.push(auth(
                    SimTime::from_hours(h) + SimDuration::from_secs(k),
                    k,
                    true,
                ));
            }
        }
        let horizon = SimTime::from_days(5);
        let cfg = DetectorConfig::default();
        let serial = detect(&recs, horizon, &cfg);
        for chunk_len in [1usize, 997, 4096] {
            let chunks: Vec<&[_]> = recs.chunks(chunk_len).collect();
            let got = crate::engine::run_chunks(DdosFold::new(horizon, cfg.clone()), &chunks);
            assert_eq!(got.episodes, serial.episodes, "chunk_len={chunk_len}");
            assert_eq!(got.auth_per_hour, serial.auth_per_hour);
        }
    }
}
