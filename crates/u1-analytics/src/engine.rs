//! The streaming fold/merge analytics engine.
//!
//! Every mergeable analyzer implements [`TraceFold`]: records are `feed`
//! one at a time, partial states from disjoint contiguous chunks are
//! `merge`d earlier←later, and `finish` produces the same output the legacy
//! slice-based free function produced. The legacy functions are now thin
//! wrappers over their folds, so the two paths cannot drift.
//!
//! [`Battery`] bundles every fold the experiment harness needs and feeds
//! them all from ONE pass over the trace (the legacy battery made one pass
//! per analyzer — ~30 passes for an EXPERIMENTS.md regeneration).
//! [`run_all_chunked`] splits the record slice into contiguous chunks
//! (adaptively sized — see [`plan_chunk_count`]), folds each on its own
//! thread and tree-merges the partials in chunk order; the result is
//! exactly equal to the serial pass (see DESIGN.md §10 for the determinism
//! argument and §13 for the scaling model).

use crate::burstiness::BurstinessFold;
use crate::ddos::{DdosFold, DdosReport, DetectorConfig};
use crate::dedup::{DedupAnalysis, DedupFold};
use crate::dependencies::{DependencyAnalysis, DependencyFold, LifetimeAnalysis, LifetimeFold};
use crate::faults::{FaultAnalysis, FaultFold};
use crate::markov::{MarkovFold, TransitionGraph};
use crate::rpc::{LoadBalance, LoadBalanceFold, RpcAnalysis, RpcFold};
use crate::sessions::{AuthActivity, AuthActivityFold, SessionAnalysis, SessionFold};
use crate::storage::{
    RwRatioAnalysis, SizeByExtFold, SizeByExtension, SizeCategoryFold, SizeCategoryShares,
    TaxonomyFold, TaxonomyShares, UpdateAnalysis, UpdateFold,
};
use crate::summary::{SummaryFold, TraceSummary};
use crate::timeseries::{OnlineActiveFold, OnlineActiveSeries, TrafficFold, TrafficSeries};
use crate::users::{
    ActiveOnlineSummary, ClassShares, OpMix, OpMixFold, PerUserTrafficFold, TrafficInequality,
};
use serde::Serialize;
use std::time::Instant;
use u1_core::timing::{saturating_nanos, Phase, PhaseTimers};
use u1_core::{ApiOpKind, SimTime};
use u1_trace::TraceRecord;

/// A streaming, mergeable analysis.
///
/// Laws the differential tests pin down:
/// * **fold == slice**: feeding a sorted slice record-by-record and
///   finishing equals the legacy slice analyzer exactly.
/// * **merge is associative** and respects concatenation: for any split of
///   a sorted slice into contiguous chunks, folding each chunk into a
///   partial (from [`TraceFold::new_partial`]) and merging earlier←later
///   yields the same output as one serial pass.
pub trait TraceFold: Sized {
    type Output;

    /// An empty fold carrying the same configuration (horizon, op, …),
    /// suitable for folding one chunk of a larger stream.
    fn new_partial(&self) -> Self;

    /// Absorbs one record. Records must arrive in trace (timestamp-sorted
    /// slice) order within a chunk.
    fn feed(&mut self, rec: &TraceRecord);

    /// Absorbs the partial state of the chunk *immediately after* this
    /// one's. `self` is the earlier chunk.
    fn merge(&mut self, later: Self);

    /// Finalizes into the analyzer's output.
    fn finish(self) -> Self::Output;
}

/// One serial pass: feed every record, then finish.
pub fn run_fold<F: TraceFold>(mut fold: F, records: &[TraceRecord]) -> F::Output {
    for rec in records {
        fold.feed(rec);
    }
    fold.finish()
}

/// Folds each chunk into a fresh partial and merges them left-to-right into
/// `seed`. Chunks must be contiguous pieces of one sorted slice, in order.
/// This is the serial reference for the chunk-parallel path and the
/// workhorse of the adversarial-split differential tests.
pub fn run_chunks<F: TraceFold>(mut seed: F, chunks: &[&[TraceRecord]]) -> F::Output {
    for chunk in chunks {
        let mut part = seed.new_partial();
        for rec in *chunk {
            part.feed(rec);
        }
        seed.merge(part);
    }
    seed.finish()
}

/// Floor on records per chunk: below this, thread spawn + merge overhead
/// dominates the fold work and the "parallel" run is slower than serial.
pub const MIN_CHUNK_RECORDS: usize = 4096;

/// Adaptive chunk count: at most one chunk per thread, but never so many
/// that a chunk falls under [`MIN_CHUNK_RECORDS`] records. Degenerate
/// requests (tiny traces, huge thread counts) collapse to 1 — a plain
/// serial fold with zero spawn overhead.
pub fn plan_chunk_count(len: usize, threads: usize) -> usize {
    threads.max(1).min((len / MIN_CHUNK_RECORDS).max(1))
}

/// Caps a requested thread count at the host's available parallelism:
/// more fold threads than cores never helps (each carries its own partial
/// battery state, so oversubscription just thrashes caches). Pure
/// scheduling — the merge law makes chunk count invisible in the output.
pub fn host_clamped(threads: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    threads.min(cpus)
}

/// Pairwise parallel reduction of chunk partials, in chunk order: rounds of
/// adjacent-pair merges `(0←1), (2←3), …` until one partial remains. The
/// merge law (associative, concat-respecting) makes this bit-identical to
/// the left-fold, but the depth is `log2(chunks)` instead of `chunks`, and
/// the pairs within a round merge concurrently.
pub fn tree_merge<F>(mut parts: Vec<F>) -> Option<F>
where
    F: TraceFold + Send,
{
    while parts.len() > 1 {
        // An odd trailing partial sits this round out and rejoins at the end,
        // so chunk order is preserved.
        let leftover = if parts.len() % 2 == 1 {
            parts.pop()
        } else {
            None
        };
        let mut pairs: Vec<(F, F)> = Vec::with_capacity(parts.len() / 2);
        let mut iter = parts.drain(..);
        while let (Some(earlier), Some(later)) = (iter.next(), iter.next()) {
            pairs.push((earlier, later));
        }
        drop(iter);
        let mut merged: Vec<F> = if pairs.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .into_iter()
                    .map(|(mut earlier, later)| {
                        scope.spawn(move || {
                            earlier.merge(later);
                            earlier
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("merge worker panicked"))
                    .collect()
            })
        } else {
            pairs
                .into_iter()
                .map(|(mut earlier, later)| {
                    earlier.merge(later);
                    earlier
                })
                .collect()
        };
        merged.extend(leftover);
        parts = merged;
    }
    parts.pop()
}

/// Chunk-parallel run: splits `records` into contiguous chunks (see
/// [`plan_chunk_count`]), folds each on its own thread, tree-merges the
/// partials in chunk order. Output is exactly equal to [`run_fold`] at
/// every thread count.
pub fn run_chunked<F>(seed: F, records: &[TraceRecord], threads: usize) -> F::Output
where
    F: TraceFold + Send,
{
    run_chunked_timed(seed, records, threads, &PhaseTimers::new())
}

/// [`run_chunked`] with phase accounting: chunk folds charge
/// [`Phase::Fold`] (per worker, so the total is thread-seconds) and the
/// merge reduction charges [`Phase::Merge`].
pub fn run_chunked_timed<F>(
    mut seed: F,
    records: &[TraceRecord],
    threads: usize,
    timers: &PhaseTimers,
) -> F::Output
where
    F: TraceFold + Send,
{
    fold_chunked_into(&mut seed, records, threads, timers);
    seed.finish()
}

/// The non-finishing core of [`run_chunked_timed`]: chunk-parallel-folds
/// `records` and merges the result into `seed`, leaving it open for more
/// records. By the merge law, calling this once per contiguous piece of a
/// sorted stream (in order) and finishing at the end equals one serial pass
/// over the whole stream — which is what lets the off-disk path fold a
/// month day by day without ever materializing it.
pub fn fold_chunked_into<F>(
    seed: &mut F,
    records: &[TraceRecord],
    threads: usize,
    timers: &PhaseTimers,
) where
    F: TraceFold + Send,
{
    let chunks = plan_chunk_count(records.len(), host_clamped(threads));
    if chunks <= 1 {
        let start = Instant::now();
        for rec in records {
            seed.feed(rec);
        }
        timers.add(Phase::Fold, saturating_nanos(start));
        return;
    }
    let chunk_len = records.len().div_ceil(chunks);
    let partials: Vec<F> = std::thread::scope(|scope| {
        let handles: Vec<_> = records
            .chunks(chunk_len)
            .map(|chunk| {
                let mut part = seed.new_partial();
                scope.spawn(move || {
                    let start = Instant::now();
                    for rec in chunk {
                        part.feed(rec);
                    }
                    timers.add(Phase::Fold, saturating_nanos(start));
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fold worker panicked"))
            .collect()
    });
    let start = Instant::now();
    if let Some(merged) = tree_merge(partials) {
        seed.merge(merged);
    }
    timers.add(Phase::Merge, saturating_nanos(start));
}

/// Configuration for the full experiment battery.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Trace horizon (bins cover `[0, horizon)`).
    pub horizon: SimTime,
    /// API machines for the Fig. 14 load-balance grid.
    pub machines: usize,
    /// Metadata-store shards for the Fig. 14 load-balance grid.
    pub shards: usize,
    /// Per-minute load-balance window, minutes (the paper plots 60).
    pub lb_minutes: usize,
    /// Extensions for the Fig. 4(b) size-by-extension curves.
    pub exts: Vec<String>,
    /// DDoS detector parameters.
    pub ddos: DetectorConfig,
}

impl EngineConfig {
    pub fn new(horizon: SimTime, machines: usize, shards: usize) -> Self {
        Self {
            horizon,
            machines,
            shards,
            lb_minutes: 60,
            exts: ["jpg", "mp3", "pdf", "doc", "java", "zip"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ddos: DetectorConfig::default(),
        }
    }
}

/// Everything the Table-3/figure battery needs, from one pass.
#[derive(Debug, Serialize)]
pub struct EngineReport {
    pub summary: TraceSummary,
    pub traffic: TrafficSeries,
    pub diurnal_swing: f64,
    pub online_active: OnlineActiveSeries,
    pub active_online: ActiveOnlineSummary,
    pub size_shares: SizeCategoryShares,
    pub rw: RwRatioAnalysis,
    pub updates: UpdateAnalysis,
    pub taxonomy: TaxonomyShares,
    pub size_by_ext: SizeByExtension,
    pub dedup: DedupAnalysis,
    pub dependencies: DependencyAnalysis,
    pub lifetimes: LifetimeAnalysis,
    pub ddos: DdosReport,
    pub op_mix: OpMix,
    pub inequality: TrafficInequality,
    pub class_shares: ClassShares,
    pub markov: TransitionGraph,
    pub burst_upload: crate::burstiness::Burstiness,
    pub burst_unlink: crate::burstiness::Burstiness,
    pub rpc: RpcAnalysis,
    pub load_balance: LoadBalance,
    pub auth: AuthActivity,
    pub sessions: SessionAnalysis,
    pub faults: FaultAnalysis,
}

/// All registered folds, fed simultaneously. Itself a [`TraceFold`], so the
/// whole battery chunk-parallelizes like any single analyzer.
pub struct Battery {
    cfg: EngineConfig,
    summary: SummaryFold,
    traffic: TrafficFold,
    online_active: OnlineActiveFold,
    size_shares: SizeCategoryFold,
    updates: UpdateFold,
    taxonomy: TaxonomyFold,
    size_by_ext: SizeByExtFold,
    dedup: DedupFold,
    dependencies: DependencyFold,
    lifetimes: LifetimeFold,
    ddos: DdosFold,
    op_mix: OpMixFold,
    per_user: PerUserTrafficFold,
    markov: MarkovFold,
    burst_upload: BurstinessFold,
    burst_unlink: BurstinessFold,
    rpc: RpcFold,
    load_balance: LoadBalanceFold,
    auth: AuthActivityFold,
    sessions: SessionFold,
    faults: FaultFold,
}

impl Battery {
    pub fn new(cfg: &EngineConfig) -> Self {
        Self {
            summary: SummaryFold::new(cfg.horizon),
            traffic: TrafficFold::new(cfg.horizon),
            online_active: OnlineActiveFold::new(cfg.horizon),
            size_shares: SizeCategoryFold::new(),
            updates: UpdateFold::new(),
            taxonomy: TaxonomyFold::new(),
            size_by_ext: SizeByExtFold::new(cfg.exts.clone()),
            dedup: DedupFold::new(),
            dependencies: DependencyFold::new(),
            lifetimes: LifetimeFold::new(),
            ddos: DdosFold::new(cfg.horizon, cfg.ddos.clone()),
            op_mix: OpMixFold::new(),
            per_user: PerUserTrafficFold::new(),
            markov: MarkovFold::new(),
            burst_upload: BurstinessFold::new(ApiOpKind::Upload),
            burst_unlink: BurstinessFold::new(ApiOpKind::Unlink),
            rpc: RpcFold::new(),
            load_balance: LoadBalanceFold::new(
                cfg.horizon,
                cfg.machines,
                cfg.shards,
                cfg.lb_minutes,
            ),
            auth: AuthActivityFold::new(cfg.horizon),
            sessions: SessionFold::new(),
            faults: FaultFold::new(),
            cfg: cfg.clone(),
        }
    }
}

impl TraceFold for Battery {
    type Output = EngineReport;

    fn new_partial(&self) -> Self {
        Battery::new(&self.cfg)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        self.summary.feed(rec);
        self.traffic.feed(rec);
        self.online_active.feed(rec);
        self.size_shares.feed(rec);
        self.updates.feed(rec);
        self.taxonomy.feed(rec);
        self.size_by_ext.feed(rec);
        self.dedup.feed(rec);
        self.dependencies.feed(rec);
        self.lifetimes.feed(rec);
        self.ddos.feed(rec);
        self.op_mix.feed(rec);
        self.per_user.feed(rec);
        self.markov.feed(rec);
        self.burst_upload.feed(rec);
        self.burst_unlink.feed(rec);
        self.rpc.feed(rec);
        self.load_balance.feed(rec);
        self.auth.feed(rec);
        self.sessions.feed(rec);
        self.faults.feed(rec);
    }

    fn merge(&mut self, later: Self) {
        self.summary.merge(later.summary);
        self.traffic.merge(later.traffic);
        self.online_active.merge(later.online_active);
        self.size_shares.merge(later.size_shares);
        self.updates.merge(later.updates);
        self.taxonomy.merge(later.taxonomy);
        self.size_by_ext.merge(later.size_by_ext);
        self.dedup.merge(later.dedup);
        self.dependencies.merge(later.dependencies);
        self.lifetimes.merge(later.lifetimes);
        self.ddos.merge(later.ddos);
        self.op_mix.merge(later.op_mix);
        self.per_user.merge(later.per_user);
        self.markov.merge(later.markov);
        self.burst_upload.merge(later.burst_upload);
        self.burst_unlink.merge(later.burst_unlink);
        self.rpc.merge(later.rpc);
        self.load_balance.merge(later.load_balance);
        self.auth.merge(later.auth);
        self.sessions.merge(later.sessions);
        self.faults.merge(later.faults);
    }

    fn finish(self) -> EngineReport {
        let traffic = self.traffic.finish();
        let online_active = self.online_active.finish();
        let per_user = self.per_user.finish();
        EngineReport {
            summary: self.summary.finish(),
            diurnal_swing: crate::storage::upload_diurnal_swing_from_series(&traffic),
            rw: crate::storage::rw_ratio_from_series(&traffic),
            active_online: crate::users::active_online_summary_from_series(&online_active),
            size_shares: self.size_shares.finish(),
            updates: self.updates.finish(),
            taxonomy: self.taxonomy.finish(),
            size_by_ext: self.size_by_ext.finish(),
            dedup: self.dedup.finish(),
            dependencies: self.dependencies.finish(),
            lifetimes: self.lifetimes.finish(),
            ddos: self.ddos.finish(),
            op_mix: self.op_mix.finish(),
            inequality: crate::users::traffic_inequality_from_traffic(&per_user),
            class_shares: crate::users::class_shares_from_traffic(&per_user),
            markov: self.markov.finish(),
            burst_upload: self.burst_upload.finish(),
            burst_unlink: self.burst_unlink.finish(),
            rpc: self.rpc.finish(),
            load_balance: self.load_balance.finish(),
            auth: self.auth.finish(),
            sessions: self.sessions.finish(),
            faults: self.faults.finish(),
            traffic,
            online_active,
        }
    }
}

/// One pass over the trace, all analyses at once.
pub fn run_all(records: &[TraceRecord], cfg: &EngineConfig) -> EngineReport {
    run_fold(Battery::new(cfg), records)
}

/// One chunk-parallel pass over the trace, all analyses at once.
pub fn run_all_chunked(
    records: &[TraceRecord],
    cfg: &EngineConfig,
    threads: usize,
) -> EngineReport {
    run_chunked(Battery::new(cfg), records, threads)
}

/// [`run_all_chunked`] with phase accounting (see [`run_chunked_timed`]).
pub fn run_all_chunked_timed(
    records: &[TraceRecord],
    cfg: &EngineConfig,
    threads: usize,
    timers: &PhaseTimers,
) -> EngineReport {
    run_chunked_timed(Battery::new(cfg), records, threads, timers)
}

/// What the off-disk pass saw, alongside its report.
#[derive(Debug)]
pub struct OffDiskStats {
    /// Parse counters summed over every day (plus the directory's skipped
    /// foreign files), identical to a whole-directory read's stats.
    pub parse: u1_trace::ParseStats,
    /// Days folded.
    pub days: usize,
    /// Largest single-day record buffer held in memory — the pass's working
    /// set, ~1/30 of the month's records instead of all of them.
    pub peak_chunk_records: usize,
}

/// The bounded-memory analytics path: folds a *stamped* trace directory
/// (see `DirSink::create_stamped`) day by day — read one day, sort it into
/// canonical `(t, origin, seq)` order, chunk-parallel-fold it into the
/// running battery, drop it, next day. Day files partition the trace by
/// `t.day_index()`, so the concatenation of the sorted days is the exact
/// canonical record sequence and, by the merge law, the report equals
/// [`run_all`] over the fully materialized trace bit for bit — while peak
/// memory stays at one day's records.
pub fn run_all_offdisk(
    dir: &std::path::Path,
    cfg: &EngineConfig,
    threads: usize,
) -> std::io::Result<(EngineReport, OffDiskStats)> {
    run_all_offdisk_timed(dir, cfg, threads, &PhaseTimers::new())
}

/// [`run_all_offdisk`] with phase accounting: day parses charge
/// `Phase::Parse`/`Phase::Sort` inside the reader, folds and merges charge
/// [`Phase::Fold`]/[`Phase::Merge`] as usual.
pub fn run_all_offdisk_timed(
    dir: &std::path::Path,
    cfg: &EngineConfig,
    threads: usize,
    timers: &PhaseTimers,
) -> std::io::Result<(EngineReport, OffDiskStats)> {
    let mut chunks = u1_trace::LogDirReader::new(dir).day_chunks(threads)?;
    let mut parse = u1_trace::ParseStats {
        skipped_files: chunks.skipped_files(),
        ..u1_trace::ParseStats::default()
    };
    let mut seed = Battery::new(cfg);
    let mut days = 0usize;
    let mut peak_chunk_records = 0usize;
    while let Some(chunk) = chunks.next_day_timed(timers) {
        let chunk = chunk?;
        parse.absorb(&chunk.stats);
        days += 1;
        peak_chunk_records = peak_chunk_records.max(chunk.records.len());
        fold_chunked_into(&mut seed, &chunk.records, threads, timers);
    }
    Ok((
        seed.finish(),
        OffDiskStats {
            parse,
            days,
            peak_chunk_records,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    fn mixed_records() -> Vec<TraceRecord> {
        let mut recs = Vec::new();
        for u in 1..=8u64 {
            recs.push(session_open(at(u * 10), u, u));
            recs.push(auth(at(u * 10 + 1), u, u % 5 != 0));
            for k in 0..6u64 {
                recs.push(transfer(
                    at(u * 10 + 100 + k * 700),
                    if k % 3 == 0 { Download } else { Upload },
                    u,
                    u,
                    u * 100 + k % 4,
                    1000 * (k + 1),
                    u * 10 + k % 3,
                    if k % 2 == 0 { "jpg" } else { "mp3" },
                ));
            }
            recs.push(node_op(
                at(u * 10 + 5000),
                Unlink,
                u,
                u,
                u * 100,
                u1_core::NodeKind::File,
            ));
            recs.push(rpc_on(
                at(u * 10 + 2),
                (u % 3) as u16,
                0,
                u1_core::RpcKind::GetNode,
                u,
                (u % 4) as u16,
                1000 + u * 10,
            ));
            recs.push(session_close(at(u * 10 + 6000), u, u));
        }
        recs.sort_by_key(|r| r.t);
        recs
    }

    #[test]
    fn battery_chunked_equals_serial_at_any_split() {
        let recs = mixed_records();
        let cfg = EngineConfig::new(SimTime::from_hours(3), 3, 4);
        let serial = serde_json::to_value(&run_all(&recs, &cfg));
        for threads in [1, 2, 3, 7, 64] {
            let chunked = serde_json::to_value(&run_all_chunked(&recs, &cfg, threads));
            assert_eq!(chunked, serial, "threads={threads}");
        }
        // Adversarial: every record its own chunk.
        let singles: Vec<&[TraceRecord]> = recs.chunks(1).collect();
        let report = run_chunks(Battery::new(&cfg), &singles);
        assert_eq!(serde_json::to_value(&report), serial);
    }

    #[test]
    fn run_chunks_is_associative() {
        let recs = mixed_records();
        let cfg = EngineConfig::new(SimTime::from_hours(3), 3, 4);
        let (a, rest) = recs.split_at(recs.len() / 3);
        let (b, c) = rest.split_at(rest.len() / 2);
        // (A·B)·C
        let left = {
            let mut ab = Battery::new(&cfg);
            for part in [a, b] {
                let mut p = ab.new_partial();
                part.iter().for_each(|r| p.feed(r));
                ab.merge(p);
            }
            let mut pc = ab.new_partial();
            c.iter().for_each(|r| pc.feed(r));
            ab.merge(pc);
            ab.finish()
        };
        // A·(B·C)
        let right = {
            let mut bc = {
                let mut seed = Battery::new(&cfg);
                let mut pb = seed.new_partial();
                b.iter().for_each(|r| pb.feed(r));
                let mut pcc = seed.new_partial();
                c.iter().for_each(|r| pcc.feed(r));
                pb.merge(pcc);
                seed.merge(pb);
                seed
            };
            let mut root = bc.new_partial();
            let mut pa = root.new_partial();
            a.iter().for_each(|r| pa.feed(r));
            root.merge(pa);
            // root now holds A; absorb (B·C).
            std::mem::swap(&mut root, &mut bc);
            // after swap: root = (B·C) battery, bc = A battery — merge A←(B·C).
            bc.merge(root);
            bc.finish()
        };
        assert_eq!(serde_json::to_value(&left), serde_json::to_value(&right));
    }

    #[test]
    fn chunk_planner_clamps_degenerate_splits() {
        // Tiny traces never fan out, no matter how many threads are asked
        // for — the old planner spawned 64 threads for 64 records.
        assert_eq!(plan_chunk_count(0, 64), 1);
        assert_eq!(plan_chunk_count(1, 64), 1);
        assert_eq!(plan_chunk_count(MIN_CHUNK_RECORDS - 1, 64), 1);
        assert_eq!(plan_chunk_count(MIN_CHUNK_RECORDS, 64), 1);
        assert_eq!(plan_chunk_count(2 * MIN_CHUNK_RECORDS, 64), 2);
        // Big traces are still capped at one chunk per thread.
        assert_eq!(plan_chunk_count(100 * MIN_CHUNK_RECORDS, 4), 4);
        assert_eq!(plan_chunk_count(100 * MIN_CHUNK_RECORDS, 1), 1);
        assert_eq!(plan_chunk_count(100 * MIN_CHUNK_RECORDS, 0), 1);
        // And the degenerate-split run still equals serial (the clamp must
        // not change output, only the schedule).
        let recs = mixed_records();
        let cfg = EngineConfig::new(SimTime::from_hours(3), 3, 4);
        let serial = serde_json::to_value(&run_all(&recs, &cfg));
        for threads in [2, 64, 1024] {
            assert_eq!(plan_chunk_count(recs.len(), threads), 1);
            let got = serde_json::to_value(&run_all_chunked(&recs, &cfg, threads));
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn tree_merge_equals_left_fold_at_any_partial_count() {
        let recs = mixed_records();
        let cfg = EngineConfig::new(SimTime::from_hours(3), 3, 4);
        let serial = serde_json::to_value(&run_all(&recs, &cfg));
        for parts in [1usize, 2, 3, 5, 8, 13] {
            let chunk_len = recs.len().div_ceil(parts);
            let mut seed = Battery::new(&cfg);
            let partials: Vec<Battery> = recs
                .chunks(chunk_len)
                .map(|chunk| {
                    let mut p = seed.new_partial();
                    chunk.iter().for_each(|r| p.feed(r));
                    p
                })
                .collect();
            if let Some(merged) = tree_merge(partials) {
                seed.merge(merged);
            }
            let got = serde_json::to_value(&seed.finish());
            assert_eq!(got, serial, "parts={parts}");
        }
        assert!(tree_merge(Vec::<Battery>::new()).is_none());
    }

    /// The off-disk day-by-day pass over a stamped trace directory equals
    /// `run_all` over the fully materialized canonical record sequence —
    /// field-for-field, at several thread counts — while holding at most
    /// one day's records.
    #[test]
    fn offdisk_run_equals_in_memory_run() {
        let mut recs = Vec::new();
        // Three days of the mixed workload, with deliberate cross-origin
        // timestamp ties (origin/seq stamps assigned round-robin).
        for day in 0..3u64 {
            for (i, mut rec) in mixed_records().into_iter().enumerate() {
                rec.t = SimTime::from_micros(rec.t.as_micros() + day * 86_400 * 1_000_000);
                rec.origin = (i % 3) as u32;
                rec.seq = (day as usize * 10_000 + i) as u64;
                recs.push(rec);
            }
        }
        recs.sort_by_key(|r| (r.t, r.origin, r.seq));
        let cfg = EngineConfig::new(SimTime::from_hours(72), 3, 4);
        let serial = serde_json::to_value(&run_all(&recs, &cfg));

        let dir = std::env::temp_dir().join(format!("u1-offdisk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let sink = u1_trace::DirSink::create_stamped(&dir).unwrap();
            use u1_trace::TraceSink;
            for rec in &recs {
                sink.record(rec.clone());
            }
            sink.flush();
            assert_eq!(sink.io_errors(), 0);
        }
        for threads in [1, 2, 8] {
            let (report, stats) = run_all_offdisk(&dir, &cfg, threads).unwrap();
            assert_eq!(serde_json::to_value(&report), serial, "threads={threads}");
            assert_eq!(stats.days, 3);
            assert_eq!(stats.parse.parsed, recs.len());
            assert_eq!(stats.parse.malformed, 0);
            assert!(
                stats.peak_chunk_records < recs.len(),
                "working set should be one day, not the whole trace"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_trace_finishes_cleanly() {
        let cfg = EngineConfig::new(SimTime::from_hours(1), 1, 1);
        let report = run_all(&[], &cfg);
        assert_eq!(report.summary.records, 0);
        assert_eq!(report.dedup.unique_contents, 0);
        assert_eq!(report.sessions.sessions, 0);
    }
}
