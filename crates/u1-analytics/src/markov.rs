//! The empirical user-centric operation-transition graph (Fig. 8).
//!
//! Fig. 8 aggregates, per user, consecutive pairs of operations; edge
//! weights are global transition frequencies. We reconstruct it from the
//! trace: order every user's operations (storage + authentications) by
//! time and count transitions.

use crate::engine::TraceFold;
use serde::Serialize;
use u1_core::{ApiOpKind, FxHashMap};
use u1_trace::{Payload, TraceRecord};

/// One directed edge of the graph with its global probability.
#[derive(Debug, Clone, Serialize)]
pub struct Edge {
    pub from: &'static str,
    pub to: &'static str,
    /// Fraction of *all* transitions that are this edge (the paper labels
    /// its main edges with global probabilities).
    pub probability: f64,
}

/// The reconstructed transition graph.
#[derive(Debug, Serialize)]
pub struct TransitionGraph {
    pub total_transitions: u64,
    /// Edges sorted by probability descending, then by (from, to) name so
    /// equal-probability edges order deterministically.
    pub edges: Vec<Edge>,
    /// Per-state transition matrix rows: (from, to, conditional p).
    pub conditional: Vec<(&'static str, &'static str, f64)>,
}

impl TransitionGraph {
    /// Global probability of a specific edge.
    pub fn probability(&self, from: ApiOpKind, to: ApiOpKind) -> f64 {
        self.edges
            .iter()
            .find(|e| e.from == from.display_name() && e.to == to.display_name())
            .map(|e| e.probability)
            .unwrap_or(0.0)
    }
}

/// Normalizes a record to a chain state, or `None` if it doesn't belong in
/// Fig. 8 (MakeFile/MakeDir collapse into "Make" as the figure shows one
/// Make node).
fn chain_state(rec: &TraceRecord) -> Option<(u64, ApiOpKind)> {
    match &rec.payload {
        Payload::Storage {
            op,
            user,
            success: true,
            ..
        } => {
            let op = match op {
                ApiOpKind::MakeDir => ApiOpKind::MakeFile, // collapse to Make
                ApiOpKind::OpenSession | ApiOpKind::CloseSession => return None,
                other => *other,
            };
            Some((user.raw(), op))
        }
        Payload::Auth {
            user,
            success: true,
        } => Some((user.raw(), ApiOpKind::Authenticate)),
        _ => None,
    }
}

/// Streaming state behind [`transition_graph`]. Besides the edge counters,
/// a partial keeps each user's first and last chain state so the merge can
/// count the one boundary-straddling transition per user.
pub struct MarkovFold {
    counts: FxHashMap<(ApiOpKind, ApiOpKind), u64>,
    from_totals: FxHashMap<ApiOpKind, u64>,
    total: u64,
    first: FxHashMap<u64, ApiOpKind>,
    last: FxHashMap<u64, ApiOpKind>,
}

impl MarkovFold {
    pub fn new() -> Self {
        Self {
            counts: FxHashMap::default(),
            from_totals: FxHashMap::default(),
            total: 0,
            first: FxHashMap::default(),
            last: FxHashMap::default(),
        }
    }

    fn count_edge(&mut self, from: ApiOpKind, to: ApiOpKind) {
        *self.counts.entry((from, to)).or_default() += 1;
        *self.from_totals.entry(from).or_default() += 1;
        self.total += 1;
    }
}

impl Default for MarkovFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for MarkovFold {
    type Output = TransitionGraph;

    fn new_partial(&self) -> Self {
        MarkovFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        let Some((user, op)) = chain_state(rec) else {
            return;
        };
        match self.last.insert(user, op) {
            Some(prev) => self.count_edge(prev, op),
            None => {
                self.first.insert(user, op);
            }
        }
    }

    fn merge(&mut self, mut later: Self) {
        // The boundary transition: our last op per user flows into the later
        // chunk's first op for the same user. Measure while both sides are
        // intact.
        for (user, first_op) in &later.first {
            if let Some(prev) = self.last.get(user).copied() {
                self.count_edge(prev, *first_op);
            }
        }
        // The edge counters are additive, so accumulate into whichever map
        // is larger — `finish` sorts, so map identity is invisible.
        if later.counts.len() > self.counts.len() {
            std::mem::swap(&mut self.counts, &mut later.counts);
        }
        for (key, c) in later.counts.drain() {
            *self.counts.entry(key).or_default() += c;
        }
        if later.from_totals.len() > self.from_totals.len() {
            std::mem::swap(&mut self.from_totals, &mut later.from_totals);
        }
        for (op, c) in later.from_totals.drain() {
            *self.from_totals.entry(op).or_default() += c;
        }
        self.total += later.total;
        // `last`: the later chunk wins; when the later map is the base,
        // earlier entries only fill absent keys.
        if later.last.len() > self.last.len() {
            std::mem::swap(&mut self.last, &mut later.last);
            for (user, op) in later.last.drain() {
                self.last.entry(user).or_insert(op);
            }
        } else {
            for (user, op) in later.last {
                self.last.insert(user, op);
            }
        }
        // `first`: the earlier chunk wins — the mirror image.
        if later.first.len() > self.first.len() {
            std::mem::swap(&mut self.first, &mut later.first);
            for (user, op) in later.first.drain() {
                self.first.insert(user, op);
            }
        } else {
            for (user, op) in later.first {
                self.first.entry(user).or_insert(op);
            }
        }
    }

    fn finish(self) -> TransitionGraph {
        let mut edges: Vec<Edge> = self
            .counts
            .iter()
            .map(|((from, to), c)| Edge {
                from: from.display_name(),
                to: to.display_name(),
                probability: *c as f64 / self.total.max(1) as f64,
            })
            .collect();
        edges.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap()
                .then_with(|| (a.from, a.to).cmp(&(b.from, b.to)))
        });
        let mut conditional: Vec<(&'static str, &'static str, f64)> = self
            .counts
            .iter()
            .map(|((from, to), c)| {
                (
                    from.display_name(),
                    to.display_name(),
                    *c as f64 / self.from_totals[from].max(1) as f64,
                )
            })
            .collect();
        conditional.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        TransitionGraph {
            total_transitions: self.total,
            edges,
            conditional,
        }
    }
}

pub fn transition_graph(records: &[TraceRecord]) -> TransitionGraph {
    crate::engine::run_fold(MarkovFold::new(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn counts_per_user_transitions_only() {
        let recs = vec![
            // User 1: Upload -> Upload -> Download.
            transfer(at(1), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(2), Upload, 1, 1, 2, 10, 2, "a"),
            transfer(at(3), Download, 1, 1, 1, 10, 1, "a"),
            // User 2 interleaved: must not create cross-user edges.
            op(at(2), ListVolumes, 2, 2),
            op(at(4), ListShares, 2, 2),
        ];
        let g = transition_graph(&recs);
        assert_eq!(g.total_transitions, 3);
        assert!((g.probability(Upload, Upload) - 1.0 / 3.0).abs() < 1e-9);
        assert!((g.probability(Upload, Download) - 1.0 / 3.0).abs() < 1e-9);
        assert!((g.probability(ListVolumes, ListShares) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(g.probability(Download, ListVolumes), 0.0);
    }

    #[test]
    fn make_dir_collapses_into_make() {
        let recs = vec![
            node_op(at(1), MakeDir, 1, 1, 1, u1_core::NodeKind::Directory),
            node_op(at(2), MakeFile, 1, 1, 2, u1_core::NodeKind::File),
        ];
        let g = transition_graph(&recs);
        assert!((g.probability(MakeFile, MakeFile) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auth_enters_the_chain() {
        let recs = vec![
            auth(at(1), 1, true),
            op(at(2), ListVolumes, 1, 1),
            op(at(3), ListShares, 1, 1),
        ];
        let g = transition_graph(&recs);
        assert!(g.probability(Authenticate, ListVolumes) > 0.0);
        // Conditional: from Authenticate, everything went to ListVolumes.
        let cond = g
            .conditional
            .iter()
            .find(|(f, t, _)| *f == "Authenticate" && *t == "List Vol.")
            .unwrap();
        assert!((cond.2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failed_ops_are_excluded() {
        let mut bad = transfer(at(2), Upload, 1, 1, 1, 10, 1, "a");
        if let Payload::Storage { success, .. } = &mut bad.payload {
            *success = false;
        }
        let recs = vec![transfer(at(1), Upload, 1, 1, 1, 10, 1, "a"), bad];
        let g = transition_graph(&recs);
        assert_eq!(g.total_transitions, 0);
    }

    #[test]
    fn chunk_boundary_transitions_are_counted_once() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(2), Upload, 2, 2, 2, 10, 2, "a"),
            transfer(at(3), Download, 1, 1, 1, 10, 1, "a"),
            transfer(at(4), Download, 2, 2, 2, 10, 2, "a"),
            transfer(at(5), Upload, 1, 1, 3, 10, 3, "a"),
        ];
        let serial = transition_graph(&recs);
        for split in 0..=recs.len() {
            let (a, b) = recs.split_at(split);
            let got = crate::engine::run_chunks(MarkovFold::new(), &[a, b]);
            assert_eq!(
                got.total_transitions, serial.total_transitions,
                "split={split}"
            );
            assert_eq!(
                serde_json::to_value(&got.edges),
                serde_json::to_value(&serial.edges),
                "split={split}"
            );
        }
    }
}
