//! The empirical user-centric operation-transition graph (Fig. 8).
//!
//! Fig. 8 aggregates, per user, consecutive pairs of operations; edge
//! weights are global transition frequencies. We reconstruct it from the
//! trace: order every user's operations (storage + authentications) by
//! time and count transitions.

use serde::Serialize;
use std::collections::HashMap;
use u1_core::ApiOpKind;
use u1_trace::{Payload, TraceRecord};

/// One directed edge of the graph with its global probability.
#[derive(Debug, Clone, Serialize)]
pub struct Edge {
    pub from: &'static str,
    pub to: &'static str,
    /// Fraction of *all* transitions that are this edge (the paper labels
    /// its main edges with global probabilities).
    pub probability: f64,
}

/// The reconstructed transition graph.
#[derive(Debug, Serialize)]
pub struct TransitionGraph {
    pub total_transitions: u64,
    /// Edges sorted by probability, descending.
    pub edges: Vec<Edge>,
    /// Per-state transition matrix rows: (from, to, conditional p).
    pub conditional: Vec<(&'static str, &'static str, f64)>,
}

impl TransitionGraph {
    /// Global probability of a specific edge.
    pub fn probability(&self, from: ApiOpKind, to: ApiOpKind) -> f64 {
        self.edges
            .iter()
            .find(|e| e.from == from.display_name() && e.to == to.display_name())
            .map(|e| e.probability)
            .unwrap_or(0.0)
    }
}

/// Normalizes a record to a chain state, or `None` if it doesn't belong in
/// Fig. 8 (MakeFile/MakeDir collapse into "Make" as the figure shows one
/// Make node).
fn chain_state(rec: &TraceRecord) -> Option<(u64, ApiOpKind)> {
    match &rec.payload {
        Payload::Storage {
            op,
            user,
            success: true,
            ..
        } => {
            let op = match op {
                ApiOpKind::MakeDir => ApiOpKind::MakeFile, // collapse to Make
                ApiOpKind::OpenSession | ApiOpKind::CloseSession => return None,
                other => *other,
            };
            Some((user.raw(), op))
        }
        Payload::Auth {
            user,
            success: true,
        } => Some((user.raw(), ApiOpKind::Authenticate)),
        _ => None,
    }
}

pub fn transition_graph(records: &[TraceRecord]) -> TransitionGraph {
    let mut last: HashMap<u64, ApiOpKind> = HashMap::new();
    let mut counts: HashMap<(ApiOpKind, ApiOpKind), u64> = HashMap::new();
    let mut from_totals: HashMap<ApiOpKind, u64> = HashMap::new();
    let mut total = 0u64;
    for rec in records {
        let Some((user, op)) = chain_state(rec) else {
            continue;
        };
        if let Some(prev) = last.insert(user, op) {
            *counts.entry((prev, op)).or_default() += 1;
            *from_totals.entry(prev).or_default() += 1;
            total += 1;
        }
    }
    let mut edges: Vec<Edge> = counts
        .iter()
        .map(|((from, to), c)| Edge {
            from: from.display_name(),
            to: to.display_name(),
            probability: *c as f64 / total.max(1) as f64,
        })
        .collect();
    edges.sort_by(|a, b| b.probability.partial_cmp(&a.probability).unwrap());
    let mut conditional: Vec<(&'static str, &'static str, f64)> = counts
        .iter()
        .map(|((from, to), c)| {
            (
                from.display_name(),
                to.display_name(),
                *c as f64 / from_totals[from].max(1) as f64,
            )
        })
        .collect();
    conditional.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    TransitionGraph {
        total_transitions: total,
        edges,
        conditional,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn counts_per_user_transitions_only() {
        let recs = vec![
            // User 1: Upload -> Upload -> Download.
            transfer(at(1), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(2), Upload, 1, 1, 2, 10, 2, "a"),
            transfer(at(3), Download, 1, 1, 1, 10, 1, "a"),
            // User 2 interleaved: must not create cross-user edges.
            op(at(2), ListVolumes, 2, 2),
            op(at(4), ListShares, 2, 2),
        ];
        let g = transition_graph(&recs);
        assert_eq!(g.total_transitions, 3);
        assert!((g.probability(Upload, Upload) - 1.0 / 3.0).abs() < 1e-9);
        assert!((g.probability(Upload, Download) - 1.0 / 3.0).abs() < 1e-9);
        assert!((g.probability(ListVolumes, ListShares) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(g.probability(Download, ListVolumes), 0.0);
    }

    #[test]
    fn make_dir_collapses_into_make() {
        let recs = vec![
            node_op(at(1), MakeDir, 1, 1, 1, u1_core::NodeKind::Directory),
            node_op(at(2), MakeFile, 1, 1, 2, u1_core::NodeKind::File),
        ];
        let g = transition_graph(&recs);
        assert!((g.probability(MakeFile, MakeFile) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auth_enters_the_chain() {
        let recs = vec![
            auth(at(1), 1, true),
            op(at(2), ListVolumes, 1, 1),
            op(at(3), ListShares, 1, 1),
        ];
        let g = transition_graph(&recs);
        assert!(g.probability(Authenticate, ListVolumes) > 0.0);
        // Conditional: from Authenticate, everything went to ListVolumes.
        let cond = g
            .conditional
            .iter()
            .find(|(f, t, _)| *f == "Authenticate" && *t == "List Vol.")
            .unwrap();
        assert!((cond.2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failed_ops_are_excluded() {
        let mut bad = transfer(at(2), Upload, 1, 1, 1, 10, 1, "a");
        if let Payload::Storage { success, .. } = &mut bad.payload {
            *success = false;
        }
        let recs = vec![transfer(at(1), Upload, 1, 1, 1, 10, 1, "a"), bad];
        let g = transition_graph(&recs);
        assert_eq!(g.total_transitions, 0);
    }
}
