//! Inter-operation time burstiness and power-law fits (§6.2, Fig. 9).

use crate::engine::TraceFold;
use crate::stats::{cv, fit_power_law, Ecdf, PowerLawFit};
use serde::Serialize;
use std::collections::HashMap;
use u1_core::{ApiOpKind, FxHashMap, SimTime};
use u1_trace::{Payload, TraceRecord};

/// Burstiness analysis of one operation type.
#[derive(Debug, Serialize)]
pub struct Burstiness {
    pub op: &'static str,
    /// Count of inter-operation gaps measured.
    pub gaps: usize,
    /// Gap distribution, seconds.
    pub ecdf: Ecdf,
    /// Coefficient of variation — ≫ 1 means bursty/non-Poisson (an
    /// exponential distribution has CV = 1).
    pub cv: f64,
    /// MLE power-law fit of the tail (Fig. 9(b) fits alpha ∈ (1,2)).
    pub fit: Option<PowerLawFit>,
    /// CCDF samples for plotting `(x, P(X >= x))`.
    pub ccdf: Vec<(f64, f64)>,
}

/// Computes per-user inter-arrival gaps of `op` operations across the whole
/// trace (gaps span sessions — that is where the heavy tail lives).
pub fn interop_times(records: &[TraceRecord], op: ApiOpKind) -> Vec<f64> {
    let mut last: HashMap<u64, SimTime> = HashMap::new();
    let mut gaps = Vec::new();
    for rec in records {
        if let Payload::Storage {
            op: got,
            user,
            success: true,
            ..
        } = &rec.payload
        {
            if *got != op {
                continue;
            }
            if let Some(prev) = last.insert(user.raw(), rec.t) {
                let gap = rec.t.since(prev).as_secs_f64();
                if gap > 0.0 {
                    gaps.push(gap);
                }
            }
        }
    }
    gaps
}

/// Streaming state behind [`burstiness`]. A partial keeps each user's first
/// and last matching timestamp so the merge can measure the gap that spans
/// the chunk boundary. `finish` sorts the gaps before fitting, so the same
/// multiset of gaps — however it was chunked — yields bit-identical output.
pub struct BurstinessFold {
    op: ApiOpKind,
    first: FxHashMap<u64, SimTime>,
    last: FxHashMap<u64, SimTime>,
    gaps: Vec<f64>,
}

impl BurstinessFold {
    pub fn new(op: ApiOpKind) -> Self {
        Self {
            op,
            first: FxHashMap::default(),
            last: FxHashMap::default(),
            gaps: Vec::new(),
        }
    }
}

impl TraceFold for BurstinessFold {
    type Output = Burstiness;

    fn new_partial(&self) -> Self {
        BurstinessFold::new(self.op)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if let Payload::Storage {
            op: got,
            user,
            success: true,
            ..
        } = &rec.payload
        {
            if *got != self.op {
                return;
            }
            match self.last.insert(user.raw(), rec.t) {
                Some(prev) => {
                    let gap = rec.t.since(prev).as_secs_f64();
                    if gap > 0.0 {
                        self.gaps.push(gap);
                    }
                }
                None => {
                    self.first.insert(user.raw(), rec.t);
                }
            }
        }
    }

    fn merge(&mut self, mut later: Self) {
        // Boundary gaps must be measured while both sides are intact.
        for (user, t) in &later.first {
            if let Some(prev) = self.last.get(user) {
                let gap = t.since(*prev).as_secs_f64();
                if gap > 0.0 {
                    self.gaps.push(gap);
                }
            }
        }
        // `last`: the later chunk's timestamp wins. Merge the smaller map
        // into the larger; when the later map is the base, earlier entries
        // only fill absent keys.
        if later.last.len() > self.last.len() {
            std::mem::swap(&mut self.last, &mut later.last);
            for (user, t) in later.last.drain() {
                self.last.entry(user).or_insert(t);
            }
        } else {
            for (user, t) in later.last {
                self.last.insert(user, t);
            }
        }
        // `first`: the earlier chunk's timestamp wins — the mirror image.
        if later.first.len() > self.first.len() {
            std::mem::swap(&mut self.first, &mut later.first);
            for (user, t) in later.first.drain() {
                self.first.insert(user, t);
            }
        } else {
            for (user, t) in later.first {
                self.first.entry(user).or_insert(t);
            }
        }
        // Gap buffers: append onto whichever side is larger. `finish` sorts
        // before fitting, so only the multiset matters.
        if later.gaps.len() > self.gaps.len() {
            std::mem::swap(&mut self.gaps, &mut later.gaps);
        }
        self.gaps.append(&mut later.gaps);
    }

    fn finish(mut self) -> Burstiness {
        self.gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gaps = self.gaps;
        let fit = fit_power_law(&gaps, 0.35);
        let n = gaps.len();
        let cv = cv(&gaps);
        let ecdf = Ecdf::from_sorted(gaps);
        let ccdf = if ecdf.is_empty() {
            Vec::new()
        } else {
            let lo = ecdf.min().max(1e-3);
            let hi = ecdf.max();
            (0..40)
                .map(|i| {
                    let x = lo * (hi / lo).powf(i as f64 / 39.0);
                    (x, ecdf.ccdf(x))
                })
                .collect()
        };
        Burstiness {
            op: self.op.display_name(),
            gaps: n,
            cv,
            fit,
            ccdf,
            ecdf,
        }
    }
}

/// Full Fig. 9 analysis for one operation type.
pub fn burstiness(records: &[TraceRecord], op: ApiOpKind) -> Burstiness {
    crate::engine::run_fold(BurstinessFold::new(op), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn gaps_are_per_user() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(5), Upload, 2, 2, 2, 10, 2, "a"),
            transfer(at(10), Upload, 1, 1, 3, 10, 3, "a"), // user 1 gap: 10
            transfer(at(25), Upload, 2, 2, 4, 10, 4, "a"), // user 2 gap: 20
        ];
        let mut gaps = interop_times(&recs, Upload);
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(gaps, vec![10.0, 20.0]);
    }

    #[test]
    fn other_ops_do_not_mix_in() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            node_op(at(5), Unlink, 1, 1, 1, u1_core::NodeKind::File),
            transfer(at(10), Upload, 1, 1, 2, 10, 2, "a"),
        ];
        assert_eq!(interop_times(&recs, Upload), vec![10.0]);
        assert!(interop_times(&recs, Unlink).is_empty());
    }

    #[test]
    fn chunked_gaps_match_serial() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(5), Upload, 2, 2, 2, 10, 2, "a"),
            transfer(at(10), Upload, 1, 1, 3, 10, 3, "a"),
            transfer(at(25), Upload, 2, 2, 4, 10, 4, "a"),
            transfer(at(90), Upload, 1, 1, 5, 10, 5, "a"),
        ];
        let serial = burstiness(&recs, Upload);
        for split in 0..=recs.len() {
            let (a, b) = recs.split_at(split);
            let got = crate::engine::run_chunks(BurstinessFold::new(Upload), &[a, b]);
            assert_eq!(got.gaps, serial.gaps, "split={split}");
            assert_eq!(
                serde_json::to_value(&got.ecdf),
                serde_json::to_value(&serial.ecdf),
                "split={split}"
            );
        }
    }

    #[test]
    fn pareto_gaps_are_detected_as_bursty_with_good_alpha() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let mut t = 0u64;
        let mut recs = Vec::new();
        for i in 0..30_000u64 {
            t += (u1_core::rngx::sample_pareto(&mut rng, 1.54, 41.37) * 1e6) as u64;
            recs.push(transfer(
                SimTime::from_micros(t),
                Upload,
                1,
                1,
                i,
                10,
                i,
                "a",
            ));
        }
        let b = burstiness(&recs, Upload);
        assert_eq!(b.gaps, 29_999);
        let fit = b.fit.expect("fit");
        assert!((fit.alpha - 1.54).abs() < 0.12, "alpha {}", fit.alpha);
        assert!(b.cv > 2.0, "pareto(1.54) is high-variance, cv {}", b.cv);
        // CCDF is decreasing.
        assert!(b.ccdf.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn poisson_gaps_have_cv_near_one() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut t = 0u64;
        let mut recs = Vec::new();
        for i in 0..20_000u64 {
            t += (u1_core::rngx::sample_exp(&mut rng, 60.0) * 1e6) as u64;
            recs.push(transfer(
                SimTime::from_micros(t),
                Upload,
                1,
                1,
                i,
                10,
                i,
                "a",
            ));
        }
        let b = burstiness(&recs, Upload);
        assert!((b.cv - 1.0).abs() < 0.1, "exponential cv {}", b.cv);
    }
}
