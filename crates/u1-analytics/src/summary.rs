//! Table 3 (trace summary) and the Table 1 findings check.

use crate::engine::TraceFold;
use serde::Serialize;
use u1_core::{ApiOpKind, FxHashSet, SimTime};
use u1_trace::{Payload, SessionEvent, TraceRecord};

/// Table 3: "Summary of the trace".
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TraceSummary {
    pub trace_days: u64,
    pub records: u64,
    pub unique_users: u64,
    pub unique_files: u64,
    pub sessions: u64,
    pub transfer_ops: u64,
    pub upload_bytes: u64,
    pub download_bytes: u64,
}

/// Streaming state behind [`trace_summary`]. The user/file id sets are
/// `FxHashSet` — pure u64 membership dominates this pass and SipHash was
/// the bottleneck.
pub struct SummaryFold {
    horizon: SimTime,
    records: u64,
    users: FxHashSet<u64>,
    files: FxHashSet<u64>,
    sessions: u64,
    transfer_ops: u64,
    upload_bytes: u64,
    download_bytes: u64,
}

impl SummaryFold {
    pub fn new(horizon: SimTime) -> Self {
        Self {
            horizon,
            records: 0,
            users: FxHashSet::default(),
            files: FxHashSet::default(),
            sessions: 0,
            transfer_ops: 0,
            upload_bytes: 0,
            download_bytes: 0,
        }
    }
}

impl TraceFold for SummaryFold {
    type Output = TraceSummary;

    fn new_partial(&self) -> Self {
        SummaryFold::new(self.horizon)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        self.records += 1;
        self.users.insert(rec.payload.user().raw());
        match &rec.payload {
            Payload::Session {
                event: SessionEvent::Open,
                ..
            } => self.sessions += 1,
            Payload::Storage {
                op,
                success: true,
                node,
                size,
                ..
            } => {
                if let Some(n) = node {
                    self.files.insert(n.raw());
                }
                match op {
                    ApiOpKind::Upload => {
                        self.transfer_ops += 1;
                        self.upload_bytes += size;
                    }
                    ApiOpKind::Download => {
                        self.transfer_ops += 1;
                        self.download_bytes += size;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn merge(&mut self, later: Self) {
        self.records += later.records;
        self.users.extend(later.users);
        self.files.extend(later.files);
        self.sessions += later.sessions;
        self.transfer_ops += later.transfer_ops;
        self.upload_bytes += later.upload_bytes;
        self.download_bytes += later.download_bytes;
    }

    fn finish(self) -> TraceSummary {
        TraceSummary {
            trace_days: self.horizon.day_index(),
            records: self.records,
            unique_users: self.users.len() as u64,
            unique_files: self.files.len() as u64,
            sessions: self.sessions,
            transfer_ops: self.transfer_ops,
            upload_bytes: self.upload_bytes,
            download_bytes: self.download_bytes,
        }
    }
}

pub fn trace_summary(records: &[TraceRecord], horizon: SimTime) -> TraceSummary {
    crate::engine::run_fold(SummaryFold::new(horizon), records)
}

/// One Table 1 finding with the paper's value and ours.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    pub id: &'static str,
    pub statement: &'static str,
    pub paper_value: f64,
    pub measured: f64,
    /// Acceptable relative band for "shape holds".
    pub tolerance: f64,
}

impl Finding {
    pub fn holds(&self) -> bool {
        // A zero paper value makes the relative band meaningless; compare
        // absolutely instead (without a float `==`, per U1L005).
        if self.paper_value.abs() < f64::EPSILON {
            return self.measured.abs() <= self.tolerance;
        }
        let rel = (self.measured - self.paper_value).abs() / self.paper_value.abs();
        rel <= self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn summary_counts_the_basics() {
        let recs = vec![
            session_open(at(1), 1, 1),
            transfer(at(2), Upload, 1, 1, 10, 100, 1, "a"),
            transfer(at(3), Download, 1, 1, 10, 100, 1, "a"),
            transfer(at(4), Upload, 1, 2, 11, 50, 2, "a"),
            session_close(at(5), 1, 1),
        ];
        let s = trace_summary(&recs, SimTime::from_days(30));
        assert_eq!(s.trace_days, 30);
        assert_eq!(s.unique_users, 2);
        assert_eq!(s.unique_files, 2);
        assert_eq!(s.sessions, 1);
        assert_eq!(s.transfer_ops, 3);
        assert_eq!(s.upload_bytes, 150);
        assert_eq!(s.download_bytes, 100);
    }

    #[test]
    fn finding_tolerance_logic() {
        let f = Finding {
            id: "x",
            statement: "s",
            paper_value: 0.171,
            measured: 0.19,
            tolerance: 0.3,
        };
        assert!(f.holds());
        let f = Finding { measured: 0.4, ..f };
        assert!(!f.holds());
    }
}
