//! Metadata-store RPC performance and load balance (§7.1–§7.2,
//! Figs. 12–14).

use crate::engine::TraceFold;
use crate::stats::{cv, mean, stddev, Ecdf};
use serde::Serialize;
use u1_core::{FxHashMap, RpcClass, RpcKind, SimDuration, SimTime};
use u1_trace::{Payload, TraceRecord};

/// One RPC's service-time profile (a line in one Fig. 12 panel and a point
/// in Fig. 13).
#[derive(Debug, Serialize)]
pub struct RpcProfile {
    pub rpc: &'static str,
    pub class: &'static str,
    pub panel: &'static str,
    pub count: u64,
    pub median_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
    /// Fraction of samples more than 10× the median — the paper observes
    /// 7–22% of samples "very far from the median".
    pub far_from_median: f64,
    pub ecdf: Ecdf,
}

/// Figs. 12–13 analysis.
#[derive(Debug, Serialize)]
pub struct RpcAnalysis {
    pub profiles: Vec<RpcProfile>,
}

impl RpcAnalysis {
    pub fn profile(&self, rpc: RpcKind) -> Option<&RpcProfile> {
        self.profiles.iter().find(|p| p.rpc == rpc.dal_name())
    }

    /// Median of medians per class (the Fig. 13 separation).
    pub fn class_median(&self, class: RpcClass) -> f64 {
        let xs: Vec<f64> = self
            .profiles
            .iter()
            .filter(|p| p.class == class.label() && p.count > 0)
            .map(|p| p.median_s)
            .collect();
        crate::stats::mean(&xs)
    }
}

/// Streaming state behind [`rpc_analysis`]: service-time samples per RPC
/// kind. Merging concatenates; the per-kind ECDFs sort at finish.
pub struct RpcFold {
    samples: FxHashMap<RpcKind, Vec<f64>>,
}

impl RpcFold {
    pub fn new() -> Self {
        Self {
            samples: FxHashMap::default(),
        }
    }
}

impl Default for RpcFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for RpcFold {
    type Output = RpcAnalysis;

    fn new_partial(&self) -> Self {
        RpcFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if let Payload::Rpc {
            rpc, service_us, ..
        } = &rec.payload
        {
            self.samples
                .entry(*rpc)
                .or_default()
                .push(*service_us as f64 / 1e6);
        }
    }

    fn merge(&mut self, later: Self) {
        for (rpc, xs) in later.samples {
            self.samples.entry(rpc).or_default().extend(xs);
        }
    }

    fn finish(mut self) -> RpcAnalysis {
        let mut profiles = Vec::new();
        for rpc in RpcKind::ALL {
            let xs = self.samples.remove(&rpc).unwrap_or_default();
            let ecdf = Ecdf::new(xs);
            let median = ecdf.median();
            let far = if ecdf.is_empty() {
                0.0
            } else {
                1.0 - ecdf.cdf(10.0 * median)
            };
            profiles.push(RpcProfile {
                rpc: rpc.dal_name(),
                class: rpc.class().label(),
                panel: rpc.figure12_panel(),
                count: ecdf.len() as u64,
                median_s: median,
                p99_s: ecdf.quantile(0.99),
                max_s: ecdf.max(),
                far_from_median: far,
                ecdf,
            });
        }
        RpcAnalysis { profiles }
    }
}

pub fn rpc_analysis(records: &[TraceRecord]) -> RpcAnalysis {
    crate::engine::run_fold(RpcFold::new(), records)
}

/// Fig. 14: load balance across API machines (hourly) and store shards
/// (per minute).
#[derive(Debug, Serialize)]
pub struct LoadBalance {
    /// Per-hour (mean, stddev) of API requests across machines.
    pub api_hourly: Vec<(f64, f64)>,
    /// Per-minute (mean, stddev) of RPCs across shards.
    pub shard_minutely: Vec<(f64, f64)>,
    /// Average short-window coefficient of variation for each tier.
    pub api_mean_cv: f64,
    pub shard_mean_cv: f64,
    /// Long-run imbalance: stddev/mean of total per-shard RPC counts over
    /// the whole trace (paper: 4.9%).
    pub shard_longrun_cv: f64,
}

/// Streaming state behind [`load_balance`]. Grid cells are integer request
/// counts, so chunk merges add exactly and the f64 conversion at finish
/// matches the legacy accumulate-as-f64 bit-for-bit.
pub struct LoadBalanceFold {
    horizon: SimTime,
    machines: usize,
    shards: usize,
    minutes: usize,
    api: Vec<Vec<u64>>,
    shard: Vec<Vec<u64>>,
    shard_totals: Vec<u64>,
}

impl LoadBalanceFold {
    pub fn new(horizon: SimTime, machines: usize, shards: usize, minutes_window: usize) -> Self {
        let hours = horizon
            .as_micros()
            .div_ceil(SimDuration::from_hours(1).as_micros()) as usize;
        // Shards are binned per minute over a window (the paper plots 60
        // minutes) — a full month per minute would be enormous.
        Self {
            horizon,
            machines,
            shards,
            minutes: minutes_window,
            api: vec![vec![0; machines]; hours.max(1)],
            shard: vec![vec![0; shards]; minutes_window.max(1)],
            shard_totals: vec![0; shards],
        }
    }
}

impl TraceFold for LoadBalanceFold {
    type Output = LoadBalance;

    fn new_partial(&self) -> Self {
        LoadBalanceFold::new(self.horizon, self.machines, self.shards, self.minutes)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if rec.t >= self.horizon {
            return;
        }
        match &rec.payload {
            Payload::Storage { .. } | Payload::Session { .. } => {
                let h = rec.t.bin_index(SimDuration::from_hours(1)) as usize;
                let m = (rec.machine.raw() as usize) % self.machines;
                self.api[h][m] += 1;
            }
            Payload::Rpc { shard: s, .. } => {
                let idx = (s.raw() as usize) % self.shards;
                self.shard_totals[idx] += 1;
                let minute = rec.t.bin_index(SimDuration::from_mins(1)) as usize;
                if minute < self.minutes {
                    self.shard[minute][idx] += 1;
                }
            }
            _ => {}
        }
    }

    fn merge(&mut self, later: Self) {
        for (dst, src) in self.api.iter_mut().zip(later.api) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        for (dst, src) in self.shard.iter_mut().zip(later.shard) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        for (d, s) in self.shard_totals.iter_mut().zip(later.shard_totals) {
            *d += s;
        }
    }

    fn finish(self) -> LoadBalance {
        let to_f64 = |rows: Vec<Vec<u64>>| -> Vec<Vec<f64>> {
            rows.into_iter()
                .map(|r| r.into_iter().map(|c| c as f64).collect())
                .collect()
        };
        let api = to_f64(self.api);
        let shard = to_f64(self.shard);
        let shard_totals: Vec<f64> = self.shard_totals.into_iter().map(|c| c as f64).collect();
        let summarize = |rows: &[Vec<f64>]| -> Vec<(f64, f64)> {
            rows.iter().map(|r| (mean(r), stddev(r))).collect()
        };
        let api_hourly = summarize(&api);
        let shard_minutely = summarize(&shard);
        let mean_cv = |rows: &[Vec<f64>]| {
            let cvs: Vec<f64> = rows
                .iter()
                .filter(|r| r.iter().sum::<f64>() > 0.0)
                .map(|r| cv(r))
                .collect();
            mean(&cvs)
        };
        LoadBalance {
            api_mean_cv: mean_cv(&api),
            shard_mean_cv: mean_cv(&shard),
            shard_longrun_cv: cv(&shard_totals),
            api_hourly,
            shard_minutely,
        }
    }
}

pub fn load_balance(
    records: &[TraceRecord],
    horizon: SimTime,
    machines: usize,
    shards: usize,
    minutes_window: usize,
) -> LoadBalance {
    crate::engine::run_fold(
        LoadBalanceFold::new(horizon, machines, shards, minutes_window),
        records,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::Upload;

    #[test]
    fn rpc_profiles_summarize_service_times() {
        let mut recs = Vec::new();
        for i in 0..100u64 {
            recs.push(rpc_on(at(i), 0, 0, RpcKind::GetNode, 1, 0, 1_000)); // 1ms
        }
        // One 10s outlier.
        recs.push(rpc_on(at(200), 0, 0, RpcKind::GetNode, 1, 0, 10_000_000));
        recs.push(rpc_on(at(201), 0, 0, RpcKind::DeleteVolume, 1, 0, 500_000));
        let a = rpc_analysis(&recs);
        let node = a.profile(RpcKind::GetNode).unwrap();
        assert_eq!(node.count, 101);
        assert!((node.median_s - 0.001).abs() < 1e-9);
        assert!(node.far_from_median > 0.0);
        assert_eq!(node.panel, "other");
        let dv = a.profile(RpcKind::DeleteVolume).unwrap();
        assert_eq!(dv.class, "cascade");
        assert!((dv.median_s - 0.5).abs() < 1e-9);
        // Unseen RPCs have empty profiles, not panics.
        assert_eq!(a.profile(RpcKind::Move).unwrap().count, 0);
    }

    #[test]
    fn load_balance_detects_skew_and_balance() {
        // Perfectly balanced: same count on each of 2 machines each hour.
        let mut balanced = Vec::new();
        for h in 0..3u64 {
            for m in 0..2u16 {
                for k in 0..10u64 {
                    balanced.push(on_machine(
                        transfer(at(h * 3600 + k), Upload, 1, 1, k, 10, k, "a"),
                        m,
                    ));
                }
            }
        }
        let lb = load_balance(&balanced, SimTime::from_hours(3), 2, 2, 60);
        assert!(lb.api_mean_cv < 1e-9, "balanced cv {}", lb.api_mean_cv);

        // Skewed: everything on machine 0.
        let skewed: Vec<_> = balanced.iter().cloned().map(|r| on_machine(r, 0)).collect();
        let lb = load_balance(&skewed, SimTime::from_hours(3), 2, 2, 60);
        assert!(lb.api_mean_cv > 0.9, "skewed cv {}", lb.api_mean_cv);
    }

    #[test]
    fn shard_longrun_cv_reflects_totals() {
        let mut recs = Vec::new();
        for s in 0..4u16 {
            for k in 0..25u64 {
                recs.push(rpc_on(at(k), 0, 0, RpcKind::GetNode, 1, s, 100));
            }
        }
        let lb = load_balance(&recs, SimTime::from_hours(1), 1, 4, 60);
        assert!(lb.shard_longrun_cv < 1e-9);
        // Unbalance one shard.
        for k in 0..100u64 {
            recs.push(rpc_on(at(k), 0, 0, RpcKind::GetNode, 1, 0, 100));
        }
        let lb = load_balance(&recs, SimTime::from_hours(1), 1, 4, 60);
        assert!(lb.shard_longrun_cv > 0.5);
    }
}
