//! Per-node operation dependencies, reads-per-file and node lifetimes
//! (§5.2, Fig. 3).
//!
//! For each node we track its Write (upload), Read (download) and Delete
//! (unlink) events and classify consecutive pairs into the paper's six
//! dependencies: WAW/RAW/DAW (after a write) and WAR/RAR/DAR (after a
//! read), collecting the inter-operation time for each.

use crate::engine::TraceFold;
use crate::stats::Ecdf;
use serde::Serialize;
use u1_core::{ApiOpKind, FxHashMap, NodeKind, SimDuration, SimTime};
use u1_trace::{Payload, TraceRecord};

/// The six dependency kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Dependency {
    WriteAfterWrite,
    ReadAfterWrite,
    DeleteAfterWrite,
    WriteAfterRead,
    ReadAfterRead,
    DeleteAfterRead,
}

impl Dependency {
    pub const AFTER_WRITE: [Dependency; 3] = [
        Dependency::WriteAfterWrite,
        Dependency::ReadAfterWrite,
        Dependency::DeleteAfterWrite,
    ];
    pub const AFTER_READ: [Dependency; 3] = [
        Dependency::WriteAfterRead,
        Dependency::ReadAfterRead,
        Dependency::DeleteAfterRead,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Dependency::WriteAfterWrite => "WAW",
            Dependency::ReadAfterWrite => "RAW",
            Dependency::DeleteAfterWrite => "DAW",
            Dependency::WriteAfterRead => "WAR",
            Dependency::ReadAfterRead => "RAR",
            Dependency::DeleteAfterRead => "DAR",
        }
    }
}

/// Full dependency analysis output.
#[derive(Debug, Serialize)]
pub struct DependencyAnalysis {
    /// Inter-operation-time ECDF (seconds) per dependency.
    pub times: Vec<(Dependency, Ecdf)>,
    /// Pair counts per dependency.
    pub counts: Vec<(Dependency, u64)>,
    /// Downloads per file (only files downloaded at least once).
    pub reads_per_file: Ecdf,
    /// Fraction of WAW gaps under one hour (§5.2 reports 80%).
    pub waw_under_1h: f64,
    /// Fraction of RAR gaps within one day (§5.2 reports ~40%).
    pub rar_under_1d: f64,
    /// Files unused for > 1 day before deletion, and all deleted files
    /// (§5.2: 12.5M ≈ 9.1% of all files were dying files).
    pub dying_files: u64,
    pub deleted_files: u64,
    /// Distinct files observed.
    pub total_files: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Ev {
    W,
    R,
    D,
}

fn classify(prev: Ev, ev: Ev) -> Option<Dependency> {
    match (prev, ev) {
        (Ev::W, Ev::W) => Some(Dependency::WriteAfterWrite),
        (Ev::W, Ev::R) => Some(Dependency::ReadAfterWrite),
        (Ev::W, Ev::D) => Some(Dependency::DeleteAfterWrite),
        (Ev::R, Ev::W) => Some(Dependency::WriteAfterRead),
        (Ev::R, Ev::R) => Some(Dependency::ReadAfterRead),
        (Ev::R, Ev::D) => Some(Dependency::DeleteAfterRead),
        _ => None, // nothing meaningful follows a delete
    }
}

/// Per-node event chain inside one chunk: the first event (which may pair
/// with an earlier chunk's last event at merge) and the running last state
/// (`None` after a delete — nothing meaningful follows a delete).
struct Chain {
    first: (Ev, SimTime),
    last: Option<(Ev, SimTime)>,
}

/// Streaming state behind [`dependency_analysis`].
pub struct DependencyFold {
    nodes: FxHashMap<u64, Chain>,
    gaps: FxHashMap<Dependency, Vec<f64>>,
    reads: FxHashMap<u64, u64>,
    dying: u64,
    deleted: u64,
}

impl DependencyFold {
    pub fn new() -> Self {
        Self {
            nodes: FxHashMap::default(),
            gaps: FxHashMap::default(),
            reads: FxHashMap::default(),
            dying: 0,
            deleted: 0,
        }
    }

    fn record_pair(&mut self, prev: Ev, prev_t: SimTime, ev: Ev, t: SimTime) {
        if let Some(dep) = classify(prev, ev) {
            let gap = t.since(prev_t);
            self.gaps.entry(dep).or_default().push(gap.as_secs_f64());
            if ev == Ev::D && gap > SimDuration::from_days(1) {
                self.dying += 1;
            }
        }
    }
}

impl Default for DependencyFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for DependencyFold {
    type Output = DependencyAnalysis;

    fn new_partial(&self) -> Self {
        DependencyFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        let Payload::Storage {
            op,
            success: true,
            node: Some(node),
            kind,
            ..
        } = &rec.payload
        else {
            return;
        };
        if *kind == Some(NodeKind::Directory) {
            return;
        }
        let ev = match op {
            ApiOpKind::Upload => Ev::W,
            ApiOpKind::Download => Ev::R,
            ApiOpKind::Unlink => Ev::D,
            _ => return,
        };
        let node = node.raw();
        if ev == Ev::R {
            *self.reads.entry(node).or_default() += 1;
        }
        let next = (ev != Ev::D).then_some((ev, rec.t));
        match self.nodes.get_mut(&node) {
            Some(chain) => {
                let prev = chain.last;
                chain.last = next;
                if let Some((p, p_t)) = prev {
                    self.record_pair(p, p_t, ev, rec.t);
                }
            }
            None => {
                self.nodes.insert(
                    node,
                    Chain {
                        first: (ev, rec.t),
                        last: next,
                    },
                );
            }
        }
        if ev == Ev::D {
            self.deleted += 1;
        }
    }

    fn merge(&mut self, later: Self) {
        for (node, chain) in later.nodes {
            match self.nodes.get_mut(&node) {
                Some(mine) => {
                    let boundary = mine.last;
                    mine.last = chain.last;
                    if let Some((prev, prev_t)) = boundary {
                        let (ev, t) = chain.first;
                        self.record_pair(prev, prev_t, ev, t);
                    }
                }
                None => {
                    self.nodes.insert(node, chain);
                }
            }
        }
        for (dep, xs) in later.gaps {
            self.gaps.entry(dep).or_default().extend(xs);
        }
        for (node, c) in later.reads {
            *self.reads.entry(node).or_default() += c;
        }
        self.dying += later.dying;
        self.deleted += later.deleted;
    }

    fn finish(mut self) -> DependencyAnalysis {
        let pct =
            |gaps: &FxHashMap<Dependency, Vec<f64>>, dep: Dependency, limit: SimDuration| -> f64 {
                gaps.get(&dep)
                    .map(|v| {
                        if v.is_empty() {
                            0.0
                        } else {
                            v.iter().filter(|&&g| g <= limit.as_secs_f64()).count() as f64
                                / v.len() as f64
                        }
                    })
                    .unwrap_or(0.0)
            };
        let waw_under_1h = pct(
            &self.gaps,
            Dependency::WriteAfterWrite,
            SimDuration::from_hours(1),
        );
        let rar_under_1d = pct(
            &self.gaps,
            Dependency::ReadAfterRead,
            SimDuration::from_days(1),
        );

        let all_deps = Dependency::AFTER_WRITE
            .into_iter()
            .chain(Dependency::AFTER_READ);
        DependencyAnalysis {
            counts: all_deps
                .clone()
                .map(|d| (d, self.gaps.get(&d).map(|v| v.len() as u64).unwrap_or(0)))
                .collect(),
            times: all_deps
                .map(|d| (d, Ecdf::new(self.gaps.remove(&d).unwrap_or_default())))
                .collect(),
            reads_per_file: Ecdf::new(self.reads.values().map(|&c| c as f64).collect()),
            waw_under_1h,
            rar_under_1d,
            dying_files: self.dying,
            deleted_files: self.deleted,
            total_files: self.nodes.len() as u64,
        }
    }
}

pub fn dependency_analysis(records: &[TraceRecord]) -> DependencyAnalysis {
    crate::engine::run_fold(DependencyFold::new(), records)
}

/// Fig. 3(c): node lifetimes — Make(kind) to Unlink, per node kind.
#[derive(Debug, Serialize)]
pub struct LifetimeAnalysis {
    pub file_lifetimes: Ecdf,
    pub dir_lifetimes: Ecdf,
    pub files_created: u64,
    pub dirs_created: u64,
    /// Fractions of created nodes deleted within the window.
    pub file_mortality: f64,
    pub dir_mortality: f64,
    /// ... and within 8 hours of creation.
    pub file_mortality_8h: f64,
    pub dir_mortality_8h: f64,
}

/// A make/unlink event that could not be resolved against chunk-local state
/// and must replay, in time order, against earlier chunks at merge.
enum LtEvent {
    Make { node: u64, kind: NodeKind },
    Unlink { node: u64, t: SimTime },
}

/// Streaming state behind [`lifetime_analysis`].
///
/// A Make whose node is absent from the chunk-local `created` map is counted
/// provisionally and recorded as a boundary event; if the merge finds the
/// node already created in an earlier chunk, the provisional count is taken
/// back (matching the serial pass, which only counts first creations but
/// still refreshes the creation record). Unlinks that found nothing local
/// stay pending and resolve against earlier chunks the same way.
pub struct LifetimeFold {
    created: FxHashMap<u64, (NodeKind, SimTime)>,
    file_lt: Vec<f64>,
    dir_lt: Vec<f64>,
    files_created: u64,
    dirs_created: u64,
    boundary: Vec<LtEvent>,
}

impl LifetimeFold {
    pub fn new() -> Self {
        Self {
            created: FxHashMap::default(),
            file_lt: Vec::new(),
            dir_lt: Vec::new(),
            files_created: 0,
            dirs_created: 0,
            boundary: Vec::new(),
        }
    }

    fn push_lifetime(&mut self, kind: NodeKind, secs: f64) {
        match kind {
            NodeKind::File => self.file_lt.push(secs),
            NodeKind::Directory => self.dir_lt.push(secs),
        }
    }

    fn uncount_make(&mut self, kind: NodeKind) {
        match kind {
            NodeKind::File => self.files_created -= 1,
            NodeKind::Directory => self.dirs_created -= 1,
        }
    }
}

impl Default for LifetimeFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for LifetimeFold {
    type Output = LifetimeAnalysis;

    fn new_partial(&self) -> Self {
        LifetimeFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        let Payload::Storage {
            op,
            success: true,
            node: Some(node),
            ..
        } = &rec.payload
        else {
            return;
        };
        let node = node.raw();
        match op {
            ApiOpKind::MakeFile | ApiOpKind::MakeDir => {
                let kind = if *op == ApiOpKind::MakeFile {
                    NodeKind::File
                } else {
                    NodeKind::Directory
                };
                if self.created.insert(node, (kind, rec.t)).is_none() {
                    match kind {
                        NodeKind::File => self.files_created += 1,
                        NodeKind::Directory => self.dirs_created += 1,
                    }
                    self.boundary.push(LtEvent::Make { node, kind });
                }
            }
            ApiOpKind::Unlink => {
                if let Some((kind, t0)) = self.created.remove(&node) {
                    self.push_lifetime(kind, rec.t.since(t0).as_secs_f64());
                } else {
                    self.boundary.push(LtEvent::Unlink { node, t: rec.t });
                }
            }
            _ => {}
        }
    }

    fn merge(&mut self, later: Self) {
        // Replay the later chunk's boundary events, in time order, against
        // our (earlier) creation state.
        let mut kept = Vec::new();
        for ev in later.boundary {
            match ev {
                LtEvent::Make { node, kind } => {
                    if self.created.remove(&node).is_some() {
                        // The node already existed, so the serial pass would
                        // not have counted this Make; the later chunk's own
                        // state carries the refreshed creation record.
                        self.uncount_make(kind);
                    } else {
                        kept.push(ev);
                    }
                }
                LtEvent::Unlink { node, t } => {
                    if let Some((kind, t0)) = self.created.remove(&node) {
                        self.push_lifetime(kind, t.since(t0).as_secs_f64());
                    } else {
                        kept.push(ev);
                    }
                }
            }
        }
        self.boundary.extend(kept);
        self.created.extend(later.created);
        self.file_lt.extend(later.file_lt);
        self.dir_lt.extend(later.dir_lt);
        self.files_created += later.files_created;
        self.dirs_created += later.dirs_created;
    }

    fn finish(self) -> LifetimeAnalysis {
        let eight_h = SimDuration::from_hours(8).as_secs_f64();
        let frac8 = |v: &[f64], total: u64| {
            if total == 0 {
                0.0
            } else {
                v.iter().filter(|&&x| x <= eight_h).count() as f64 / total as f64
            }
        };
        LifetimeAnalysis {
            file_mortality: if self.files_created == 0 {
                0.0
            } else {
                self.file_lt.len() as f64 / self.files_created as f64
            },
            dir_mortality: if self.dirs_created == 0 {
                0.0
            } else {
                self.dir_lt.len() as f64 / self.dirs_created as f64
            },
            file_mortality_8h: frac8(&self.file_lt, self.files_created),
            dir_mortality_8h: frac8(&self.dir_lt, self.dirs_created),
            files_created: self.files_created,
            dirs_created: self.dirs_created,
            file_lifetimes: Ecdf::new(self.file_lt),
            dir_lifetimes: Ecdf::new(self.dir_lt),
        }
    }
}

pub fn lifetime_analysis(records: &[TraceRecord]) -> LifetimeAnalysis {
    crate::engine::run_fold(LifetimeFold::new(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn classifies_all_six_dependencies() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),     // W
            transfer(at(60), Upload, 1, 1, 1, 10, 2, "a"),    // WAW, 60s
            transfer(at(120), Download, 1, 1, 1, 10, 2, "a"), // RAW
            transfer(at(180), Download, 1, 1, 1, 10, 2, "a"), // RAR
            transfer(at(240), Upload, 1, 1, 1, 10, 3, "a"),   // WAR
            node_op(at(300), Unlink, 1, 1, 1, u1_core::NodeKind::File), // DAW
            transfer(at(0), Upload, 1, 2, 2, 10, 4, "b"),
            transfer(at(100), Download, 1, 2, 2, 10, 4, "b"), // RAW
            node_op(at(200), Unlink, 1, 2, 2, u1_core::NodeKind::File), // DAR
        ];
        let a = dependency_analysis(&recs);
        let count = |d: Dependency| a.counts.iter().find(|(k, _)| *k == d).unwrap().1;
        assert_eq!(count(Dependency::WriteAfterWrite), 1);
        assert_eq!(count(Dependency::ReadAfterWrite), 2);
        assert_eq!(count(Dependency::ReadAfterRead), 1);
        assert_eq!(count(Dependency::WriteAfterRead), 1);
        assert_eq!(count(Dependency::DeleteAfterWrite), 1);
        assert_eq!(count(Dependency::DeleteAfterRead), 1);
        assert_eq!(a.deleted_files, 2);
        assert_eq!(a.total_files, 2);
        assert!((a.waw_under_1h - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dying_files_need_a_quiet_day_before_deletion() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            node_op(at(2 * 86_400), Unlink, 1, 1, 1, u1_core::NodeKind::File),
            transfer(at(0), Upload, 1, 1, 2, 10, 2, "a"),
            node_op(at(3_600), Unlink, 1, 1, 2, u1_core::NodeKind::File),
        ];
        let a = dependency_analysis(&recs);
        assert_eq!(a.dying_files, 1);
        assert_eq!(a.deleted_files, 2);
    }

    #[test]
    fn reads_per_file_builds_distribution() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(1), Download, 1, 1, 1, 10, 1, "a"),
            transfer(at(2), Download, 1, 1, 1, 10, 1, "a"),
            transfer(at(3), Download, 1, 1, 1, 10, 1, "a"),
            transfer(at(0), Upload, 1, 1, 2, 10, 2, "a"),
            transfer(at(1), Download, 1, 1, 2, 10, 2, "a"),
        ];
        let a = dependency_analysis(&recs);
        assert_eq!(a.reads_per_file.len(), 2);
        assert_eq!(a.reads_per_file.max(), 3.0);
    }

    #[test]
    fn lifetimes_pair_make_with_unlink() {
        let recs = vec![
            node_op(at(0), MakeFile, 1, 1, 1, u1_core::NodeKind::File),
            node_op(at(100), MakeDir, 1, 1, 2, u1_core::NodeKind::Directory),
            node_op(at(3_600), Unlink, 1, 1, 1, u1_core::NodeKind::File),
            node_op(at(0), MakeFile, 1, 1, 3, u1_core::NodeKind::File), // survives
        ];
        let l = lifetime_analysis(&recs);
        assert_eq!(l.files_created, 2);
        assert_eq!(l.dirs_created, 1);
        assert!((l.file_mortality - 0.5).abs() < 1e-9);
        assert_eq!(l.dir_mortality, 0.0);
        assert!((l.file_mortality_8h - 0.5).abs() < 1e-9);
        assert_eq!(l.file_lifetimes.median(), 3_600.0);
    }

    #[test]
    fn chunked_dependencies_match_serial_at_every_split() {
        // Node 1 spans chunks (W..W..R..D with gaps); node 2 is deleted and
        // re-written; node 3 exists only in the tail.
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(60), Upload, 1, 1, 1, 10, 2, "a"),
            transfer(at(0), Upload, 1, 2, 2, 10, 3, "b"),
            node_op(at(30), Unlink, 1, 2, 2, u1_core::NodeKind::File),
            transfer(at(40), Upload, 1, 2, 2, 10, 4, "b"),
            transfer(at(120), Download, 1, 1, 1, 10, 2, "a"),
            node_op(at(2 * 86_400), Unlink, 1, 1, 1, u1_core::NodeKind::File),
            transfer(at(2 * 86_400 + 5), Upload, 1, 3, 3, 10, 5, "c"),
            transfer(at(2 * 86_400 + 9), Download, 1, 3, 3, 10, 5, "c"),
        ];
        let serial = dependency_analysis(&recs);
        for split in 0..=recs.len() {
            let (a, b) = recs.split_at(split);
            let got = crate::engine::run_chunks(DependencyFold::new(), &[a, b]);
            assert_eq!(
                serde_json::to_value(&got),
                serde_json::to_value(&serial),
                "split={split}"
            );
        }
        // Single-record chunks exercise every boundary at once.
        let chunks: Vec<&[_]> = recs.chunks(1).collect();
        let got = crate::engine::run_chunks(DependencyFold::new(), &chunks);
        assert_eq!(serde_json::to_value(&got), serde_json::to_value(&serial));
    }

    #[test]
    fn chunked_lifetimes_match_serial_at_every_split() {
        // Exercises the re-make quirk: a second Make refreshes the creation
        // record without counting, and an Unlink then measures from the
        // refreshed time.
        let recs = vec![
            node_op(at(0), MakeFile, 1, 1, 1, u1_core::NodeKind::File),
            node_op(at(50), MakeFile, 1, 1, 1, u1_core::NodeKind::File), // refresh, not counted
            node_op(at(100), MakeDir, 1, 1, 2, u1_core::NodeKind::Directory),
            node_op(at(3_650), Unlink, 1, 1, 1, u1_core::NodeKind::File), // lifetime 3600 from refresh
            node_op(at(4_000), MakeFile, 1, 1, 1, u1_core::NodeKind::File), // counted again
            node_op(at(5_000), Unlink, 1, 1, 3, u1_core::NodeKind::File), // never created: ignored
            node_op(at(6_000), Unlink, 1, 1, 2, u1_core::NodeKind::Directory),
        ];
        let serial = lifetime_analysis(&recs);
        assert_eq!(serial.files_created, 2);
        assert_eq!(serial.file_lifetimes.median(), 3_600.0);
        for split in 0..=recs.len() {
            let (a, b) = recs.split_at(split);
            let got = crate::engine::run_chunks(LifetimeFold::new(), &[a, b]);
            assert_eq!(
                serde_json::to_value(&got),
                serde_json::to_value(&serial),
                "split={split}"
            );
        }
        let chunks: Vec<&[_]> = recs.chunks(1).collect();
        let got = crate::engine::run_chunks(LifetimeFold::new(), &chunks);
        assert_eq!(serde_json::to_value(&got), serde_json::to_value(&serial));
    }
}
