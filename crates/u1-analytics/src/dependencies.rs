//! Per-node operation dependencies, reads-per-file and node lifetimes
//! (§5.2, Fig. 3).
//!
//! For each node we track its Write (upload), Read (download) and Delete
//! (unlink) events and classify consecutive pairs into the paper's six
//! dependencies: WAW/RAW/DAW (after a write) and WAR/RAR/DAR (after a
//! read), collecting the inter-operation time for each.

use crate::stats::Ecdf;
use serde::Serialize;
use std::collections::HashMap;
use u1_core::{ApiOpKind, NodeKind, SimDuration, SimTime};
use u1_trace::{Payload, TraceRecord};

/// The six dependency kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Dependency {
    WriteAfterWrite,
    ReadAfterWrite,
    DeleteAfterWrite,
    WriteAfterRead,
    ReadAfterRead,
    DeleteAfterRead,
}

impl Dependency {
    pub const AFTER_WRITE: [Dependency; 3] = [
        Dependency::WriteAfterWrite,
        Dependency::ReadAfterWrite,
        Dependency::DeleteAfterWrite,
    ];
    pub const AFTER_READ: [Dependency; 3] = [
        Dependency::WriteAfterRead,
        Dependency::ReadAfterRead,
        Dependency::DeleteAfterRead,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Dependency::WriteAfterWrite => "WAW",
            Dependency::ReadAfterWrite => "RAW",
            Dependency::DeleteAfterWrite => "DAW",
            Dependency::WriteAfterRead => "WAR",
            Dependency::ReadAfterRead => "RAR",
            Dependency::DeleteAfterRead => "DAR",
        }
    }
}

/// Full dependency analysis output.
#[derive(Debug, Serialize)]
pub struct DependencyAnalysis {
    /// Inter-operation-time ECDF (seconds) per dependency.
    pub times: Vec<(Dependency, Ecdf)>,
    /// Pair counts per dependency.
    pub counts: Vec<(Dependency, u64)>,
    /// Downloads per file (only files downloaded at least once).
    pub reads_per_file: Ecdf,
    /// Fraction of WAW gaps under one hour (§5.2 reports 80%).
    pub waw_under_1h: f64,
    /// Fraction of RAR gaps within one day (§5.2 reports ~40%).
    pub rar_under_1d: f64,
    /// Files unused for > 1 day before deletion, and all deleted files
    /// (§5.2: 12.5M ≈ 9.1% of all files were dying files).
    pub dying_files: u64,
    pub deleted_files: u64,
    /// Distinct files observed.
    pub total_files: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Ev {
    W,
    R,
    D,
}

pub fn dependency_analysis(records: &[TraceRecord]) -> DependencyAnalysis {
    // node -> (last event kind, time, last *any* activity time)
    let mut last: HashMap<u64, (Ev, SimTime)> = HashMap::new();
    let mut gaps: HashMap<Dependency, Vec<f64>> = HashMap::new();
    let mut reads: HashMap<u64, u64> = HashMap::new();
    let mut dying = 0u64;
    let mut deleted = 0u64;
    let mut seen_files: std::collections::HashSet<u64> = std::collections::HashSet::new();

    for rec in records {
        let Payload::Storage {
            op,
            success: true,
            node: Some(node),
            kind,
            ..
        } = &rec.payload
        else {
            continue;
        };
        if *kind == Some(NodeKind::Directory) {
            continue;
        }
        let ev = match op {
            ApiOpKind::Upload => Ev::W,
            ApiOpKind::Download => Ev::R,
            ApiOpKind::Unlink => Ev::D,
            _ => continue,
        };
        let node = node.raw();
        seen_files.insert(node);
        if ev == Ev::R {
            *reads.entry(node).or_default() += 1;
        }
        if let Some((prev, prev_t)) = last.get(&node) {
            let dep = match (prev, ev) {
                (Ev::W, Ev::W) => Some(Dependency::WriteAfterWrite),
                (Ev::W, Ev::R) => Some(Dependency::ReadAfterWrite),
                (Ev::W, Ev::D) => Some(Dependency::DeleteAfterWrite),
                (Ev::R, Ev::W) => Some(Dependency::WriteAfterRead),
                (Ev::R, Ev::R) => Some(Dependency::ReadAfterRead),
                (Ev::R, Ev::D) => Some(Dependency::DeleteAfterRead),
                _ => None, // nothing meaningful follows a delete
            };
            if let Some(dep) = dep {
                let gap = rec.t.since(*prev_t);
                gaps.entry(dep).or_default().push(gap.as_secs_f64());
                if ev == Ev::D && gap > SimDuration::from_days(1) {
                    dying += 1;
                }
            }
        }
        if ev == Ev::D {
            deleted += 1;
            last.remove(&node);
        } else {
            last.insert(node, (ev, rec.t));
        }
    }

    let pct = |dep: Dependency, limit: SimDuration| -> f64 {
        gaps.get(&dep)
            .map(|v| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().filter(|&&g| g <= limit.as_secs_f64()).count() as f64 / v.len() as f64
                }
            })
            .unwrap_or(0.0)
    };
    let waw_under_1h = pct(Dependency::WriteAfterWrite, SimDuration::from_hours(1));
    let rar_under_1d = pct(Dependency::ReadAfterRead, SimDuration::from_days(1));

    let all_deps = Dependency::AFTER_WRITE
        .into_iter()
        .chain(Dependency::AFTER_READ);
    DependencyAnalysis {
        counts: all_deps
            .clone()
            .map(|d| (d, gaps.get(&d).map(|v| v.len() as u64).unwrap_or(0)))
            .collect(),
        times: all_deps
            .map(|d| (d, Ecdf::new(gaps.remove(&d).unwrap_or_default())))
            .collect(),
        reads_per_file: Ecdf::new(reads.values().map(|&c| c as f64).collect()),
        waw_under_1h,
        rar_under_1d,
        dying_files: dying,
        deleted_files: deleted,
        total_files: seen_files.len() as u64,
    }
}

/// Fig. 3(c): node lifetimes — Make(kind) to Unlink, per node kind.
#[derive(Debug, Serialize)]
pub struct LifetimeAnalysis {
    pub file_lifetimes: Ecdf,
    pub dir_lifetimes: Ecdf,
    pub files_created: u64,
    pub dirs_created: u64,
    /// Fractions of created nodes deleted within the window.
    pub file_mortality: f64,
    pub dir_mortality: f64,
    /// ... and within 8 hours of creation.
    pub file_mortality_8h: f64,
    pub dir_mortality_8h: f64,
}

pub fn lifetime_analysis(records: &[TraceRecord]) -> LifetimeAnalysis {
    let mut created: HashMap<u64, (NodeKind, SimTime)> = HashMap::new();
    let mut file_lt = Vec::new();
    let mut dir_lt = Vec::new();
    let mut files_created = 0u64;
    let mut dirs_created = 0u64;
    for rec in records {
        match &rec.payload {
            Payload::Storage {
                op: ApiOpKind::MakeFile,
                success: true,
                node: Some(node),
                ..
            } if created
                .insert(node.raw(), (NodeKind::File, rec.t))
                .is_none() =>
            {
                files_created += 1;
            }
            Payload::Storage {
                op: ApiOpKind::MakeDir,
                success: true,
                node: Some(node),
                ..
            } if created
                .insert(node.raw(), (NodeKind::Directory, rec.t))
                .is_none() =>
            {
                dirs_created += 1;
            }
            Payload::Storage {
                op: ApiOpKind::Unlink,
                success: true,
                node: Some(node),
                ..
            } => {
                if let Some((kind, t0)) = created.remove(&node.raw()) {
                    let lt = rec.t.since(t0).as_secs_f64();
                    match kind {
                        NodeKind::File => file_lt.push(lt),
                        NodeKind::Directory => dir_lt.push(lt),
                    }
                }
            }
            _ => {}
        }
    }
    let eight_h = SimDuration::from_hours(8).as_secs_f64();
    let frac8 = |v: &[f64], total: u64| {
        if total == 0 {
            0.0
        } else {
            v.iter().filter(|&&x| x <= eight_h).count() as f64 / total as f64
        }
    };
    LifetimeAnalysis {
        file_mortality: if files_created == 0 {
            0.0
        } else {
            file_lt.len() as f64 / files_created as f64
        },
        dir_mortality: if dirs_created == 0 {
            0.0
        } else {
            dir_lt.len() as f64 / dirs_created as f64
        },
        file_mortality_8h: frac8(&file_lt, files_created),
        dir_mortality_8h: frac8(&dir_lt, dirs_created),
        files_created,
        dirs_created,
        file_lifetimes: Ecdf::new(file_lt),
        dir_lifetimes: Ecdf::new(dir_lt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn classifies_all_six_dependencies() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),     // W
            transfer(at(60), Upload, 1, 1, 1, 10, 2, "a"),    // WAW, 60s
            transfer(at(120), Download, 1, 1, 1, 10, 2, "a"), // RAW
            transfer(at(180), Download, 1, 1, 1, 10, 2, "a"), // RAR
            transfer(at(240), Upload, 1, 1, 1, 10, 3, "a"),   // WAR
            node_op(at(300), Unlink, 1, 1, 1, u1_core::NodeKind::File), // DAW
            transfer(at(0), Upload, 1, 2, 2, 10, 4, "b"),
            transfer(at(100), Download, 1, 2, 2, 10, 4, "b"), // RAW
            node_op(at(200), Unlink, 1, 2, 2, u1_core::NodeKind::File), // DAR
        ];
        let a = dependency_analysis(&recs);
        let count = |d: Dependency| a.counts.iter().find(|(k, _)| *k == d).unwrap().1;
        assert_eq!(count(Dependency::WriteAfterWrite), 1);
        assert_eq!(count(Dependency::ReadAfterWrite), 2);
        assert_eq!(count(Dependency::ReadAfterRead), 1);
        assert_eq!(count(Dependency::WriteAfterRead), 1);
        assert_eq!(count(Dependency::DeleteAfterWrite), 1);
        assert_eq!(count(Dependency::DeleteAfterRead), 1);
        assert_eq!(a.deleted_files, 2);
        assert_eq!(a.total_files, 2);
        assert!((a.waw_under_1h - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dying_files_need_a_quiet_day_before_deletion() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            node_op(at(2 * 86_400), Unlink, 1, 1, 1, u1_core::NodeKind::File),
            transfer(at(0), Upload, 1, 1, 2, 10, 2, "a"),
            node_op(at(3_600), Unlink, 1, 1, 2, u1_core::NodeKind::File),
        ];
        let a = dependency_analysis(&recs);
        assert_eq!(a.dying_files, 1);
        assert_eq!(a.deleted_files, 2);
    }

    #[test]
    fn reads_per_file_builds_distribution() {
        let recs = vec![
            transfer(at(0), Upload, 1, 1, 1, 10, 1, "a"),
            transfer(at(1), Download, 1, 1, 1, 10, 1, "a"),
            transfer(at(2), Download, 1, 1, 1, 10, 1, "a"),
            transfer(at(3), Download, 1, 1, 1, 10, 1, "a"),
            transfer(at(0), Upload, 1, 1, 2, 10, 2, "a"),
            transfer(at(1), Download, 1, 1, 2, 10, 2, "a"),
        ];
        let a = dependency_analysis(&recs);
        assert_eq!(a.reads_per_file.len(), 2);
        assert_eq!(a.reads_per_file.max(), 3.0);
    }

    #[test]
    fn lifetimes_pair_make_with_unlink() {
        let recs = vec![
            node_op(at(0), MakeFile, 1, 1, 1, u1_core::NodeKind::File),
            node_op(at(100), MakeDir, 1, 1, 2, u1_core::NodeKind::Directory),
            node_op(at(3_600), Unlink, 1, 1, 1, u1_core::NodeKind::File),
            node_op(at(0), MakeFile, 1, 1, 3, u1_core::NodeKind::File), // survives
        ];
        let l = lifetime_analysis(&recs);
        assert_eq!(l.files_created, 2);
        assert_eq!(l.dirs_created, 1);
        assert!((l.file_mortality - 0.5).abs() < 1e-9);
        assert_eq!(l.dir_mortality, 0.0);
        assert!((l.file_mortality_8h - 0.5).abs() < 1e-9);
        assert_eq!(l.file_lifetimes.median(), 3_600.0);
    }
}
