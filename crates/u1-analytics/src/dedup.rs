//! File-level deduplication analysis (§5.3, Fig. 4(a)).

use crate::engine::TraceFold;
use crate::stats::Ecdf;
use serde::Serialize;
use u1_core::{ApiOpKind, ContentHash, FxHashMap};
use u1_trace::{Payload, TraceRecord};

/// Fig. 4(a): distribution of logical copies per distinct content, and the
/// dedup ratio `dr = 1 - D_unique / D_total`.
#[derive(Debug, Clone, Serialize)]
pub struct DedupAnalysis {
    /// Distinct contents observed in uploads.
    pub unique_contents: u64,
    /// Total upload operations carrying a hash.
    pub total_uploads: u64,
    pub unique_bytes: u64,
    pub total_bytes: u64,
    pub dedup_ratio: f64,
    /// Fraction of contents uploaded exactly once.
    pub singleton_fraction: f64,
    /// ECDF over copies-per-content.
    pub copies_per_content: Ecdf,
    /// The most duplicated content's copy count (the "hot spot").
    pub max_copies: u64,
}

/// Streaming state behind [`dedup_analysis`]: copies and last-seen size per
/// content hash. Merging adds copy counts; the later chunk's size wins,
/// matching the serial "size of the last upload" rule.
pub struct DedupFold {
    per_hash: FxHashMap<ContentHash, (u64, u64)>, // hash -> (copies, size)
}

impl DedupFold {
    pub fn new() -> Self {
        Self {
            per_hash: FxHashMap::default(),
        }
    }
}

impl Default for DedupFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for DedupFold {
    type Output = DedupAnalysis;

    fn new_partial(&self) -> Self {
        DedupFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if let Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            hash: Some(hash),
            size,
            ..
        } = &rec.payload
        {
            let entry = self.per_hash.entry(*hash).or_insert((0, *size));
            entry.0 += 1;
            entry.1 = *size;
        }
    }

    fn merge(&mut self, mut later: Self) {
        // Copies are additive; the recorded size is the LATER chunk's last
        // upload. Accumulate into whichever map is larger.
        if later.per_hash.len() > self.per_hash.len() {
            std::mem::swap(&mut self.per_hash, &mut later.per_hash);
            // Base is now the later chunk: earlier copies add in, but the
            // later chunk's size stands for hashes it already saw.
            for (hash, (copies, size)) in later.per_hash.drain() {
                let entry = self.per_hash.entry(hash).or_insert((0, size));
                entry.0 += copies;
            }
        } else {
            for (hash, (copies, size)) in later.per_hash {
                let entry = self.per_hash.entry(hash).or_insert((0, size));
                entry.0 += copies;
                entry.1 = size;
            }
        }
    }

    fn finish(self) -> DedupAnalysis {
        let per_hash = self.per_hash;
        let unique_contents = per_hash.len() as u64;
        let total_uploads: u64 = per_hash.values().map(|(c, _)| *c).sum();
        let unique_bytes: u64 = per_hash.values().map(|(_, s)| *s).sum();
        let total_bytes: u64 = per_hash.values().map(|(c, s)| c * s).sum();
        let singletons = per_hash.values().filter(|(c, _)| *c == 1).count() as u64;
        let copies: Vec<f64> = per_hash.values().map(|(c, _)| *c as f64).collect();
        DedupAnalysis {
            unique_contents,
            total_uploads,
            unique_bytes,
            total_bytes,
            dedup_ratio: if total_bytes == 0 {
                0.0
            } else {
                1.0 - unique_bytes as f64 / total_bytes as f64
            },
            singleton_fraction: if unique_contents == 0 {
                0.0
            } else {
                singletons as f64 / unique_contents as f64
            },
            max_copies: per_hash.values().map(|(c, _)| *c).max().unwrap_or(0),
            copies_per_content: Ecdf::new(copies),
        }
    }
}

pub fn dedup_analysis(records: &[TraceRecord]) -> DedupAnalysis {
    crate::engine::run_fold(DedupFold::new(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::Upload;

    #[test]
    fn ratio_counts_duplicate_bytes() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 1, 100, 42, "mp3"),
            transfer(at(2), Upload, 1, 2, 2, 100, 42, "mp3"), // same content, user 2
            transfer(at(3), Upload, 1, 3, 3, 100, 42, "mp3"), // again
            transfer(at(4), Upload, 1, 1, 4, 300, 7, "pdf"),  // unique
        ];
        let d = dedup_analysis(&recs);
        assert_eq!(d.unique_contents, 2);
        assert_eq!(d.total_uploads, 4);
        assert_eq!(d.unique_bytes, 400);
        assert_eq!(d.total_bytes, 600);
        assert!((d.dedup_ratio - (1.0 - 400.0 / 600.0)).abs() < 1e-12);
        assert!((d.singleton_fraction - 0.5).abs() < 1e-12);
        assert_eq!(d.max_copies, 3);
    }

    #[test]
    fn empty_trace_is_zero() {
        let d = dedup_analysis(&[]);
        assert_eq!(d.dedup_ratio, 0.0);
        assert_eq!(d.unique_contents, 0);
        assert!(d.copies_per_content.is_empty());
    }

    #[test]
    fn downloads_do_not_affect_dedup() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 1, 100, 1, "a"),
            transfer(at(2), u1_core::ApiOpKind::Download, 1, 1, 1, 100, 1, "a"),
        ];
        let d = dedup_analysis(&recs);
        assert_eq!(d.total_uploads, 1);
    }
}
