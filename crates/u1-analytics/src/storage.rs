//! Storage-workload analyses (§5.1, §5.3): size-category traffic shares,
//! R/W ratios, update overhead, file-type taxonomy and size distributions.

use crate::engine::TraceFold;
use crate::stats::{acf, Acf, Ecdf};
use crate::timeseries::{self, TrafficSeries};
use serde::Serialize;
use u1_core::{ApiOpKind, ContentHash, FileCategory, FxHashMap, SimTime, SizeCategory};
use u1_trace::{Payload, TraceRecord};

/// Fig. 2(b): per size-bucket shares of operations and bytes, separately
/// for uploads and downloads.
#[derive(Debug, Clone, Serialize)]
pub struct SizeCategoryShares {
    pub categories: Vec<&'static str>,
    pub upload_op_share: Vec<f64>,
    pub upload_byte_share: Vec<f64>,
    pub download_op_share: Vec<f64>,
    pub download_byte_share: Vec<f64>,
}

/// Streaming state behind [`size_category_shares`].
#[derive(Default)]
pub struct SizeCategoryFold {
    up_ops: [u64; 5],
    up_bytes: [u64; 5],
    down_ops: [u64; 5],
    down_bytes: [u64; 5],
}

impl SizeCategoryFold {
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceFold for SizeCategoryFold {
    type Output = SizeCategoryShares;

    fn new_partial(&self) -> Self {
        Self::default()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if let Payload::Storage {
            op,
            success: true,
            size,
            ..
        } = &rec.payload
        {
            let idx = SizeCategory::ALL
                .iter()
                .position(|c| *c == SizeCategory::of(u1_core::ByteSize(*size)))
                .expect("category");
            match op {
                ApiOpKind::Upload => {
                    self.up_ops[idx] += 1;
                    self.up_bytes[idx] += size;
                }
                ApiOpKind::Download => {
                    self.down_ops[idx] += 1;
                    self.down_bytes[idx] += size;
                }
                _ => {}
            }
        }
    }

    fn merge(&mut self, later: Self) {
        for i in 0..5 {
            self.up_ops[i] += later.up_ops[i];
            self.up_bytes[i] += later.up_bytes[i];
            self.down_ops[i] += later.down_ops[i];
            self.down_bytes[i] += later.down_bytes[i];
        }
    }

    fn finish(self) -> SizeCategoryShares {
        let share = |xs: [u64; 5]| -> Vec<f64> {
            let total: u64 = xs.iter().sum();
            xs.iter()
                .map(|&x| {
                    if total == 0 {
                        0.0
                    } else {
                        x as f64 / total as f64
                    }
                })
                .collect()
        };
        SizeCategoryShares {
            categories: SizeCategory::ALL.iter().map(|c| c.label()).collect(),
            upload_op_share: share(self.up_ops),
            upload_byte_share: share(self.up_bytes),
            download_op_share: share(self.down_ops),
            download_byte_share: share(self.down_bytes),
        }
    }
}

pub fn size_category_shares(records: &[TraceRecord]) -> SizeCategoryShares {
    crate::engine::run_fold(SizeCategoryFold::new(), records)
}

/// Fig. 2(c): the hourly R/W (download/upload bytes) ratio series, its
/// distribution, autocorrelation, and the 6am–3pm hour-of-day profile.
#[derive(Debug, Clone, Serialize)]
pub struct RwRatioAnalysis {
    /// One ratio per hour (hours with zero uploads are skipped).
    pub hourly: Vec<f64>,
    pub median: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub acf: Acf,
    /// Mean ratio per hour-of-day (24 entries).
    pub by_hour_of_day: Vec<f64>,
}

/// Derives the R/W analysis from an already-computed hourly traffic series —
/// the single-pass battery computes the series once and shares it.
pub fn rw_ratio_from_series(ts: &TrafficSeries) -> RwRatioAnalysis {
    // Hours with negligible volume produce degenerate ratios (a scaled-down
    // population has near-empty night hours the production system never
    // had); require at least 2% of the mean hourly volume on both sides.
    let mean_up = crate::stats::mean(&ts.upload_bytes).max(1.0);
    let mean_down = crate::stats::mean(&ts.download_bytes).max(1.0);
    let (min_up, min_down) = (0.02 * mean_up, 0.02 * mean_down);
    let mut hourly = Vec::new();
    let mut by_hour: Vec<Vec<f64>> = vec![Vec::new(); 24];
    for (i, (up, down)) in ts.upload_bytes.iter().zip(&ts.download_bytes).enumerate() {
        if *up > min_up && *down > min_down {
            let ratio = down / up;
            hourly.push(ratio);
            by_hour[i % 24].push(ratio);
        }
    }
    let ecdf = Ecdf::new(hourly.clone());
    RwRatioAnalysis {
        median: ecdf.median(),
        mean: ecdf.mean(),
        min: ecdf.min(),
        max: ecdf.max(),
        acf: acf(&hourly, hourly.len().saturating_sub(1).min(700)),
        by_hour_of_day: by_hour
            .into_iter()
            .map(|v| crate::stats::mean(&v))
            .collect(),
        hourly,
    }
}

pub fn rw_ratio(records: &[TraceRecord], horizon: SimTime) -> RwRatioAnalysis {
    rw_ratio_from_series(&timeseries::traffic_per_hour(records, horizon))
}

/// §5.1: updates — uploads to a node that already had different content.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct UpdateAnalysis {
    pub uploads: u64,
    pub update_uploads: u64,
    pub upload_bytes: u64,
    pub update_bytes: u64,
    pub update_op_fraction: f64,
    pub update_traffic_fraction: f64,
}

type Content = (Option<ContentHash>, u64);

/// Streaming state behind [`update_analysis`]. An "update" compares each
/// upload with the node's *previous* upload, so a chunk's first upload of a
/// node cannot be classified locally: the partial keeps both the first and
/// the last content seen per node, and the merge classifies the one
/// boundary-straddling pair per node.
pub struct UpdateFold {
    // node -> (first upload content in this partial, last upload content).
    nodes: FxHashMap<u64, (Content, Content)>,
    uploads: u64,
    update_uploads: u64,
    upload_bytes: u64,
    update_bytes: u64,
}

impl UpdateFold {
    pub fn new() -> Self {
        Self {
            nodes: FxHashMap::default(),
            uploads: 0,
            update_uploads: 0,
            upload_bytes: 0,
            update_bytes: 0,
        }
    }
}

impl Default for UpdateFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for UpdateFold {
    type Output = UpdateAnalysis;

    fn new_partial(&self) -> Self {
        UpdateFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if let Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            node: Some(node),
            hash,
            size,
            ..
        } = &rec.payload
        {
            self.uploads += 1;
            self.upload_bytes += size;
            let content: Content = (*hash, *size);
            match self.nodes.get_mut(&node.raw()) {
                Some((_, last)) => {
                    // The paper's definition: "an upload of an existing file
                    // that has distinct hash/size".
                    if *last != content {
                        self.update_uploads += 1;
                        self.update_bytes += size;
                    }
                    *last = content;
                }
                None => {
                    self.nodes.insert(node.raw(), (content, content));
                }
            }
        }
    }

    fn merge(&mut self, mut later: Self) {
        self.uploads += later.uploads;
        self.upload_bytes += later.upload_bytes;
        self.update_uploads += later.update_uploads;
        self.update_bytes += later.update_bytes;
        if later.nodes.len() > self.nodes.len() {
            // Iterate the smaller (earlier) map into the later one. The
            // boundary pair is still (earlier last → later first); the
            // merged span keeps the earlier first and the later last.
            std::mem::swap(&mut self.nodes, &mut later.nodes);
            for (node, (first, last)) in later.nodes.drain() {
                match self.nodes.get_mut(&node) {
                    Some((their_first, _)) => {
                        if last != *their_first {
                            self.update_uploads += 1;
                            self.update_bytes += their_first.1;
                        }
                        *their_first = first;
                    }
                    None => {
                        self.nodes.insert(node, (first, last));
                    }
                }
            }
        } else {
            for (node, (first, last)) in later.nodes {
                match self.nodes.get_mut(&node) {
                    Some((_, my_last)) => {
                        // The later chunk's first upload of this node follows
                        // our last one: classify that boundary pair now.
                        if *my_last != first {
                            self.update_uploads += 1;
                            self.update_bytes += first.1;
                        }
                        *my_last = last;
                    }
                    None => {
                        self.nodes.insert(node, (first, last));
                    }
                }
            }
        }
    }

    fn finish(self) -> UpdateAnalysis {
        let mut out = UpdateAnalysis {
            uploads: self.uploads,
            update_uploads: self.update_uploads,
            upload_bytes: self.upload_bytes,
            update_bytes: self.update_bytes,
            update_op_fraction: 0.0,
            update_traffic_fraction: 0.0,
        };
        if out.uploads > 0 {
            out.update_op_fraction = out.update_uploads as f64 / out.uploads as f64;
        }
        if out.upload_bytes > 0 {
            out.update_traffic_fraction = out.update_bytes as f64 / out.upload_bytes as f64;
        }
        out
    }
}

pub fn update_analysis(records: &[TraceRecord]) -> UpdateAnalysis {
    crate::engine::run_fold(UpdateFold::new(), records)
}

/// Fig. 4(c): per-category share of files and of storage bytes.
#[derive(Debug, Clone, Serialize)]
pub struct TaxonomyShares {
    pub categories: Vec<&'static str>,
    pub file_share: Vec<f64>,
    pub byte_share: Vec<f64>,
}

/// Streaming state behind [`taxonomy_shares`]: last-writer-wins per node,
/// so merging extends with the later chunk's entries winning.
pub struct TaxonomyFold {
    node_cat: FxHashMap<u64, (FileCategory, u64)>,
}

impl TaxonomyFold {
    pub fn new() -> Self {
        Self {
            node_cat: FxHashMap::default(),
        }
    }
}

impl Default for TaxonomyFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for TaxonomyFold {
    type Output = TaxonomyShares;

    fn new_partial(&self) -> Self {
        TaxonomyFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if let Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            node: Some(node),
            size,
            ext,
            ..
        } = &rec.payload
        {
            self.node_cat
                .insert(node.raw(), (FileCategory::of_extension(ext), *size));
        }
    }

    fn merge(&mut self, mut later: Self) {
        // Last writer wins. When the later (winning) map is larger, make it
        // the base and let earlier entries only fill absent nodes.
        if later.node_cat.len() > self.node_cat.len() {
            std::mem::swap(&mut self.node_cat, &mut later.node_cat);
            for (node, v) in later.node_cat.drain() {
                self.node_cat.entry(node).or_insert(v);
            }
        } else {
            self.node_cat.extend(later.node_cat);
        }
    }

    fn finish(self) -> TaxonomyShares {
        let mut files: FxHashMap<FileCategory, u64> = FxHashMap::default();
        let mut bytes: FxHashMap<FileCategory, u64> = FxHashMap::default();
        for (cat, size) in self.node_cat.values() {
            *files.entry(*cat).or_default() += 1;
            *bytes.entry(*cat).or_default() += size;
        }
        let total_files: u64 = files.values().sum();
        let total_bytes: u64 = bytes.values().sum();
        TaxonomyShares {
            categories: FileCategory::ALL.iter().map(|c| c.label()).collect(),
            file_share: FileCategory::ALL
                .iter()
                .map(|c| files.get(c).copied().unwrap_or(0) as f64 / total_files.max(1) as f64)
                .collect(),
            byte_share: FileCategory::ALL
                .iter()
                .map(|c| bytes.get(c).copied().unwrap_or(0) as f64 / total_bytes.max(1) as f64)
                .collect(),
        }
    }
}

pub fn taxonomy_shares(records: &[TraceRecord]) -> TaxonomyShares {
    crate::engine::run_fold(TaxonomyFold::new(), records)
}

/// Fig. 4(b): size ECDF for all uploaded files plus chosen extensions.
#[derive(Debug, Clone, Serialize)]
pub struct SizeByExtension {
    pub all: Ecdf,
    pub by_ext: Vec<(String, Ecdf)>,
    pub under_1mb_fraction: f64,
}

/// Streaming state behind [`size_by_extension`]. The ECDF sorts at finish,
/// so chunk concatenation order never shows in the output.
pub struct SizeByExtFold {
    exts: Vec<String>,
    all: Vec<f64>,
    per: FxHashMap<String, Vec<f64>>,
}

impl SizeByExtFold {
    pub fn new(exts: Vec<String>) -> Self {
        Self {
            exts,
            all: Vec::new(),
            per: FxHashMap::default(),
        }
    }
}

impl TraceFold for SizeByExtFold {
    type Output = SizeByExtension;

    fn new_partial(&self) -> Self {
        SizeByExtFold::new(self.exts.clone())
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if let Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            size,
            ext,
            ..
        } = &rec.payload
        {
            self.all.push(*size as f64);
            if self.exts.iter().any(|e| e.as_str() == ext.as_str()) {
                self.per
                    .entry(ext.to_string())
                    .or_default()
                    .push(*size as f64);
            }
        }
    }

    fn merge(&mut self, mut later: Self) {
        // Multiset buffers: the ECDFs sort at finish, so append onto
        // whichever side is larger instead of always copying `later`.
        if later.all.len() > self.all.len() {
            std::mem::swap(&mut self.all, &mut later.all);
        }
        self.all.append(&mut later.all);
        if later.per.len() > self.per.len() {
            std::mem::swap(&mut self.per, &mut later.per);
        }
        for (ext, mut sizes) in later.per.drain() {
            let mine = self.per.entry(ext).or_default();
            if sizes.len() > mine.len() {
                std::mem::swap(mine, &mut sizes);
            }
            mine.append(&mut sizes);
        }
    }

    fn finish(mut self) -> SizeByExtension {
        let all = Ecdf::new(self.all);
        let under_1mb_fraction = all.cdf(1_000_000.0);
        SizeByExtension {
            under_1mb_fraction,
            by_ext: self
                .exts
                .iter()
                .filter_map(|e| self.per.remove(e).map(|v| (e.to_string(), Ecdf::new(v))))
                .collect(),
            all,
        }
    }
}

pub fn size_by_extension(records: &[TraceRecord], exts: &[&str]) -> SizeByExtension {
    let exts = exts.iter().map(|e| e.to_string()).collect();
    crate::engine::run_fold(SizeByExtFold::new(exts), records)
}

/// Diurnal swing of upload traffic from an already-computed hourly series.
pub fn upload_diurnal_swing_from_series(ts: &TrafficSeries) -> f64 {
    let mut by_hour = vec![Vec::new(); 24];
    for (i, up) in ts.upload_bytes.iter().enumerate() {
        by_hour[i % 24].push(*up);
    }
    let means: Vec<f64> = by_hour.iter().map(|v| crate::stats::mean(v)).collect();
    let peak = means.iter().cloned().fold(0.0f64, f64::max);
    let trough = means.iter().cloned().fold(f64::MAX, f64::min).max(1.0);
    peak / trough
}

/// Diurnal swing of upload traffic (Fig. 2(a)'s "up to 10x higher").
pub fn upload_diurnal_swing(records: &[TraceRecord], horizon: SimTime) -> f64 {
    upload_diurnal_swing_from_series(&timeseries::traffic_per_hour(records, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn size_shares_split_ops_and_bytes() {
        let recs = vec![
            // 3 tiny uploads, 1 huge upload.
            transfer(at(1), Upload, 1, 1, 1, 1_000, 1, "txt"),
            transfer(at(2), Upload, 1, 1, 2, 2_000, 2, "txt"),
            transfer(at(3), Upload, 1, 1, 3, 3_000, 3, "txt"),
            transfer(at(4), Upload, 1, 1, 4, 100_000_000, 4, "iso"),
        ];
        let s = size_category_shares(&recs);
        assert!((s.upload_op_share[0] - 0.75).abs() < 1e-9, "{s:?}");
        assert!(s.upload_byte_share[4] > 0.99, "{s:?}");
        assert_eq!(s.download_op_share.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn rw_ratio_computes_hourly_and_profile() {
        // Hour 0: 100 up, 200 down → ratio 2. Hour 1: 100/50 → 0.5.
        let recs = vec![
            transfer(at(10), Upload, 1, 1, 1, 100, 1, "a"),
            transfer(at(20), Download, 1, 1, 1, 200, 1, "a"),
            transfer(at(3700), Upload, 1, 1, 2, 100, 2, "a"),
            transfer(at(3800), Download, 1, 1, 2, 50, 2, "a"),
        ];
        let rw = rw_ratio(&recs, SimTime::from_hours(2));
        assert_eq!(rw.hourly, vec![2.0, 0.5]);
        assert!((rw.mean - 1.25).abs() < 1e-9);
        assert_eq!(rw.by_hour_of_day[0], 2.0);
        assert_eq!(rw.by_hour_of_day[1], 0.5);
    }

    #[test]
    fn updates_require_changed_hash_or_size() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 7, 100, 1, "txt"), // first upload
            transfer(at(2), Upload, 1, 1, 7, 100, 1, "txt"), // same content: not an update
            transfer(at(3), Upload, 1, 1, 7, 120, 2, "txt"), // update
            transfer(at(4), Upload, 1, 1, 8, 50, 3, "txt"),  // other node, first
        ];
        let u = update_analysis(&recs);
        assert_eq!(u.uploads, 4);
        assert_eq!(u.update_uploads, 1);
        assert_eq!(u.update_bytes, 120);
        assert!((u.update_op_fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    fn updates_split_across_chunks_match_serial() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 7, 100, 1, "txt"),
            transfer(at(2), Upload, 1, 1, 7, 100, 1, "txt"),
            transfer(at(3), Upload, 1, 1, 7, 120, 2, "txt"),
            transfer(at(4), Upload, 1, 1, 8, 50, 3, "txt"),
            transfer(at(5), Upload, 1, 1, 8, 60, 4, "txt"),
        ];
        let serial = update_analysis(&recs);
        for split in 0..=recs.len() {
            let (a, b) = recs.split_at(split);
            let got = crate::engine::run_chunks(UpdateFold::new(), &[a, b]);
            assert_eq!(got, serial, "split={split}");
        }
    }

    #[test]
    fn taxonomy_counts_distinct_nodes_with_final_size() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 1, 10, 1, "c"),
            transfer(at(2), Upload, 1, 1, 1, 30, 2, "c"), // updated same node
            transfer(at(3), Upload, 1, 1, 2, 4_000, 3, "mp3"),
        ];
        let t = taxonomy_shares(&recs);
        let code_idx = t.categories.iter().position(|c| *c == "code").unwrap();
        let av_idx = t
            .categories
            .iter()
            .position(|c| *c == "audio_video")
            .unwrap();
        assert!((t.file_share[code_idx] - 0.5).abs() < 1e-9);
        assert!((t.byte_share[av_idx] - 4000.0 / 4030.0).abs() < 1e-9);
    }

    #[test]
    fn size_by_extension_builds_requested_curves() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 1, 100, 1, "jpg"),
            transfer(at(2), Upload, 1, 1, 2, 5_000_000, 2, "mp3"),
            transfer(at(3), Upload, 1, 1, 3, 200, 3, "txt"),
        ];
        let s = size_by_extension(&recs, &["jpg", "mp3"]);
        assert_eq!(s.all.len(), 3);
        assert_eq!(s.by_ext.len(), 2);
        assert!((s.under_1mb_fraction - 2.0 / 3.0).abs() < 1e-9);
    }
}
