//! Storage-workload analyses (§5.1, §5.3): size-category traffic shares,
//! R/W ratios, update overhead, file-type taxonomy and size distributions.

use crate::stats::{acf, Acf, Ecdf};
use crate::timeseries;
use serde::Serialize;
use std::collections::HashMap;
use u1_core::{ApiOpKind, FileCategory, SimTime, SizeCategory};
use u1_trace::{Payload, TraceRecord};

/// Fig. 2(b): per size-bucket shares of operations and bytes, separately
/// for uploads and downloads.
#[derive(Debug, Clone, Serialize)]
pub struct SizeCategoryShares {
    pub categories: Vec<&'static str>,
    pub upload_op_share: Vec<f64>,
    pub upload_byte_share: Vec<f64>,
    pub download_op_share: Vec<f64>,
    pub download_byte_share: Vec<f64>,
}

pub fn size_category_shares(records: &[TraceRecord]) -> SizeCategoryShares {
    let mut up_ops = [0u64; 5];
    let mut up_bytes = [0u64; 5];
    let mut down_ops = [0u64; 5];
    let mut down_bytes = [0u64; 5];
    for rec in records {
        if let Payload::Storage {
            op,
            success: true,
            size,
            ..
        } = &rec.payload
        {
            let idx = SizeCategory::ALL
                .iter()
                .position(|c| *c == SizeCategory::of(u1_core::ByteSize(*size)))
                .expect("category");
            match op {
                ApiOpKind::Upload => {
                    up_ops[idx] += 1;
                    up_bytes[idx] += size;
                }
                ApiOpKind::Download => {
                    down_ops[idx] += 1;
                    down_bytes[idx] += size;
                }
                _ => {}
            }
        }
    }
    let share = |xs: [u64; 5]| -> Vec<f64> {
        let total: u64 = xs.iter().sum();
        xs.iter()
            .map(|&x| {
                if total == 0 {
                    0.0
                } else {
                    x as f64 / total as f64
                }
            })
            .collect()
    };
    SizeCategoryShares {
        categories: SizeCategory::ALL.iter().map(|c| c.label()).collect(),
        upload_op_share: share(up_ops),
        upload_byte_share: share(up_bytes),
        download_op_share: share(down_ops),
        download_byte_share: share(down_bytes),
    }
}

/// Fig. 2(c): the hourly R/W (download/upload bytes) ratio series, its
/// distribution, autocorrelation, and the 6am–3pm hour-of-day profile.
#[derive(Debug, Clone, Serialize)]
pub struct RwRatioAnalysis {
    /// One ratio per hour (hours with zero uploads are skipped).
    pub hourly: Vec<f64>,
    pub median: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub acf: Acf,
    /// Mean ratio per hour-of-day (24 entries).
    pub by_hour_of_day: Vec<f64>,
}

pub fn rw_ratio(records: &[TraceRecord], horizon: SimTime) -> RwRatioAnalysis {
    let ts = timeseries::traffic_per_hour(records, horizon);
    // Hours with negligible volume produce degenerate ratios (a scaled-down
    // population has near-empty night hours the production system never
    // had); require at least 2% of the mean hourly volume on both sides.
    let mean_up = crate::stats::mean(&ts.upload_bytes).max(1.0);
    let mean_down = crate::stats::mean(&ts.download_bytes).max(1.0);
    let (min_up, min_down) = (0.02 * mean_up, 0.02 * mean_down);
    let mut hourly = Vec::new();
    let mut by_hour: Vec<Vec<f64>> = vec![Vec::new(); 24];
    for (i, (up, down)) in ts.upload_bytes.iter().zip(&ts.download_bytes).enumerate() {
        if *up > min_up && *down > min_down {
            let ratio = down / up;
            hourly.push(ratio);
            by_hour[i % 24].push(ratio);
        }
    }
    let ecdf = Ecdf::new(hourly.clone());
    RwRatioAnalysis {
        median: ecdf.median(),
        mean: ecdf.mean(),
        min: ecdf.min(),
        max: ecdf.max(),
        acf: acf(&hourly, hourly.len().saturating_sub(1).min(700)),
        by_hour_of_day: by_hour
            .into_iter()
            .map(|v| crate::stats::mean(&v))
            .collect(),
        hourly,
    }
}

/// §5.1: updates — uploads to a node that already had different content.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct UpdateAnalysis {
    pub uploads: u64,
    pub update_uploads: u64,
    pub upload_bytes: u64,
    pub update_bytes: u64,
    pub update_op_fraction: f64,
    pub update_traffic_fraction: f64,
}

pub fn update_analysis(records: &[TraceRecord]) -> UpdateAnalysis {
    // node -> (hash, size) of its last upload.
    let mut last: HashMap<u64, (Option<u1_core::ContentHash>, u64)> = HashMap::new();
    let mut out = UpdateAnalysis {
        uploads: 0,
        update_uploads: 0,
        upload_bytes: 0,
        update_bytes: 0,
        update_op_fraction: 0.0,
        update_traffic_fraction: 0.0,
    };
    for rec in records {
        if let Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            node: Some(node),
            hash,
            size,
            ..
        } = &rec.payload
        {
            out.uploads += 1;
            out.upload_bytes += size;
            if let Some((old_hash, old_size)) = last.get(&node.raw()) {
                // The paper's definition: "an upload of an existing file
                // that has distinct hash/size".
                if old_hash != hash || old_size != size {
                    out.update_uploads += 1;
                    out.update_bytes += size;
                }
            }
            last.insert(node.raw(), (*hash, *size));
        }
    }
    if out.uploads > 0 {
        out.update_op_fraction = out.update_uploads as f64 / out.uploads as f64;
    }
    if out.upload_bytes > 0 {
        out.update_traffic_fraction = out.update_bytes as f64 / out.upload_bytes as f64;
    }
    out
}

/// Fig. 4(c): per-category share of files and of storage bytes.
#[derive(Debug, Clone, Serialize)]
pub struct TaxonomyShares {
    pub categories: Vec<&'static str>,
    pub file_share: Vec<f64>,
    pub byte_share: Vec<f64>,
}

pub fn taxonomy_shares(records: &[TraceRecord]) -> TaxonomyShares {
    // Distinct nodes per category; bytes = last-known size per node.
    let mut node_cat: HashMap<u64, (FileCategory, u64)> = HashMap::new();
    for rec in records {
        if let Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            node: Some(node),
            size,
            ext,
            ..
        } = &rec.payload
        {
            node_cat.insert(node.raw(), (FileCategory::of_extension(ext), *size));
        }
    }
    let mut files: HashMap<FileCategory, u64> = HashMap::new();
    let mut bytes: HashMap<FileCategory, u64> = HashMap::new();
    for (cat, size) in node_cat.values() {
        *files.entry(*cat).or_default() += 1;
        *bytes.entry(*cat).or_default() += size;
    }
    let total_files: u64 = files.values().sum();
    let total_bytes: u64 = bytes.values().sum();
    TaxonomyShares {
        categories: FileCategory::ALL.iter().map(|c| c.label()).collect(),
        file_share: FileCategory::ALL
            .iter()
            .map(|c| files.get(c).copied().unwrap_or(0) as f64 / total_files.max(1) as f64)
            .collect(),
        byte_share: FileCategory::ALL
            .iter()
            .map(|c| bytes.get(c).copied().unwrap_or(0) as f64 / total_bytes.max(1) as f64)
            .collect(),
    }
}

/// Fig. 4(b): size ECDF for all uploaded files plus chosen extensions.
#[derive(Debug, Clone, Serialize)]
pub struct SizeByExtension {
    pub all: Ecdf,
    pub by_ext: Vec<(String, Ecdf)>,
    pub under_1mb_fraction: f64,
}

pub fn size_by_extension(records: &[TraceRecord], exts: &[&str]) -> SizeByExtension {
    let mut all = Vec::new();
    let mut per: HashMap<String, Vec<f64>> = HashMap::new();
    for rec in records {
        if let Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            size,
            ext,
            ..
        } = &rec.payload
        {
            all.push(*size as f64);
            if exts.contains(&ext.as_str()) {
                per.entry(ext.clone()).or_default().push(*size as f64);
            }
        }
    }
    let all = Ecdf::new(all);
    let under_1mb_fraction = all.cdf(1_000_000.0);
    SizeByExtension {
        under_1mb_fraction,
        by_ext: exts
            .iter()
            .filter_map(|e| per.remove(*e).map(|v| (e.to_string(), Ecdf::new(v))))
            .collect(),
        all,
    }
}

/// Diurnal swing of upload traffic (Fig. 2(a)'s "up to 10x higher").
pub fn upload_diurnal_swing(records: &[TraceRecord], horizon: SimTime) -> f64 {
    let ts = timeseries::traffic_per_hour(records, horizon);
    let mut by_hour = vec![Vec::new(); 24];
    for (i, up) in ts.upload_bytes.iter().enumerate() {
        by_hour[i % 24].push(*up);
    }
    let means: Vec<f64> = by_hour.iter().map(|v| crate::stats::mean(v)).collect();
    let peak = means.iter().cloned().fold(0.0f64, f64::max);
    let trough = means.iter().cloned().fold(f64::MAX, f64::min).max(1.0);
    peak / trough
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn size_shares_split_ops_and_bytes() {
        let recs = vec![
            // 3 tiny uploads, 1 huge upload.
            transfer(at(1), Upload, 1, 1, 1, 1_000, 1, "txt"),
            transfer(at(2), Upload, 1, 1, 2, 2_000, 2, "txt"),
            transfer(at(3), Upload, 1, 1, 3, 3_000, 3, "txt"),
            transfer(at(4), Upload, 1, 1, 4, 100_000_000, 4, "iso"),
        ];
        let s = size_category_shares(&recs);
        assert!((s.upload_op_share[0] - 0.75).abs() < 1e-9, "{s:?}");
        assert!(s.upload_byte_share[4] > 0.99, "{s:?}");
        assert_eq!(s.download_op_share.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn rw_ratio_computes_hourly_and_profile() {
        // Hour 0: 100 up, 200 down → ratio 2. Hour 1: 100/50 → 0.5.
        let recs = vec![
            transfer(at(10), Upload, 1, 1, 1, 100, 1, "a"),
            transfer(at(20), Download, 1, 1, 1, 200, 1, "a"),
            transfer(at(3700), Upload, 1, 1, 2, 100, 2, "a"),
            transfer(at(3800), Download, 1, 1, 2, 50, 2, "a"),
        ];
        let rw = rw_ratio(&recs, SimTime::from_hours(2));
        assert_eq!(rw.hourly, vec![2.0, 0.5]);
        assert!((rw.mean - 1.25).abs() < 1e-9);
        assert_eq!(rw.by_hour_of_day[0], 2.0);
        assert_eq!(rw.by_hour_of_day[1], 0.5);
    }

    #[test]
    fn updates_require_changed_hash_or_size() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 7, 100, 1, "txt"), // first upload
            transfer(at(2), Upload, 1, 1, 7, 100, 1, "txt"), // same content: not an update
            transfer(at(3), Upload, 1, 1, 7, 120, 2, "txt"), // update
            transfer(at(4), Upload, 1, 1, 8, 50, 3, "txt"),  // other node, first
        ];
        let u = update_analysis(&recs);
        assert_eq!(u.uploads, 4);
        assert_eq!(u.update_uploads, 1);
        assert_eq!(u.update_bytes, 120);
        assert!((u.update_op_fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    fn taxonomy_counts_distinct_nodes_with_final_size() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 1, 10, 1, "c"),
            transfer(at(2), Upload, 1, 1, 1, 30, 2, "c"), // updated same node
            transfer(at(3), Upload, 1, 1, 2, 4_000, 3, "mp3"),
        ];
        let t = taxonomy_shares(&recs);
        let code_idx = t.categories.iter().position(|c| *c == "code").unwrap();
        let av_idx = t
            .categories
            .iter()
            .position(|c| *c == "audio_video")
            .unwrap();
        assert!((t.file_share[code_idx] - 0.5).abs() < 1e-9);
        assert!((t.byte_share[av_idx] - 4000.0 / 4030.0).abs() < 1e-9);
    }

    #[test]
    fn size_by_extension_builds_requested_curves() {
        let recs = vec![
            transfer(at(1), Upload, 1, 1, 1, 100, 1, "jpg"),
            transfer(at(2), Upload, 1, 1, 2, 5_000_000, 2, "mp3"),
            transfer(at(3), Upload, 1, 1, 3, 200, 3, "txt"),
        ];
        let s = size_by_extension(&recs, &["jpg", "mp3"]);
        assert_eq!(s.all.len(), 3);
        assert_eq!(s.by_ext.len(), 2);
        assert!((s.under_1mb_fraction - 2.0 / 3.0).abs() < 1e-9);
    }
}
