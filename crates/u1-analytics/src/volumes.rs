//! Volume analyses (§6.3, Figs. 10–11), computed from an end-of-trace
//! metadata-store snapshot.

use crate::stats::{pearson, Ecdf};
use serde::Serialize;
use std::collections::HashMap;
use u1_core::VolumeKind;
use u1_metastore::store::VolumeSnapshot;

/// Fig. 10: files vs directories per volume.
#[derive(Debug, Serialize)]
pub struct VolumeContents {
    pub volumes: u64,
    pub files_per_volume: Ecdf,
    pub dirs_per_volume: Ecdf,
    /// Pearson correlation between file and dir counts (paper: 0.998).
    pub files_dirs_pearson: f64,
    /// Fraction of volumes with at least one file / one directory
    /// (paper: ~60% / ~32%).
    pub with_files: f64,
    pub with_dirs: f64,
    /// Fraction of volumes holding more than 1000 files (paper: ~5%).
    pub over_1000_files: f64,
}

pub fn volume_contents(snapshot: &[VolumeSnapshot]) -> VolumeContents {
    let n = snapshot.len().max(1) as f64;
    let files: Vec<f64> = snapshot.iter().map(|v| v.files as f64).collect();
    let dirs: Vec<f64> = snapshot.iter().map(|v| v.dirs as f64).collect();
    VolumeContents {
        volumes: snapshot.len() as u64,
        files_dirs_pearson: pearson(&files, &dirs),
        with_files: snapshot.iter().filter(|v| v.files > 0).count() as f64 / n,
        with_dirs: snapshot.iter().filter(|v| v.dirs > 0).count() as f64 / n,
        over_1000_files: snapshot.iter().filter(|v| v.files > 1000).count() as f64 / n,
        files_per_volume: Ecdf::new(files),
        dirs_per_volume: Ecdf::new(dirs),
    }
}

/// Fig. 11: user-defined and shared volumes across users.
#[derive(Debug, Serialize)]
pub struct VolumeTypes {
    pub users: u64,
    /// UDF count per user (all users, including zero).
    pub udfs_per_user: Ecdf,
    /// Shared-volume count per user (as recipient).
    pub shares_per_user: Ecdf,
    /// Fraction of users with >= 1 UDF (paper: 58%).
    pub users_with_udf: f64,
    /// Fraction of users with >= 1 share (paper: 1.8%).
    pub users_with_share: f64,
}

pub fn volume_types(snapshot: &[VolumeSnapshot]) -> VolumeTypes {
    let mut udfs: HashMap<u64, u64> = HashMap::new();
    let mut shares: HashMap<u64, u64> = HashMap::new();
    let mut users: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for v in snapshot {
        users.insert(v.owner.raw());
        if v.kind == VolumeKind::UserDefined {
            *udfs.entry(v.owner.raw()).or_default() += 1;
        }
        // Every grant makes the volume a shared volume for one recipient.
        if v.shared_to > 0 {
            // Count on the recipient side is not in the snapshot rows;
            // attribute grants to the owner's counterpart via share count.
            *shares.entry(v.owner.raw()).or_default() += v.shared_to;
        }
    }
    let n = users.len().max(1) as f64;
    let udf_counts: Vec<f64> = users
        .iter()
        .map(|u| udfs.get(u).copied().unwrap_or(0) as f64)
        .collect();
    let share_counts: Vec<f64> = users
        .iter()
        .map(|u| shares.get(u).copied().unwrap_or(0) as f64)
        .collect();
    VolumeTypes {
        users: users.len() as u64,
        users_with_udf: udf_counts.iter().filter(|&&c| c > 0.0).count() as f64 / n,
        users_with_share: share_counts.iter().filter(|&&c| c > 0.0).count() as f64 / n,
        udfs_per_user: Ecdf::new(udf_counts),
        shares_per_user: Ecdf::new(share_counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use u1_core::{UserId, VolumeId};

    fn snap(volume: u64, owner: u64, kind: VolumeKind, files: u64, dirs: u64) -> VolumeSnapshot {
        VolumeSnapshot {
            volume: VolumeId::new(volume),
            owner: UserId::new(owner),
            kind,
            files,
            dirs,
            shared_to: 0,
        }
    }

    #[test]
    fn contents_stats() {
        let snapshot = vec![
            snap(1, 1, VolumeKind::Root, 10, 2),
            snap(2, 2, VolumeKind::Root, 0, 0),
            snap(3, 3, VolumeKind::Root, 2000, 100),
            snap(4, 4, VolumeKind::Root, 5, 1),
        ];
        let c = volume_contents(&snapshot);
        assert_eq!(c.volumes, 4);
        assert!((c.with_files - 0.75).abs() < 1e-9);
        assert!((c.over_1000_files - 0.25).abs() < 1e-9);
        assert!(c.files_dirs_pearson > 0.99, "{}", c.files_dirs_pearson);
    }

    #[test]
    fn types_count_udfs_and_shares_per_user() {
        let mut s1 = snap(1, 1, VolumeKind::Root, 1, 0);
        s1.shared_to = 0;
        let mut s2 = snap(2, 1, VolumeKind::UserDefined, 1, 0);
        s2.shared_to = 1;
        let s3 = snap(3, 2, VolumeKind::Root, 0, 0);
        let t = volume_types(&[s1, s2, s3]);
        assert_eq!(t.users, 2);
        assert!((t.users_with_udf - 0.5).abs() < 1e-9);
        assert!((t.users_with_share - 0.5).abs() < 1e-9);
        assert_eq!(t.udfs_per_user.max(), 1.0);
    }
}
