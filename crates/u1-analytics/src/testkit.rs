//! Compact builders for trace records, used by this crate's unit tests and
//! by downstream integration tests. Not part of the stable API surface.

use u1_core::{
    ApiOpKind, ContentHash, MachineId, NodeId, NodeKind, ProcessId, RpcKind, SessionId, ShardId,
    SimTime, UserId, VolumeId,
};
use u1_trace::{Payload, SessionEvent, TraceRecord};

/// Where a synthetic record is "logged".
pub fn at(t_secs: u64) -> SimTime {
    SimTime::from_secs(t_secs)
}

pub fn session_open(t: SimTime, session: u64, user: u64) -> TraceRecord {
    TraceRecord::new(
        t,
        MachineId::new(0),
        ProcessId::new(0),
        Payload::Session {
            event: SessionEvent::Open,
            session: SessionId::new(session),
            user: UserId::new(user),
        },
    )
}

pub fn session_close(t: SimTime, session: u64, user: u64) -> TraceRecord {
    TraceRecord::new(
        t,
        MachineId::new(0),
        ProcessId::new(0),
        Payload::Session {
            event: SessionEvent::Close,
            session: SessionId::new(session),
            user: UserId::new(user),
        },
    )
}

pub fn auth(t: SimTime, user: u64, success: bool) -> TraceRecord {
    TraceRecord::new(
        t,
        MachineId::new(0),
        ProcessId::new(0),
        Payload::Auth {
            user: UserId::new(user),
            success,
        },
    )
}

/// A generic successful storage op with no node/content attached.
pub fn op(t: SimTime, op: ApiOpKind, session: u64, user: u64) -> TraceRecord {
    TraceRecord::new(
        t,
        MachineId::new(0),
        ProcessId::new(0),
        Payload::Storage {
            op,
            session: SessionId::new(session),
            user: UserId::new(user),
            volume: VolumeId::new(1),
            node: None,
            kind: None,
            size: 0,
            hash: None,
            ext: u1_core::Ext::EMPTY,
            success: true,
            duration_us: 100,
        },
    )
}

/// A transfer (upload/download) on a concrete node.
#[allow(clippy::too_many_arguments)]
pub fn transfer(
    t: SimTime,
    kind: ApiOpKind,
    session: u64,
    user: u64,
    node: u64,
    size: u64,
    content: u64,
    ext: &str,
) -> TraceRecord {
    TraceRecord::new(
        t,
        MachineId::new(0),
        ProcessId::new(0),
        Payload::Storage {
            op: kind,
            session: SessionId::new(session),
            user: UserId::new(user),
            volume: VolumeId::new(1),
            node: Some(NodeId::new(node)),
            kind: Some(NodeKind::File),
            size,
            hash: Some(ContentHash::from_content_id(content)),
            ext: u1_core::Ext::new(ext),
            success: true,
            duration_us: 1000,
        },
    )
}

/// A make/unlink/move on a node.
pub fn node_op(
    t: SimTime,
    op: ApiOpKind,
    session: u64,
    user: u64,
    node: u64,
    kind: NodeKind,
) -> TraceRecord {
    TraceRecord::new(
        t,
        MachineId::new(0),
        ProcessId::new(0),
        Payload::Storage {
            op,
            session: SessionId::new(session),
            user: UserId::new(user),
            volume: VolumeId::new(1),
            node: Some(NodeId::new(node)),
            kind: Some(kind),
            size: 0,
            hash: None,
            ext: u1_core::Ext::EMPTY,
            success: true,
            duration_us: 100,
        },
    )
}

/// An RPC record on a given machine/shard with a service time in micros.
pub fn rpc_on(
    t: SimTime,
    machine: u16,
    process: u16,
    rpc: RpcKind,
    user: u64,
    shard: u16,
    service_us: u64,
) -> TraceRecord {
    TraceRecord::new(
        t,
        MachineId::new(machine),
        ProcessId::new(process),
        Payload::Rpc {
            rpc,
            shard: ShardId::new(shard),
            user: UserId::new(user),
            service_us,
        },
    )
}

/// Re-stamps a record's machine (for load-balance tests).
pub fn on_machine(mut rec: TraceRecord, machine: u16) -> TraceRecord {
    rec.machine = MachineId::new(machine);
    rec
}
