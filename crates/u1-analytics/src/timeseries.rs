//! Time-binned request and traffic series (Figs. 2(a), 5, 6, 15).

use crate::engine::TraceFold;
use serde::Serialize;
use u1_core::{ApiOpKind, FxHashMap, FxHashSet, SimDuration, SimTime};
use u1_trace::{Payload, SessionEvent, TraceRecord};

/// Sums `weight(record)` into fixed-width bins covering `[0, horizon)`.
pub fn bin_sum(
    records: &[TraceRecord],
    horizon: SimTime,
    bin: SimDuration,
    mut weight: impl FnMut(&TraceRecord) -> Option<f64>,
) -> Vec<f64> {
    assert!(bin.as_micros() > 0);
    let bins = horizon.as_micros().div_ceil(bin.as_micros()) as usize;
    let mut out = vec![0.0; bins.max(1)];
    for rec in records {
        if rec.t >= horizon {
            continue;
        }
        if let Some(w) = weight(rec) {
            out[rec.t.bin_index(bin) as usize] += w;
        }
    }
    out
}

/// Fig. 2(a): upload/download GBytes per hour.
#[derive(Debug, Clone, Serialize)]
pub struct TrafficSeries {
    pub upload_bytes: Vec<f64>,
    pub download_bytes: Vec<f64>,
}

/// Streaming state behind [`traffic_per_hour`]. Bins accumulate as `u64`
/// (sizes are integers), so chunk merges add exactly; per-hour sums stay far
/// below 2^53, so the f64 conversion at [`TraceFold::finish`] is exact and
/// bit-identical to the legacy f64 accumulation.
pub struct TrafficFold {
    horizon: SimTime,
    upload: Vec<u64>,
    download: Vec<u64>,
}

pub(crate) fn hour_bins(horizon: SimTime) -> usize {
    let bins = horizon
        .as_micros()
        .div_ceil(SimDuration::from_hours(1).as_micros()) as usize;
    bins.max(1)
}

impl TrafficFold {
    pub fn new(horizon: SimTime) -> Self {
        let bins = hour_bins(horizon);
        Self {
            horizon,
            upload: vec![0; bins],
            download: vec![0; bins],
        }
    }
}

impl TraceFold for TrafficFold {
    type Output = TrafficSeries;

    fn new_partial(&self) -> Self {
        TrafficFold::new(self.horizon)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if rec.t >= self.horizon {
            return;
        }
        if let Payload::Storage {
            op,
            success: true,
            size,
            ..
        } = &rec.payload
        {
            let i = rec.t.bin_index(SimDuration::from_hours(1)) as usize;
            match op {
                ApiOpKind::Upload => self.upload[i] += size,
                ApiOpKind::Download => self.download[i] += size,
                _ => {}
            }
        }
    }

    fn merge(&mut self, later: Self) {
        for (dst, src) in self.upload.iter_mut().zip(later.upload) {
            *dst += src;
        }
        for (dst, src) in self.download.iter_mut().zip(later.download) {
            *dst += src;
        }
    }

    fn finish(self) -> TrafficSeries {
        TrafficSeries {
            upload_bytes: self.upload.into_iter().map(|b| b as f64).collect(),
            download_bytes: self.download.into_iter().map(|b| b as f64).collect(),
        }
    }
}

pub fn traffic_per_hour(records: &[TraceRecord], horizon: SimTime) -> TrafficSeries {
    crate::engine::run_fold(TrafficFold::new(horizon), records)
}

/// Fig. 5 / Fig. 15 request families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RequestFamily {
    Session,
    Auth,
    Storage,
    Rpc,
}

/// Streaming state behind [`requests_per_hour`].
pub struct RequestsFold {
    horizon: SimTime,
    family: RequestFamily,
    bins: Vec<u64>,
}

impl RequestsFold {
    pub fn new(horizon: SimTime, family: RequestFamily) -> Self {
        Self {
            horizon,
            family,
            bins: vec![0; hour_bins(horizon)],
        }
    }
}

impl TraceFold for RequestsFold {
    type Output = Vec<f64>;

    fn new_partial(&self) -> Self {
        RequestsFold::new(self.horizon, self.family)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        if rec.t >= self.horizon {
            return;
        }
        let matched = matches!(
            (&rec.payload, self.family),
            (Payload::Session { .. }, RequestFamily::Session)
                | (Payload::Auth { .. }, RequestFamily::Auth)
                | (Payload::Storage { .. }, RequestFamily::Storage)
                | (Payload::Rpc { .. }, RequestFamily::Rpc)
        );
        if matched {
            self.bins[rec.t.bin_index(SimDuration::from_hours(1)) as usize] += 1;
        }
    }

    fn merge(&mut self, later: Self) {
        for (dst, src) in self.bins.iter_mut().zip(later.bins) {
            *dst += src;
        }
    }

    fn finish(self) -> Vec<f64> {
        self.bins.into_iter().map(|c| c as f64).collect()
    }
}

/// Requests per hour for one family.
pub fn requests_per_hour(
    records: &[TraceRecord],
    horizon: SimTime,
    family: RequestFamily,
) -> Vec<f64> {
    crate::engine::run_fold(RequestsFold::new(horizon, family), records)
}

/// Fig. 6: online vs active users per hour. A user is *online* in an hour
/// if one of their sessions overlaps it; *active* if they issued a
/// data-management operation in it (§6.1's definitions).
#[derive(Debug, Clone, Serialize)]
pub struct OnlineActiveSeries {
    pub online: Vec<u64>,
    pub active: Vec<u64>,
}

/// Streaming state behind [`online_active_per_hour`].
///
/// Sessions may span chunk boundaries, so a partial keeps three pieces of
/// boundary state besides its hour-bin user sets:
/// * `open_at` — sessions opened here and not yet closed,
/// * `opened` — every session that was EVER opened in this partial. A later
///   `Open` for the same id overwrites (loses) an earlier unclosed open in
///   the serial pass, and a `Close` that arrives after a local open existed
///   must take the serial code's fallback arm rather than bind an even
///   earlier chunk's open — both checks need the full open history.
/// * `pending_closes` — closes that saw no local open at all; they bind to
///   an earlier chunk's `open_at` at merge time, in order.
pub struct OnlineActiveFold {
    horizon: SimTime,
    bins: usize,
    online: Vec<FxHashSet<u64>>,
    active: Vec<FxHashSet<u64>>,
    open_at: FxHashMap<u64, (u64, SimTime)>, // session -> (user, open time)
    opened: FxHashSet<u64>,
    pending_closes: Vec<(u64, u64, SimTime)>, // (session, close user, close time)
}

impl OnlineActiveFold {
    pub fn new(horizon: SimTime) -> Self {
        let bins = horizon
            .as_micros()
            .div_ceil(SimDuration::from_hours(1).as_micros()) as usize;
        Self {
            horizon,
            bins,
            online: vec![FxHashSet::default(); bins.max(1)],
            active: vec![FxHashSet::default(); bins.max(1)],
            open_at: FxHashMap::default(),
            opened: FxHashSet::default(),
            pending_closes: Vec::new(),
        }
    }

    fn mark_online(&mut self, user: u64, from: SimTime, to: SimTime) {
        let hour = SimDuration::from_hours(1);
        let first = from.bin_index(hour) as usize;
        let last = (to.bin_index(hour) as usize).min(self.bins.saturating_sub(1));
        for slot in self.online.iter_mut().take(last + 1).skip(first) {
            slot.insert(user);
        }
    }
}

impl TraceFold for OnlineActiveFold {
    type Output = OnlineActiveSeries;

    fn new_partial(&self) -> Self {
        OnlineActiveFold::new(self.horizon)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        match &rec.payload {
            Payload::Session {
                event: SessionEvent::Open,
                session,
                user,
            } => {
                self.open_at.insert(session.raw(), (user.raw(), rec.t));
                self.opened.insert(session.raw());
            }
            Payload::Session {
                event: SessionEvent::Close,
                session,
                user,
            } => {
                if let Some((u, from)) = self.open_at.remove(&session.raw()) {
                    self.mark_online(u, from, rec.t.min(self.horizon));
                } else if self.opened.contains(&session.raw()) {
                    // The open this close pairs with was already consumed
                    // locally: the serial pass falls back to a point mark.
                    self.mark_online(user.raw(), rec.t, rec.t.min(self.horizon));
                } else {
                    self.pending_closes.push((session.raw(), user.raw(), rec.t));
                }
            }
            Payload::Storage {
                op,
                user,
                success: true,
                ..
            } if op.is_data_management() && rec.t < self.horizon => {
                self.active[rec.t.bin_index(SimDuration::from_hours(1)) as usize]
                    .insert(user.raw());
            }
            _ => {}
        }
    }

    fn merge(&mut self, later: Self) {
        let horizon = self.horizon;
        // Closes that found no open in the later chunk bind here, in order.
        for (session, user, t) in later.pending_closes {
            if let Some((u, from)) = self.open_at.remove(&session) {
                self.mark_online(u, from, t.min(horizon));
            } else if self.opened.contains(&session) {
                self.mark_online(user, t, t.min(horizon));
            } else {
                self.pending_closes.push((session, user, t));
            }
        }
        // Any session re-opened later overwrites (loses) an unclosed earlier
        // open, exactly as the serial `open_at.insert` would.
        for session in &later.opened {
            self.open_at.remove(session);
        }
        self.opened.extend(later.opened);
        self.open_at.extend(later.open_at);
        for (dst, src) in self.online.iter_mut().zip(later.online) {
            dst.extend(src);
        }
        for (dst, src) in self.active.iter_mut().zip(later.active) {
            dst.extend(src);
        }
    }

    fn finish(mut self) -> OnlineActiveSeries {
        let horizon = self.horizon;
        // Closes that never found an open anywhere: serial fallback arm.
        for (_, user, t) in std::mem::take(&mut self.pending_closes) {
            self.mark_online(user, t, t.min(horizon));
        }
        // Sessions still open at the end of the trace were online until then.
        let end = SimTime::from_micros(horizon.as_micros().saturating_sub(1));
        for (_, (u, from)) in std::mem::take(&mut self.open_at) {
            self.mark_online(u, from, end);
        }
        OnlineActiveSeries {
            online: self.online.into_iter().map(|s| s.len() as u64).collect(),
            active: self.active.into_iter().map(|s| s.len() as u64).collect(),
        }
    }
}

pub fn online_active_per_hour(records: &[TraceRecord], horizon: SimTime) -> OnlineActiveSeries {
    crate::engine::run_fold(OnlineActiveFold::new(horizon), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn traffic_bins_by_hour() {
        let recs = vec![
            transfer(at(100), Upload, 1, 1, 1, 1000, 1, "txt"),
            transfer(at(200), Download, 1, 1, 1, 500, 1, "txt"),
            transfer(at(3700), Upload, 1, 1, 2, 2000, 2, "txt"),
        ];
        let ts = traffic_per_hour(&recs, SimTime::from_hours(2));
        assert_eq!(ts.upload_bytes, vec![1000.0, 2000.0]);
        assert_eq!(ts.download_bytes, vec![500.0, 0.0]);
    }

    #[test]
    fn failed_transfers_do_not_count() {
        let mut rec = transfer(at(1), Upload, 1, 1, 1, 1000, 1, "txt");
        if let u1_trace::Payload::Storage { success, .. } = &mut rec.payload {
            *success = false;
        }
        let ts = traffic_per_hour(&[rec], SimTime::from_hours(1));
        assert_eq!(ts.upload_bytes, vec![0.0]);
    }

    #[test]
    fn request_families_are_disjoint() {
        let recs = vec![
            session_open(at(10), 1, 1),
            auth(at(11), 1, true),
            op(at(12), ListVolumes, 1, 1),
            rpc_on(at(13), 0, 0, u1_core::RpcKind::GetNode, 1, 0, 100),
        ];
        let horizon = SimTime::from_hours(1);
        for (family, expected) in [
            (RequestFamily::Session, 1.0),
            (RequestFamily::Auth, 1.0),
            (RequestFamily::Storage, 1.0),
            (RequestFamily::Rpc, 1.0),
        ] {
            assert_eq!(requests_per_hour(&recs, horizon, family), vec![expected]);
        }
    }

    #[test]
    fn online_spans_session_interval_active_needs_data_ops() {
        let recs = vec![
            session_open(at(10), 1, 7),
            // ListVolumes is not data management: user online, not active.
            op(at(20), ListVolumes, 1, 7),
            // Upload in hour 1 makes the user active there.
            transfer(at(3800), Upload, 1, 7, 1, 10, 1, "txt"),
            session_close(at(2 * 3600 + 30), 1, 7),
        ];
        let series = online_active_per_hour(&recs, SimTime::from_hours(3));
        assert_eq!(series.online, vec![1, 1, 1]);
        assert_eq!(series.active, vec![0, 1, 0]);
    }

    #[test]
    fn unclosed_sessions_count_online_to_the_end() {
        let recs = vec![session_open(at(10), 1, 7)];
        let series = online_active_per_hour(&recs, SimTime::from_hours(2));
        assert_eq!(series.online, vec![1, 1]);
    }

    #[test]
    fn chunked_online_active_handles_boundary_sessions() {
        // Session spans the chunk boundary; a re-open overwrites; a stray
        // close takes the fallback arm. Every split must equal serial.
        let recs = vec![
            session_open(at(10), 1, 7),
            session_open(at(20), 2, 8),
            session_close(at(3700), 1, 7),
            session_open(at(3800), 2, 8), // overwrites session 2's open
            session_close(at(7300), 2, 8),
            session_close(at(7400), 3, 9), // never opened: fallback
        ];
        let horizon = SimTime::from_hours(4);
        let serial = online_active_per_hour(&recs, horizon);
        for split in 0..=recs.len() {
            let (a, b) = recs.split_at(split);
            let chunks = [a, b];
            let got = crate::engine::run_chunks(OnlineActiveFold::new(horizon), &chunks);
            assert_eq!(got.online, serial.online, "split={split}");
            assert_eq!(got.active, serial.active, "split={split}");
        }
    }
}
