//! Time-binned request and traffic series (Figs. 2(a), 5, 6, 15).

use serde::Serialize;
use u1_core::{ApiOpKind, SimDuration, SimTime};
use u1_trace::{Payload, SessionEvent, TraceRecord};

/// Sums `weight(record)` into fixed-width bins covering `[0, horizon)`.
pub fn bin_sum(
    records: &[TraceRecord],
    horizon: SimTime,
    bin: SimDuration,
    mut weight: impl FnMut(&TraceRecord) -> Option<f64>,
) -> Vec<f64> {
    assert!(bin.as_micros() > 0);
    let bins = horizon.as_micros().div_ceil(bin.as_micros()) as usize;
    let mut out = vec![0.0; bins.max(1)];
    for rec in records {
        if rec.t >= horizon {
            continue;
        }
        if let Some(w) = weight(rec) {
            out[rec.t.bin_index(bin) as usize] += w;
        }
    }
    out
}

/// Fig. 2(a): upload/download GBytes per hour.
#[derive(Debug, Clone, Serialize)]
pub struct TrafficSeries {
    pub upload_bytes: Vec<f64>,
    pub download_bytes: Vec<f64>,
}

pub fn traffic_per_hour(records: &[TraceRecord], horizon: SimTime) -> TrafficSeries {
    let hour = SimDuration::from_hours(1);
    let upload_bytes = bin_sum(records, horizon, hour, |r| match &r.payload {
        Payload::Storage {
            op: ApiOpKind::Upload,
            success: true,
            size,
            ..
        } => Some(*size as f64),
        _ => None,
    });
    let download_bytes = bin_sum(records, horizon, hour, |r| match &r.payload {
        Payload::Storage {
            op: ApiOpKind::Download,
            success: true,
            size,
            ..
        } => Some(*size as f64),
        _ => None,
    });
    TrafficSeries {
        upload_bytes,
        download_bytes,
    }
}

/// Fig. 5 / Fig. 15 request families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RequestFamily {
    Session,
    Auth,
    Storage,
    Rpc,
}

/// Requests per hour for one family.
pub fn requests_per_hour(
    records: &[TraceRecord],
    horizon: SimTime,
    family: RequestFamily,
) -> Vec<f64> {
    bin_sum(records, horizon, SimDuration::from_hours(1), |r| {
        let matched = matches!(
            (&r.payload, family),
            (Payload::Session { .. }, RequestFamily::Session)
                | (Payload::Auth { .. }, RequestFamily::Auth)
                | (Payload::Storage { .. }, RequestFamily::Storage)
                | (Payload::Rpc { .. }, RequestFamily::Rpc)
        );
        matched.then_some(1.0)
    })
}

/// Fig. 6: online vs active users per hour. A user is *online* in an hour
/// if one of their sessions overlaps it; *active* if they issued a
/// data-management operation in it (§6.1's definitions).
#[derive(Debug, Clone, Serialize)]
pub struct OnlineActiveSeries {
    pub online: Vec<u64>,
    pub active: Vec<u64>,
}

pub fn online_active_per_hour(records: &[TraceRecord], horizon: SimTime) -> OnlineActiveSeries {
    use std::collections::{HashMap, HashSet};
    let bins = horizon
        .as_micros()
        .div_ceil(SimDuration::from_hours(1).as_micros()) as usize;
    let mut online: Vec<HashSet<u64>> = vec![HashSet::new(); bins.max(1)];
    let mut active: Vec<HashSet<u64>> = vec![HashSet::new(); bins.max(1)];
    // Session intervals.
    let mut open_at: HashMap<u64, (u64, SimTime)> = HashMap::new(); // session -> (user, open time)
    let hour = SimDuration::from_hours(1);
    let mut mark_online = |user: u64, from: SimTime, to: SimTime| {
        let first = from.bin_index(hour) as usize;
        let last = (to.bin_index(hour) as usize).min(bins.saturating_sub(1));
        for slot in online.iter_mut().take(last + 1).skip(first) {
            slot.insert(user);
        }
    };
    for rec in records {
        match &rec.payload {
            Payload::Session {
                event: SessionEvent::Open,
                session,
                user,
            } => {
                open_at.insert(session.raw(), (user.raw(), rec.t));
            }
            Payload::Session {
                event: SessionEvent::Close,
                session,
                user,
            } => {
                let (u, from) = open_at
                    .remove(&session.raw())
                    .unwrap_or((user.raw(), rec.t));
                mark_online(u, from, rec.t.min(horizon));
            }
            Payload::Storage {
                op,
                user,
                success: true,
                ..
            } if op.is_data_management() && rec.t < horizon => {
                active[rec.t.bin_index(hour) as usize].insert(user.raw());
            }
            _ => {}
        }
    }
    // Sessions still open at the end of the trace were online until then.
    let end = SimTime::from_micros(horizon.as_micros().saturating_sub(1));
    for (_, (u, from)) in open_at {
        mark_online(u, from, end);
    }
    OnlineActiveSeries {
        online: online.into_iter().map(|s| s.len() as u64).collect(),
        active: active.into_iter().map(|s| s.len() as u64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn traffic_bins_by_hour() {
        let recs = vec![
            transfer(at(100), Upload, 1, 1, 1, 1000, 1, "txt"),
            transfer(at(200), Download, 1, 1, 1, 500, 1, "txt"),
            transfer(at(3700), Upload, 1, 1, 2, 2000, 2, "txt"),
        ];
        let ts = traffic_per_hour(&recs, SimTime::from_hours(2));
        assert_eq!(ts.upload_bytes, vec![1000.0, 2000.0]);
        assert_eq!(ts.download_bytes, vec![500.0, 0.0]);
    }

    #[test]
    fn failed_transfers_do_not_count() {
        let mut rec = transfer(at(1), Upload, 1, 1, 1, 1000, 1, "txt");
        if let u1_trace::Payload::Storage { success, .. } = &mut rec.payload {
            *success = false;
        }
        let ts = traffic_per_hour(&[rec], SimTime::from_hours(1));
        assert_eq!(ts.upload_bytes, vec![0.0]);
    }

    #[test]
    fn request_families_are_disjoint() {
        let recs = vec![
            session_open(at(10), 1, 1),
            auth(at(11), 1, true),
            op(at(12), ListVolumes, 1, 1),
            rpc_on(at(13), 0, 0, u1_core::RpcKind::GetNode, 1, 0, 100),
        ];
        let horizon = SimTime::from_hours(1);
        for (family, expected) in [
            (RequestFamily::Session, 1.0),
            (RequestFamily::Auth, 1.0),
            (RequestFamily::Storage, 1.0),
            (RequestFamily::Rpc, 1.0),
        ] {
            assert_eq!(requests_per_hour(&recs, horizon, family), vec![expected]);
        }
    }

    #[test]
    fn online_spans_session_interval_active_needs_data_ops() {
        let recs = vec![
            session_open(at(10), 1, 7),
            // ListVolumes is not data management: user online, not active.
            op(at(20), ListVolumes, 1, 7),
            // Upload in hour 1 makes the user active there.
            transfer(at(3800), Upload, 1, 7, 1, 10, 1, "txt"),
            session_close(at(2 * 3600 + 30), 1, 7),
        ];
        let series = online_active_per_hour(&recs, SimTime::from_hours(3));
        assert_eq!(series.online, vec![1, 1, 1]);
        assert_eq!(series.active, vec![0, 1, 0]);
    }

    #[test]
    fn unclosed_sessions_count_online_to_the_end() {
        let recs = vec![session_open(at(10), 1, 7)];
        let series = online_active_per_hour(&recs, SimTime::from_hours(2));
        assert_eq!(series.online, vec![1, 1]);
    }
}
