//! Fault-plane analytics: error rates, error-class mix, and the latency
//! cost of retries.
//!
//! Input traces produced under a live [`u1_core::fault::FaultPlan`] carry
//! two extra tags on every record: the attempt number within the issuing
//! retry scope (1 = first try) and an optional [`ErrorClass`]. This fold
//! turns those into the numbers EXPERIMENTS.md reports for the `exp_faults`
//! scenario: how often operations failed, why, and how much slower the
//! retried survivors were than first-try successes.
//!
//! All accumulators are integers, so chunk merges are exact and the
//! chunk-parallel run is bit-identical to the serial pass (the engine's
//! standing determinism law — see [`crate::engine`]).

use crate::engine::TraceFold;
use serde::Serialize;
use u1_core::fault::ErrorClass;
use u1_trace::{Payload, TraceRecord};

/// How many records carried one error class.
#[derive(Debug, Serialize)]
pub struct ClassCount {
    pub class: &'static str,
    pub count: u64,
}

/// Output of [`fault_analysis`] / the battery's `faults` section.
///
/// Under `FaultPlan::none()` every count is zero and every rate/mean is
/// `0.0` — the struct itself is the "nothing happened" witness.
#[derive(Debug, Serialize)]
pub struct FaultAnalysis {
    /// Total records seen.
    pub records: u64,
    /// Records tagged with any error class.
    pub tagged: u64,
    /// Per-class tag counts, in [`ErrorClass::ALL`] order (all five classes
    /// always present, zero or not).
    pub by_class: Vec<ClassCount>,
    /// Records whose attempt tag exceeds 1 (i.e. produced by a retry).
    pub retried: u64,
    /// Largest attempt number observed anywhere in the trace.
    pub max_attempt: u32,
    /// All `storage_done` records, and the failed subset.
    pub storage_ops: u64,
    pub storage_failures: u64,
    /// `storage_failures / storage_ops` (0 when there were no ops).
    pub storage_error_rate: f64,
    /// Mean duration of *successful* storage ops that succeeded on the
    /// first attempt vs. ones that needed retries. The ratio is the
    /// retry-latency inflation: how much slower a client saw an operation
    /// get once the fault plane made it retry.
    pub first_try_mean_s: f64,
    pub retried_mean_s: f64,
    /// `retried_mean_s / first_try_mean_s` (0 when either side is empty).
    pub retry_latency_inflation: f64,
}

fn class_index(c: ErrorClass) -> usize {
    match c {
        ErrorClass::Timeout => 0,
        ErrorClass::ShardUnavailable => 1,
        ErrorClass::PartPut => 2,
        ErrorClass::AuthOutage => 3,
        ErrorClass::Other => 4,
    }
}

/// Streaming state behind [`fault_analysis`]. Integer sums only, so
/// `merge` is plain addition (plus a `max` for the attempt high-water
/// mark, which is associative and commutative).
#[derive(Default)]
pub struct FaultFold {
    records: u64,
    class_counts: [u64; ErrorClass::ALL.len()],
    retried: u64,
    max_attempt: u32,
    storage_ops: u64,
    storage_failures: u64,
    first_try_ops: u64,
    first_try_dur_us: u64,
    retried_ops: u64,
    retried_dur_us: u64,
}

impl FaultFold {
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceFold for FaultFold {
    type Output = FaultAnalysis;

    fn new_partial(&self) -> Self {
        FaultFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        self.records += 1;
        if let Some(class) = rec.error_class {
            self.class_counts[class_index(class)] += 1;
        }
        if rec.attempt > 1 {
            self.retried += 1;
        }
        self.max_attempt = self.max_attempt.max(rec.attempt);
        if let Payload::Storage {
            success,
            duration_us,
            ..
        } = &rec.payload
        {
            self.storage_ops += 1;
            if !success {
                self.storage_failures += 1;
            } else if rec.attempt > 1 {
                self.retried_ops += 1;
                self.retried_dur_us += duration_us;
            } else {
                self.first_try_ops += 1;
                self.first_try_dur_us += duration_us;
            }
        }
    }

    fn merge(&mut self, later: Self) {
        self.records += later.records;
        for (d, s) in self.class_counts.iter_mut().zip(later.class_counts) {
            *d += s;
        }
        self.retried += later.retried;
        self.max_attempt = self.max_attempt.max(later.max_attempt);
        self.storage_ops += later.storage_ops;
        self.storage_failures += later.storage_failures;
        self.first_try_ops += later.first_try_ops;
        self.first_try_dur_us += later.first_try_dur_us;
        self.retried_ops += later.retried_ops;
        self.retried_dur_us += later.retried_dur_us;
    }

    fn finish(self) -> FaultAnalysis {
        let mean_s = |sum_us: u64, n: u64| {
            if n == 0 {
                0.0
            } else {
                sum_us as f64 / n as f64 / 1e6
            }
        };
        let first_try_mean_s = mean_s(self.first_try_dur_us, self.first_try_ops);
        let retried_mean_s = mean_s(self.retried_dur_us, self.retried_ops);
        FaultAnalysis {
            records: self.records,
            tagged: self.class_counts.iter().sum(),
            by_class: ErrorClass::ALL
                .into_iter()
                .map(|c| ClassCount {
                    class: c.label(),
                    count: self.class_counts[class_index(c)],
                })
                .collect(),
            retried: self.retried,
            max_attempt: self.max_attempt,
            storage_ops: self.storage_ops,
            storage_failures: self.storage_failures,
            storage_error_rate: if self.storage_ops == 0 {
                0.0
            } else {
                self.storage_failures as f64 / self.storage_ops as f64
            },
            retry_latency_inflation: if first_try_mean_s > 0.0 && retried_mean_s > 0.0 {
                retried_mean_s / first_try_mean_s
            } else {
                0.0
            },
            first_try_mean_s,
            retried_mean_s,
        }
    }
}

/// Error rates and retry-latency inflation from one trace.
pub fn fault_analysis(records: &[TraceRecord]) -> FaultAnalysis {
    crate::engine::run_fold(FaultFold::new(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_chunks;
    use crate::testkit::*;
    use u1_core::ApiOpKind::Upload;

    fn tagged(mut rec: TraceRecord, attempt: u32, class: Option<ErrorClass>) -> TraceRecord {
        rec.attempt = attempt;
        rec.error_class = class;
        rec
    }

    fn with_duration(mut rec: TraceRecord, us: u64) -> TraceRecord {
        if let Payload::Storage {
            ref mut duration_us,
            ..
        } = rec.payload
        {
            *duration_us = us;
        }
        rec
    }

    fn failed_op(
        t: u1_core::SimTime,
        kind: u1_core::ApiOpKind,
        session: u64,
        user: u64,
    ) -> TraceRecord {
        let mut rec = op(t, kind, session, user);
        if let Payload::Storage {
            ref mut success, ..
        } = rec.payload
        {
            *success = false;
        }
        rec
    }

    #[test]
    fn fault_free_trace_reports_all_zeros() {
        let recs = vec![
            session_open(at(1), 1, 1),
            op(at(2), Upload, 1, 1),
            session_close(at(3), 1, 1),
        ];
        let a = fault_analysis(&recs);
        assert_eq!(a.tagged, 0);
        assert_eq!(a.retried, 0);
        assert_eq!(a.max_attempt, 1);
        assert_eq!(a.storage_error_rate, 0.0);
        assert_eq!(a.retry_latency_inflation, 0.0);
        assert!(a.by_class.iter().all(|c| c.count == 0));
    }

    #[test]
    fn counts_classes_and_measures_inflation() {
        let recs = vec![
            // Two clean first-try ops at 100us each.
            with_duration(op(at(1), Upload, 1, 1), 100),
            with_duration(op(at(2), Upload, 1, 1), 100),
            // One op that took 3 attempts and 300us, tagged with a timeout.
            tagged(
                with_duration(op(at(3), Upload, 1, 1), 300),
                3,
                Some(ErrorClass::Timeout),
            ),
            // One failed op (shard outage).
            tagged(
                failed_op(at(4), Upload, 1, 1),
                1,
                Some(ErrorClass::ShardUnavailable),
            ),
        ];
        let a = fault_analysis(&recs);
        assert_eq!(a.tagged, 2);
        assert_eq!(a.retried, 1);
        assert_eq!(a.max_attempt, 3);
        assert_eq!((a.storage_ops, a.storage_failures), (4, 1));
        assert!((a.storage_error_rate - 0.25).abs() < 1e-12);
        assert!((a.retry_latency_inflation - 3.0).abs() < 1e-12);
        let count_of = |label: &str| {
            a.by_class
                .iter()
                .find(|c| c.class == label)
                .map(|c| c.count)
        };
        assert_eq!(count_of("timeout"), Some(1));
        assert_eq!(count_of("shard_unavailable"), Some(1));
        assert_eq!(count_of("part_put"), Some(0));
    }

    #[test]
    fn chunked_merge_is_exact() {
        let recs: Vec<TraceRecord> = (0..30u64)
            .map(|i| {
                let r = with_duration(op(at(i), Upload, 1, 1), 100 + i * 7);
                if i % 5 == 0 {
                    tagged(r, 2, Some(ErrorClass::PartPut))
                } else {
                    r
                }
            })
            .collect();
        let serial = serde_json::to_value(&fault_analysis(&recs));
        for split in [1usize, 2, 7, 30] {
            let chunks: Vec<&[TraceRecord]> = recs.chunks(split).collect();
            let chunked = serde_json::to_value(&run_chunks(FaultFold::new(), &chunks));
            assert_eq!(chunked, serial, "chunk size {split}");
        }
    }
}
