//! The numeric kit shared by every analyzer.

use serde::Serialize;

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Serialize)]
pub struct Ecdf {
    /// Sorted samples.
    sorted: Vec<f64>,
}

impl Ecdf {
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted: samples }
    }

    /// [`Ecdf::new`] for samples the caller has already sorted: takes
    /// ownership without re-sorting (or cloning — several folds sort their
    /// multiset buffer in `finish` and previously cloned it just to build
    /// the Ecdf). Output is identical to `new` on the same samples.
    pub fn from_sorted(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        debug_assert!(samples.windows(2).all(|w| w[0] <= w[1]));
        Self { sorted: samples }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P(X >= x)` (CCDF, used for power-law plots).
    pub fn ccdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// The q-quantile, `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).floor() as usize;
        self.sorted[idx]
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    pub fn mean(&self) -> f64 {
        mean(&self.sorted)
    }

    /// Evaluation points for plotting: `(x, P(X <= x))` at `n` log-spaced
    /// (if positive-ranged) or linear positions.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.min();
        let hi = self.max();
        let mut out = Vec::with_capacity(n);
        if lo > 0.0 && hi / lo > 100.0 {
            for i in 0..n {
                let x = lo * (hi / lo).powf(i as f64 / (n - 1).max(1) as f64);
                out.push((x, self.cdf(x)));
            }
        } else {
            for i in 0..n {
                let x = lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64;
                out.push((x, self.cdf(x)));
            }
        }
        out
    }
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Coefficient of variation (stddev / mean).
pub fn cv(xs: &[f64]) -> f64 {
    stddev(xs) / mean(xs)
}

/// Pearson correlation coefficient (Fig. 10 reports 0.998 for files vs
/// directories per volume).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    // `vx`/`vy` are sums of squares, so `<= 0.0` is exactly the
    // degenerate-variance check without a float `==` (U1L005).
    if vx <= 0.0 || vy <= 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Lorenz curve points `(population share, cumulative value share)` and the
/// Gini coefficient, as used by Fig. 7(c).
#[derive(Debug, Clone, Serialize)]
pub struct Lorenz {
    pub points: Vec<(f64, f64)>,
    pub gini: f64,
}

/// Computes the Lorenz curve and Gini coefficient of non-negative values.
pub fn lorenz(values: &[f64], curve_points: usize) -> Lorenz {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| *v >= 0.0).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let total: f64 = sorted.iter().sum();
    if n == 0 || total <= 0.0 {
        return Lorenz {
            points: vec![(0.0, 0.0), (1.0, 1.0)],
            gini: 0.0,
        };
    }
    // Gini via the sorted-rank formula.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum();
    let gini = (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64;
    // Curve.
    let mut points = Vec::with_capacity(curve_points + 1);
    points.push((0.0, 0.0));
    let mut cum = 0.0;
    let step = (n / curve_points.max(1)).max(1);
    for (i, v) in sorted.iter().enumerate() {
        cum += v;
        if (i + 1) % step == 0 || i + 1 == n {
            points.push(((i + 1) as f64 / n as f64, cum / total));
        }
    }
    Lorenz { points, gini }
}

/// Sample autocorrelation function at lags `0..=max_lag`, plus the ±95%
/// confidence bound `2/sqrt(N)` used by Fig. 2(c).
#[derive(Debug, Clone, Serialize)]
pub struct Acf {
    pub lags: Vec<f64>,
    pub confidence: f64,
}

pub fn acf(xs: &[f64], max_lag: usize) -> Acf {
    let n = xs.len();
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m).powi(2)).sum();
    let mut lags = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag.min(n.saturating_sub(1)) {
        // Sum of squares: `<= 0.0` ⇔ every sample equals the mean.
        if denom <= 0.0 {
            lags.push(0.0);
            continue;
        }
        let num: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
        lags.push(num / denom);
    }
    Acf {
        lags,
        confidence: 2.0 / (n as f64).sqrt(),
    }
}

/// A continuous power-law fit `P(X >= x) = (theta/x)^alpha` for `x >= theta`
/// via the Hill/MLE estimator, as Fig. 9 fits inter-operation times.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PowerLawFit {
    pub alpha: f64,
    pub theta: f64,
    /// Number of tail samples used.
    pub tail_n: usize,
}

/// Fits the tail `x >= theta`. `theta` is chosen as the given quantile of
/// the data (the paper fits "a central region of the domain").
pub fn fit_power_law(samples: &[f64], theta_quantile: f64) -> Option<PowerLawFit> {
    let ecdf = Ecdf::new(samples.to_vec());
    if ecdf.len() < 100 {
        return None;
    }
    let theta = ecdf.quantile(theta_quantile).max(f64::MIN_POSITIVE);
    let tail: Vec<f64> = samples.iter().copied().filter(|&x| x >= theta).collect();
    if tail.len() < 50 {
        return None;
    }
    let log_sum: f64 = tail.iter().map(|&x| (x / theta).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(PowerLawFit {
        alpha: tail.len() as f64 / log_sum,
        theta,
        tail_n: tail.len(),
    })
}

/// A fixed-width histogram used in report rendering.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    pub edges: Vec<f64>,
    pub counts: Vec<u64>,
}

pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0u64; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        if x < lo || !x.is_finite() {
            continue;
        }
        let idx = (((x - lo) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let edges = (0..=bins).map(|i| lo + width * i as f64).collect();
    Histogram { edges, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!((e.cdf(2.0) - 0.5).abs() < 1e-12);
        assert!((e.cdf(0.5) - 0.0).abs() < 1e-12);
        assert!((e.cdf(10.0) - 1.0).abs() < 1e-12);
        assert!((e.ccdf(3.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.median(), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
    }

    #[test]
    fn ecdf_handles_empty_and_nan() {
        let e = Ecdf::new(vec![f64::NAN, 1.0]);
        assert_eq!(e.len(), 1);
        let empty = Ecdf::new(vec![]);
        assert!(empty.is_empty());
        assert!(empty.median().is_nan());
        assert_eq!(empty.cdf(1.0), 0.0);
        assert!(empty.curve(10).is_empty());
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let e = Ecdf::new((1..=1000).map(|i| i as f64).collect());
        let curve = e.curve(50);
        assert_eq!(curve.len(), 50);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
        assert!((cv(&xs) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &inv) + 1.0).abs() < 1e-12);
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
    }

    #[test]
    fn gini_extremes() {
        assert!((lorenz(&[1.0, 1.0, 1.0, 1.0], 10).gini).abs() < 1e-9);
        let g = lorenz(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 10.0], 10).gini;
        assert!(g > 0.85, "all-to-one gini {g}");
        // Degenerate inputs.
        assert_eq!(lorenz(&[], 10).gini, 0.0);
    }

    #[test]
    fn lorenz_curve_is_convex_increasing() {
        let values: Vec<f64> = (1..=100).map(|i| (i as f64).powi(3)).collect();
        let l = lorenz(&values, 20);
        assert!(l.points.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((l.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Curve lies below the diagonal for unequal data.
        assert!(l.points.iter().all(|(x, y)| *y <= x + 1e-9));
    }

    #[test]
    fn acf_of_periodic_signal_alternates() {
        // Period-24 signal: strong positive ACF at lag 24, negative at 12.
        let xs: Vec<f64> = (0..24 * 20)
            .map(|i| (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect();
        let a = acf(&xs, 30);
        assert!((a.lags[0] - 1.0).abs() < 1e-9);
        assert!(a.lags[24] > 0.8, "lag-24 {}", a.lags[24]);
        assert!(a.lags[12] < -0.8, "lag-12 {}", a.lags[12]);
        assert!(a.confidence > 0.0);
    }

    #[test]
    fn acf_of_noise_stays_inside_confidence() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..4000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let a = acf(&xs, 50);
        let outside = a.lags[1..]
            .iter()
            .filter(|l| l.abs() > a.confidence)
            .count();
        assert!(
            outside <= 6,
            "noise ACF mostly inside bounds, {outside} out"
        );
    }

    #[test]
    fn power_law_fit_recovers_alpha() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| u1_core::rngx::sample_pareto(&mut rng, 1.54, 41.37))
            .collect();
        let fit = fit_power_law(&samples, 0.10).expect("fit");
        assert!((fit.alpha - 1.54).abs() < 0.08, "alpha {}", fit.alpha);
        assert!(fit.theta >= 41.0, "theta {}", fit.theta);
    }

    #[test]
    fn power_law_fit_refuses_tiny_samples() {
        assert!(fit_power_law(&[1.0, 2.0, 3.0], 0.1).is_none());
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = histogram(&[0.5, 1.5, 2.5, 99.0, -1.0], 0.0, 3.0, 3);
        assert_eq!(h.counts, vec![1, 1, 2]); // 99 clamps into last bin, -1 dropped
        assert_eq!(h.edges.len(), 4);
    }
}
