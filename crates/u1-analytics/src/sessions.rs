//! Session and authentication analyses (§7.3, Figs. 15–16).

use crate::stats::Ecdf;
use serde::Serialize;
use std::collections::HashMap;
use u1_core::{SimDuration, SimTime};
use u1_trace::{Payload, SessionEvent, TraceRecord};

/// Fig. 15: authentication and session-management activity.
#[derive(Debug, Serialize)]
pub struct AuthActivity {
    pub auth_per_hour: Vec<f64>,
    pub session_events_per_hour: Vec<f64>,
    pub auth_failure_fraction: f64,
    /// Day-vs-night swing of auth activity (mean central hours / mean night
    /// hours; the paper reports 50–60% higher by day).
    pub diurnal_swing: f64,
    /// Mean Monday activity over mean weekend activity (paper: ~15%).
    pub monday_over_weekend: f64,
}

pub fn auth_activity(records: &[TraceRecord], horizon: SimTime) -> AuthActivity {
    let hour = SimDuration::from_hours(1);
    let auth_per_hour = crate::timeseries::bin_sum(records, horizon, hour, |r| {
        matches!(r.payload, Payload::Auth { .. }).then_some(1.0)
    });
    let session_events_per_hour = crate::timeseries::bin_sum(records, horizon, hour, |r| {
        matches!(r.payload, Payload::Session { .. }).then_some(1.0)
    });
    let mut auth_total = 0u64;
    let mut auth_failed = 0u64;
    for rec in records {
        if let Payload::Auth { success, .. } = &rec.payload {
            auth_total += 1;
            auth_failed += (!success) as u64;
        }
    }
    // Day (10:00–16:00) vs night (00:00–05:00) means.
    let mut day = Vec::new();
    let mut night = Vec::new();
    let mut monday = Vec::new();
    let mut weekend = Vec::new();
    for (i, &v) in auth_per_hour.iter().enumerate() {
        let t = SimTime::from_hours(i as u64);
        match t.hour_of_day() {
            10..=16 => day.push(v),
            0..=5 => night.push(v),
            _ => {}
        }
        match t.day_of_week() {
            0 => monday.push(v),
            5 | 6 => weekend.push(v),
            _ => {}
        }
    }
    let ratio = |a: &[f64], b: &[f64]| {
        let (ma, mb) = (crate::stats::mean(a), crate::stats::mean(b));
        if mb > 0.0 {
            ma / mb
        } else {
            f64::NAN
        }
    };
    AuthActivity {
        diurnal_swing: ratio(&day, &night),
        monday_over_weekend: ratio(&monday, &weekend),
        auth_failure_fraction: if auth_total == 0 {
            0.0
        } else {
            auth_failed as f64 / auth_total as f64
        },
        auth_per_hour,
        session_events_per_hour,
    }
}

/// Fig. 16: session lengths and per-session storage operations.
#[derive(Debug, Serialize)]
pub struct SessionAnalysis {
    /// Closed sessions (open→close observed).
    pub sessions: u64,
    pub lengths: Ecdf,
    pub active_lengths: Ecdf,
    /// Storage (data-management) operations per active session.
    pub ops_per_active_session: Ecdf,
    pub under_1s: f64,
    pub under_8h: f64,
    /// Fraction of sessions that performed any data management (paper:
    /// 5.57%).
    pub active_fraction: f64,
    /// 80th percentile of ops per active session (paper: 92).
    pub p80_ops: f64,
    /// Share of all data ops issued by the most active 20% of active
    /// sessions (paper: 96.7%).
    pub top20_op_share: f64,
}

pub fn session_analysis(records: &[TraceRecord]) -> SessionAnalysis {
    let mut open_at: HashMap<u64, SimTime> = HashMap::new();
    let mut data_ops: HashMap<u64, u64> = HashMap::new();
    let mut lengths = Vec::new();
    let mut active_lengths = Vec::new();
    let mut closed_active = 0u64;
    let mut closed = 0u64;
    for rec in records {
        match &rec.payload {
            Payload::Session {
                event: SessionEvent::Open,
                session,
                ..
            } => {
                open_at.insert(session.raw(), rec.t);
            }
            Payload::Storage {
                op,
                session,
                success: true,
                ..
            } if op.is_data_management() => {
                *data_ops.entry(session.raw()).or_default() += 1;
            }
            Payload::Session {
                event: SessionEvent::Close,
                session,
                ..
            } => {
                if let Some(t0) = open_at.remove(&session.raw()) {
                    closed += 1;
                    let len = rec.t.since(t0).as_secs_f64();
                    lengths.push(len);
                    if data_ops.contains_key(&session.raw()) {
                        closed_active += 1;
                        active_lengths.push(len);
                    }
                }
            }
            _ => {}
        }
    }
    let lengths = Ecdf::new(lengths);
    let ops: Vec<f64> = data_ops.values().map(|&c| c as f64).collect();
    let ops_ecdf = Ecdf::new(ops.clone());
    let top20_share = {
        let mut sorted = ops.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cut = (sorted.len() as f64 * 0.8) as usize;
        let total: f64 = sorted.iter().sum();
        if total > 0.0 {
            sorted[cut..].iter().sum::<f64>() / total
        } else {
            0.0
        }
    };
    SessionAnalysis {
        sessions: closed,
        under_1s: lengths.cdf(1.0),
        under_8h: lengths.cdf(8.0 * 3600.0),
        active_fraction: if closed == 0 {
            0.0
        } else {
            closed_active as f64 / closed as f64
        },
        p80_ops: ops_ecdf.quantile(0.8),
        top20_op_share: top20_share,
        lengths,
        active_lengths: Ecdf::new(active_lengths),
        ops_per_active_session: ops_ecdf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn session_lengths_and_activity_split() {
        let recs = vec![
            session_open(at(0), 1, 1),
            transfer(at(10), Upload, 1, 1, 1, 10, 1, "a"),
            session_close(at(100), 1, 1), // active, 100s
            session_open(at(0), 2, 2),
            session_close(at(50), 2, 2), // cold, 50s
            session_open(at(200), 3, 3), // never closes: not counted
        ];
        let s = session_analysis(&recs);
        assert_eq!(s.sessions, 2);
        assert!((s.active_fraction - 0.5).abs() < 1e-9);
        assert_eq!(s.lengths.len(), 2);
        assert_eq!(s.active_lengths.len(), 1);
        assert_eq!(s.active_lengths.max(), 100.0);
        assert_eq!(s.ops_per_active_session.max(), 1.0);
        assert_eq!(s.under_8h, 1.0);
    }

    #[test]
    fn sub_second_sessions_measured() {
        let recs = vec![
            session_open(SimTime::from_micros(0), 1, 1),
            session_close(SimTime::from_micros(300_000), 1, 1), // 0.3s
            session_open(at(10), 2, 2),
            session_close(at(20), 2, 2),
        ];
        let s = session_analysis(&recs);
        assert!((s.under_1s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auth_activity_counts_failures_and_swing() {
        let mut recs = Vec::new();
        // Day 2 (Monday), hour 12: busy. Day 2, hour 3: quiet.
        for i in 0..60u64 {
            recs.push(auth(
                SimTime::from_hours(2 * 24 + 12) + SimDuration::from_secs(i),
                i,
                i % 50 != 0,
            ));
        }
        for i in 0..10u64 {
            recs.push(auth(
                SimTime::from_hours(2 * 24 + 3) + SimDuration::from_secs(i),
                i,
                true,
            ));
        }
        let horizon = SimTime::from_days(3);
        let a = auth_activity(&recs, horizon);
        assert!(a.diurnal_swing > 2.0, "swing {}", a.diurnal_swing);
        assert!((a.auth_failure_fraction - 2.0 / 70.0).abs() < 1e-9);
        assert_eq!(a.auth_per_hour.iter().sum::<f64>() as u64, 70);
    }

    #[test]
    fn top20_share_with_heavy_tail() {
        let mut recs = Vec::new();
        // 10 sessions: 9 with 1 op, 1 with 991 ops.
        for s in 1..=10u64 {
            recs.push(session_open(at(s), s, s));
            let ops = if s == 10 { 991 } else { 1 };
            for k in 0..ops {
                recs.push(transfer(at(s * 100 + k), Upload, s, s, k, 1, k, "a"));
            }
            recs.push(session_close(at(s * 100 + 2000), s, s));
        }
        let mut sorted = recs;
        sorted.sort_by_key(|r| r.t);
        let s = session_analysis(&sorted);
        assert!(s.top20_op_share > 0.95, "share {}", s.top20_op_share);
        assert_eq!(s.active_fraction, 1.0);
    }
}
