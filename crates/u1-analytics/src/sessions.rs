//! Session and authentication analyses (§7.3, Figs. 15–16).

use crate::engine::TraceFold;
use crate::stats::Ecdf;
use serde::Serialize;
use u1_core::{FxHashMap, FxHashSet, SimDuration, SimTime};
use u1_trace::{Payload, SessionEvent, TraceRecord};

/// Fig. 15: authentication and session-management activity.
#[derive(Debug, Serialize)]
pub struct AuthActivity {
    pub auth_per_hour: Vec<f64>,
    pub session_events_per_hour: Vec<f64>,
    pub auth_failure_fraction: f64,
    /// Day-vs-night swing of auth activity (mean central hours / mean night
    /// hours; the paper reports 50–60% higher by day).
    pub diurnal_swing: f64,
    /// Mean Monday activity over mean weekend activity (paper: ~15%).
    pub monday_over_weekend: f64,
}

/// Streaming state behind [`auth_activity`].
pub struct AuthActivityFold {
    horizon: SimTime,
    auth_bins: Vec<u64>,
    session_bins: Vec<u64>,
    auth_total: u64,
    auth_failed: u64,
}

impl AuthActivityFold {
    pub fn new(horizon: SimTime) -> Self {
        let bins = horizon
            .as_micros()
            .div_ceil(SimDuration::from_hours(1).as_micros()) as usize;
        Self {
            horizon,
            auth_bins: vec![0; bins.max(1)],
            session_bins: vec![0; bins.max(1)],
            auth_total: 0,
            auth_failed: 0,
        }
    }
}

impl TraceFold for AuthActivityFold {
    type Output = AuthActivity;

    fn new_partial(&self) -> Self {
        AuthActivityFold::new(self.horizon)
    }

    fn feed(&mut self, rec: &TraceRecord) {
        match &rec.payload {
            Payload::Auth { success, .. } => {
                self.auth_total += 1;
                self.auth_failed += u64::from(!success);
                if rec.t < self.horizon {
                    self.auth_bins[rec.t.bin_index(SimDuration::from_hours(1)) as usize] += 1;
                }
            }
            Payload::Session { .. } if rec.t < self.horizon => {
                self.session_bins[rec.t.bin_index(SimDuration::from_hours(1)) as usize] += 1;
            }
            _ => {}
        }
    }

    fn merge(&mut self, later: Self) {
        for (dst, src) in self.auth_bins.iter_mut().zip(later.auth_bins) {
            *dst += src;
        }
        for (dst, src) in self.session_bins.iter_mut().zip(later.session_bins) {
            *dst += src;
        }
        self.auth_total += later.auth_total;
        self.auth_failed += later.auth_failed;
    }

    fn finish(self) -> AuthActivity {
        let auth_per_hour: Vec<f64> = self.auth_bins.iter().map(|&c| c as f64).collect();
        let session_events_per_hour: Vec<f64> =
            self.session_bins.iter().map(|&c| c as f64).collect();
        // Day (10:00–16:00) vs night (00:00–05:00) means.
        let mut day = Vec::new();
        let mut night = Vec::new();
        let mut monday = Vec::new();
        let mut weekend = Vec::new();
        for (i, &v) in auth_per_hour.iter().enumerate() {
            let t = SimTime::from_hours(i as u64);
            match t.hour_of_day() {
                10..=16 => day.push(v),
                0..=5 => night.push(v),
                _ => {}
            }
            match t.day_of_week() {
                0 => monday.push(v),
                5 | 6 => weekend.push(v),
                _ => {}
            }
        }
        let ratio = |a: &[f64], b: &[f64]| {
            let (ma, mb) = (crate::stats::mean(a), crate::stats::mean(b));
            if mb > 0.0 {
                ma / mb
            } else {
                f64::NAN
            }
        };
        AuthActivity {
            diurnal_swing: ratio(&day, &night),
            monday_over_weekend: ratio(&monday, &weekend),
            auth_failure_fraction: if self.auth_total == 0 {
                0.0
            } else {
                self.auth_failed as f64 / self.auth_total as f64
            },
            auth_per_hour,
            session_events_per_hour,
        }
    }
}

pub fn auth_activity(records: &[TraceRecord], horizon: SimTime) -> AuthActivity {
    crate::engine::run_fold(AuthActivityFold::new(horizon), records)
}

/// Fig. 16: session lengths and per-session storage operations.
#[derive(Debug, Serialize)]
pub struct SessionAnalysis {
    /// Closed sessions (open→close observed).
    pub sessions: u64,
    pub lengths: Ecdf,
    pub active_lengths: Ecdf,
    /// Storage (data-management) operations per active session.
    pub ops_per_active_session: Ecdf,
    pub under_1s: f64,
    pub under_8h: f64,
    /// Fraction of sessions that performed any data management (paper:
    /// 5.57%).
    pub active_fraction: f64,
    /// 80th percentile of ops per active session (paper: 92).
    pub p80_ops: f64,
    /// Share of all data ops issued by the most active 20% of active
    /// sessions (paper: 96.7%).
    pub top20_op_share: f64,
}

/// Streaming state behind [`session_analysis`].
///
/// The serial pass classifies a session as *active* by looking up its data
/// op count at close time — and that count is never cleared, so it includes
/// ops from every record before the close, even a previous use of the same
/// session id. Replaying that across chunks needs:
/// * `pending_closes` — closes with no local open; they bind to an earlier
///   chunk's open at merge time, carrying the op count seen so far so the
///   activity check stays "ops strictly before the close".
/// * `inactive_closes` — closes already matched and counted, but classified
///   inactive using only local knowledge; an earlier chunk holding data ops
///   for that session upgrades them to active at merge time.
pub struct SessionFold {
    open_at: FxHashMap<u64, SimTime>,
    opened: FxHashSet<u64>,
    data_ops: FxHashMap<u64, u64>,
    lengths: Vec<f64>,
    active_lengths: Vec<f64>,
    closed: u64,
    closed_active: u64,
    pending_closes: Vec<(u64, SimTime, u64)>, // (session, close time, ops before)
    inactive_closes: Vec<(u64, f64)>,         // (session, length)
}

impl SessionFold {
    pub fn new() -> Self {
        Self {
            open_at: FxHashMap::default(),
            opened: FxHashSet::default(),
            data_ops: FxHashMap::default(),
            lengths: Vec::new(),
            active_lengths: Vec::new(),
            closed: 0,
            closed_active: 0,
            pending_closes: Vec::new(),
            inactive_closes: Vec::new(),
        }
    }

    fn record_close(&mut self, session: u64, len: f64, active: bool) {
        self.closed += 1;
        self.lengths.push(len);
        if active {
            self.closed_active += 1;
            self.active_lengths.push(len);
        } else {
            self.inactive_closes.push((session, len));
        }
    }
}

impl Default for SessionFold {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFold for SessionFold {
    type Output = SessionAnalysis;

    fn new_partial(&self) -> Self {
        SessionFold::new()
    }

    fn feed(&mut self, rec: &TraceRecord) {
        match &rec.payload {
            Payload::Session {
                event: SessionEvent::Open,
                session,
                ..
            } => {
                self.open_at.insert(session.raw(), rec.t);
                self.opened.insert(session.raw());
            }
            Payload::Storage {
                op,
                session,
                success: true,
                ..
            } if op.is_data_management() => {
                *self.data_ops.entry(session.raw()).or_default() += 1;
            }
            Payload::Session {
                event: SessionEvent::Close,
                session,
                ..
            } => {
                let s = session.raw();
                if let Some(t0) = self.open_at.remove(&s) {
                    let len = rec.t.since(t0).as_secs_f64();
                    let active = self.data_ops.contains_key(&s);
                    self.record_close(s, len, active);
                } else if !self.opened.contains(&s) {
                    // No open seen locally at all: may bind to an earlier
                    // chunk's open. Ops-before snapshot keeps the activity
                    // check restricted to records preceding this close.
                    let ops_before = self.data_ops.get(&s).copied().unwrap_or(0);
                    self.pending_closes.push((s, rec.t, ops_before));
                }
                // An open existed locally but was already consumed: the
                // serial pass drops such a close silently.
            }
            _ => {}
        }
    }

    fn merge(&mut self, later: Self) {
        for (s, t_close, ops_before) in later.pending_closes {
            if let Some(t0) = self.open_at.remove(&s) {
                let len = t_close.since(t0).as_secs_f64();
                let active = ops_before > 0 || self.data_ops.contains_key(&s);
                self.record_close(s, len, active);
            } else if !self.opened.contains(&s) {
                let ops_here = self.data_ops.get(&s).copied().unwrap_or(0);
                self.pending_closes
                    .push((s, t_close, ops_before + ops_here));
            }
        }
        // Closes the later chunk classified inactive become active if this
        // (earlier) chunk saw data ops for the session.
        for (s, len) in later.inactive_closes {
            if self.data_ops.contains_key(&s) {
                self.closed_active += 1;
                self.active_lengths.push(len);
            } else {
                self.inactive_closes.push((s, len));
            }
        }
        // Later re-opens overwrite (lose) earlier unclosed opens.
        for s in &later.opened {
            self.open_at.remove(s);
        }
        self.opened.extend(later.opened);
        self.open_at.extend(later.open_at);
        for (s, c) in later.data_ops {
            *self.data_ops.entry(s).or_default() += c;
        }
        self.lengths.extend(later.lengths);
        self.active_lengths.extend(later.active_lengths);
        self.closed += later.closed;
        self.closed_active += later.closed_active;
    }

    fn finish(self) -> SessionAnalysis {
        // Pending closes that never found an open are dropped, as in the
        // serial pass.
        let closed = self.closed;
        let closed_active = self.closed_active;
        let lengths = Ecdf::new(self.lengths);
        let ops: Vec<f64> = self.data_ops.values().map(|&c| c as f64).collect();
        let ops_ecdf = Ecdf::new(ops.clone());
        let top20_share = {
            let mut sorted = ops;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let cut = (sorted.len() as f64 * 0.8) as usize;
            let total: f64 = sorted.iter().sum();
            if total > 0.0 {
                sorted[cut..].iter().sum::<f64>() / total
            } else {
                0.0
            }
        };
        SessionAnalysis {
            sessions: closed,
            under_1s: lengths.cdf(1.0),
            under_8h: lengths.cdf(8.0 * 3600.0),
            active_fraction: if closed == 0 {
                0.0
            } else {
                closed_active as f64 / closed as f64
            },
            p80_ops: ops_ecdf.quantile(0.8),
            top20_op_share: top20_share,
            lengths,
            active_lengths: Ecdf::new(self.active_lengths),
            ops_per_active_session: ops_ecdf,
        }
    }
}

pub fn session_analysis(records: &[TraceRecord]) -> SessionAnalysis {
    crate::engine::run_fold(SessionFold::new(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use u1_core::ApiOpKind::*;

    #[test]
    fn session_lengths_and_activity_split() {
        let recs = vec![
            session_open(at(0), 1, 1),
            transfer(at(10), Upload, 1, 1, 1, 10, 1, "a"),
            session_close(at(100), 1, 1), // active, 100s
            session_open(at(0), 2, 2),
            session_close(at(50), 2, 2), // cold, 50s
            session_open(at(200), 3, 3), // never closes: not counted
        ];
        let s = session_analysis(&recs);
        assert_eq!(s.sessions, 2);
        assert!((s.active_fraction - 0.5).abs() < 1e-9);
        assert_eq!(s.lengths.len(), 2);
        assert_eq!(s.active_lengths.len(), 1);
        assert_eq!(s.active_lengths.max(), 100.0);
        assert_eq!(s.ops_per_active_session.max(), 1.0);
        assert_eq!(s.under_8h, 1.0);
    }

    #[test]
    fn sub_second_sessions_measured() {
        let recs = vec![
            session_open(SimTime::from_micros(0), 1, 1),
            session_close(SimTime::from_micros(300_000), 1, 1), // 0.3s
            session_open(at(10), 2, 2),
            session_close(at(20), 2, 2),
        ];
        let s = session_analysis(&recs);
        assert!((s.under_1s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn chunked_sessions_match_serial_at_every_split() {
        // Covers: boundary-spanning session, op-before-close in a different
        // chunk, session-id reuse inheriting activity, double close.
        let recs = vec![
            session_open(at(0), 1, 1),
            transfer(at(10), Upload, 1, 1, 1, 10, 1, "a"),
            session_open(at(20), 2, 2),
            session_close(at(100), 1, 1),
            session_close(at(110), 2, 2), // cold close
            session_open(at(120), 1, 1),  // reuse id 1: inherits data ops
            session_close(at(130), 1, 1), // active via stale count
            session_close(at(140), 1, 1), // double close: dropped
        ];
        let serial = session_analysis(&recs);
        for split in 0..=recs.len() {
            let (a, b) = recs.split_at(split);
            let got = crate::engine::run_chunks(SessionFold::new(), &[a, b]);
            assert_eq!(got.sessions, serial.sessions, "split={split}");
            assert_eq!(
                serde_json::to_value(&got),
                serde_json::to_value(&serial),
                "split={split}"
            );
        }
    }

    #[test]
    fn auth_activity_counts_failures_and_swing() {
        let mut recs = Vec::new();
        // Day 2 (Monday), hour 12: busy. Day 2, hour 3: quiet.
        for i in 0..60u64 {
            recs.push(auth(
                SimTime::from_hours(2 * 24 + 12) + SimDuration::from_secs(i),
                i,
                i % 50 != 0,
            ));
        }
        for i in 0..10u64 {
            recs.push(auth(
                SimTime::from_hours(2 * 24 + 3) + SimDuration::from_secs(i),
                i,
                true,
            ));
        }
        let horizon = SimTime::from_days(3);
        let a = auth_activity(&recs, horizon);
        assert!(a.diurnal_swing > 2.0, "swing {}", a.diurnal_swing);
        assert!((a.auth_failure_fraction - 2.0 / 70.0).abs() < 1e-9);
        assert_eq!(a.auth_per_hour.iter().sum::<f64>() as u64, 70);
    }

    #[test]
    fn top20_share_with_heavy_tail() {
        let mut recs = Vec::new();
        // 10 sessions: 9 with 1 op, 1 with 991 ops.
        for s in 1..=10u64 {
            recs.push(session_open(at(s), s, s));
            let ops = if s == 10 { 991 } else { 1 };
            for k in 0..ops {
                recs.push(transfer(at(s * 100 + k), Upload, s, s, k, 1, k, "a"));
            }
            recs.push(session_close(at(s * 100 + 2000), s, s));
        }
        let mut sorted = recs;
        sorted.sort_by_key(|r| r.t);
        let s = session_analysis(&sorted);
        assert!(s.top20_op_share > 0.95, "share {}", s.top20_op_share);
        assert_eq!(s.active_fraction, 1.0);
    }
}
