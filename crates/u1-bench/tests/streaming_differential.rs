//! Differential coverage for the streaming analytics engine: on a
//! deterministic quick-scale scenario, every converted analyzer's streaming
//! result must be EXACTLY equal (bitwise, via serialized JSON — the
//! vendored stub compares float bits, so NaN == NaN) to the legacy
//! slice-based result, at adversarial chunk splits, and `merge` must be
//! associative.

use std::sync::OnceLock;
use u1_analytics as ana;
use u1_analytics::engine::{run_all, run_chunks, Battery, EngineReport, TraceFold};
use u1_bench::{run_scenario, Scenario};
use u1_core::ApiOpKind;
use u1_trace::TraceRecord;
use u1_workload::WorkloadConfig;

fn scenario() -> &'static Scenario {
    static SCN: OnceLock<Scenario> = OnceLock::new();
    SCN.get_or_init(|| {
        run_scenario(WorkloadConfig {
            users: 200,
            days: 4,
            seed: 0xD1FF,
            attacks: true,
            seed_files: 1.0,
            workers: 0,
        })
    })
}

fn report() -> &'static EngineReport {
    static REP: OnceLock<EngineReport> = OnceLock::new();
    REP.get_or_init(|| {
        let scn = scenario();
        run_all(&scn.records, &u1_bench::engine_config(scn))
    })
}

fn assert_json_eq<A: serde::Serialize, B: serde::Serialize>(streaming: &A, legacy: &B, what: &str) {
    assert_eq!(
        serde_json::to_value(streaming),
        serde_json::to_value(legacy),
        "streaming != legacy slice output for {what}"
    );
}

/// Every battery field against the legacy free function it wraps — the
/// single-pass report must match per-analyzer slice results exactly.
#[test]
fn battery_fields_equal_legacy_analyzers_exactly() {
    let scn = scenario();
    let rep = report();
    let recs = &scn.records;
    let horizon = scn.horizon;
    let cfg = u1_bench::engine_config(scn);
    let exts: Vec<&str> = cfg.exts.iter().map(String::as_str).collect();

    assert_json_eq(
        &rep.summary,
        &ana::summary::trace_summary(recs, horizon),
        "summary",
    );
    assert_json_eq(
        &rep.traffic,
        &ana::timeseries::traffic_per_hour(recs, horizon),
        "traffic",
    );
    assert_eq!(
        rep.diurnal_swing.to_bits(),
        ana::storage::upload_diurnal_swing(recs, horizon).to_bits(),
        "diurnal_swing"
    );
    assert_json_eq(
        &rep.online_active,
        &ana::timeseries::online_active_per_hour(recs, horizon),
        "online_active",
    );
    assert_json_eq(
        &rep.active_online,
        &ana::users::active_online_summary(recs, horizon),
        "active_online",
    );
    assert_json_eq(
        &rep.size_shares,
        &ana::storage::size_category_shares(recs),
        "size_shares",
    );
    assert_json_eq(&rep.rw, &ana::storage::rw_ratio(recs, horizon), "rw");
    assert_json_eq(
        &rep.updates,
        &ana::storage::update_analysis(recs),
        "updates",
    );
    assert_json_eq(
        &rep.taxonomy,
        &ana::storage::taxonomy_shares(recs),
        "taxonomy",
    );
    assert_json_eq(
        &rep.size_by_ext,
        &ana::storage::size_by_extension(recs, &exts),
        "size_by_ext",
    );
    assert_json_eq(&rep.dedup, &ana::dedup::dedup_analysis(recs), "dedup");
    assert_json_eq(
        &rep.dependencies,
        &ana::dependencies::dependency_analysis(recs),
        "dependencies",
    );
    assert_json_eq(
        &rep.lifetimes,
        &ana::dependencies::lifetime_analysis(recs),
        "lifetimes",
    );
    assert_json_eq(
        &rep.ddos,
        &ana::ddos::detect(recs, horizon, &cfg.ddos),
        "ddos",
    );
    assert_json_eq(&rep.op_mix, &ana::users::op_mix(recs), "op_mix");
    assert_json_eq(
        &rep.inequality,
        &ana::users::traffic_inequality(recs),
        "inequality",
    );
    assert_json_eq(
        &rep.class_shares,
        &ana::users::class_shares(recs),
        "class_shares",
    );
    assert_json_eq(&rep.markov, &ana::markov::transition_graph(recs), "markov");
    assert_json_eq(
        &rep.burst_upload,
        &ana::burstiness::burstiness(recs, ApiOpKind::Upload),
        "burst_upload",
    );
    assert_json_eq(
        &rep.burst_unlink,
        &ana::burstiness::burstiness(recs, ApiOpKind::Unlink),
        "burst_unlink",
    );
    assert_json_eq(&rep.rpc, &ana::rpc::rpc_analysis(recs), "rpc");
    assert_json_eq(
        &rep.load_balance,
        &ana::rpc::load_balance(recs, horizon, cfg.machines, cfg.shards, cfg.lb_minutes),
        "load_balance",
    );
    assert_json_eq(
        &rep.auth,
        &ana::sessions::auth_activity(recs, horizon),
        "auth",
    );
    assert_json_eq(
        &rep.sessions,
        &ana::sessions::session_analysis(recs),
        "sessions",
    );
}

/// Splits the records at a set of adversarial offsets and checks the merged
/// battery equals the serial one. Covers chunks that cut sessions, days and
/// dependency chains in half.
fn assert_split_equals_serial(chunk_bounds: &[usize], what: &str) {
    let scn = scenario();
    let recs = &scn.records;
    let cfg = u1_bench::engine_config(scn);
    let serial = serde_json::to_value(report());
    let mut chunks: Vec<&[TraceRecord]> = Vec::new();
    let mut prev = 0usize;
    for &b in chunk_bounds {
        let b = b.min(recs.len());
        chunks.push(&recs[prev..b]);
        prev = b;
    }
    chunks.push(&recs[prev..]);
    let merged = run_chunks(Battery::new(&cfg), &chunks);
    assert_eq!(
        serde_json::to_value(&merged),
        serial,
        "chunked battery != serial battery for {what}"
    );
}

#[test]
fn adversarial_split_mid_everything() {
    let n = scenario().records.len();
    assert!(n > 100, "quick scenario unexpectedly tiny: {n} records");
    // Halves, thirds, and deliberately odd offsets that land mid-session
    // and mid-dependency-chain.
    assert_split_equals_serial(&[n / 2], "halves");
    assert_split_equals_serial(&[n / 3, 2 * n / 3], "thirds");
    assert_split_equals_serial(&[1, 2, 3, 5, 7, n - 3, n - 1], "ragged edges");
    assert_split_equals_serial(&[n / 7, n / 5, n / 3, n / 2, (n * 9) / 10], "odd offsets");
}

#[test]
fn adversarial_split_at_day_boundaries() {
    let scn = scenario();
    let recs = &scn.records;
    // Find the first record index of each simulated day: chunks then cut
    // exactly at day boundaries (and, by construction, mid-session for any
    // session spanning midnight).
    let mut bounds = Vec::new();
    let mut day = 0u64;
    for (i, r) in recs.iter().enumerate() {
        let d = r.t.day_index();
        if d > day {
            day = d;
            bounds.push(i);
        }
    }
    assert!(!bounds.is_empty(), "trace spans a single day");
    assert_split_equals_serial(&bounds, "day boundaries");
    // And one record past each boundary, so the cut lands just after
    // midnight instead of exactly on it.
    let shifted: Vec<usize> = bounds.iter().map(|&b| b + 1).collect();
    assert_split_equals_serial(&shifted, "day boundaries + 1");
}

/// Single-record chunks: the most adversarial split there is — every
/// boundary-state mechanism (pending closes, first/last maps, boundary
/// dependency pairs) fires on every record. Uses a prefix of the trace to
/// keep the per-record merge cost bounded.
#[test]
fn single_record_chunks_match_serial() {
    let scn = scenario();
    let cfg = u1_bench::engine_config(scn);
    let n = scn.records.len().min(3_000);
    let prefix = &scn.records[..n];
    let serial = serde_json::to_value(&run_all(prefix, &cfg));
    let singles: Vec<&[TraceRecord]> = prefix.chunks(1).collect();
    let merged = run_chunks(Battery::new(&cfg), &singles);
    assert_eq!(serde_json::to_value(&merged), serial);
}

/// merge is associative: (A·B)·C == A·(B·C) for a real trace cut at
/// arbitrary points.
#[test]
fn merge_is_associative_on_real_trace() {
    let scn = scenario();
    let recs = &scn.records;
    let cfg = u1_bench::engine_config(scn);
    let (a, rest) = recs.split_at(recs.len() / 4);
    let (b, c) = rest.split_at(rest.len() / 3);

    let fold_chunk = |chunk: &[TraceRecord]| {
        let mut p = Battery::new(&cfg).new_partial();
        chunk.iter().for_each(|r| p.feed(r));
        p
    };
    // (A·B)·C
    let left = {
        let mut ab = fold_chunk(a);
        ab.merge(fold_chunk(b));
        ab.merge(fold_chunk(c));
        ab.finish()
    };
    // A·(B·C)
    let right = {
        let mut bc = fold_chunk(b);
        bc.merge(fold_chunk(c));
        let mut abc = fold_chunk(a);
        abc.merge(bc);
        abc.finish()
    };
    assert_eq!(serde_json::to_value(&left), serde_json::to_value(&right));
}

/// The experiment harness entry point returns the same thing as composing
/// the engine by hand — `analyze` is one pass, not a re-walk.
#[test]
fn analyze_matches_manual_run_all() {
    let scn = scenario();
    let manual = run_all(&scn.records, &u1_bench::engine_config(scn));
    assert_eq!(
        serde_json::to_value(&u1_bench::analyze(scn)),
        serde_json::to_value(&manual)
    );
}

/// Chunk-parallel execution at several thread counts equals the serial
/// streaming pass exactly (threads only change wall-clock, never output).
#[test]
fn chunk_parallel_equals_serial_at_every_thread_count() {
    let scn = scenario();
    let cfg = u1_bench::engine_config(scn);
    let serial = serde_json::to_value(report());
    for threads in [2, 3, 5, 16] {
        let chunked = ana::engine::run_all_chunked(&scn.records, &cfg, threads);
        assert_eq!(serde_json::to_value(&chunked), serial, "threads={threads}");
    }
}
