//! Differential coverage for the stream-to-disk pipeline: the golden
//! quick-scale workload, run once accumulating in memory and once streaming
//! stamped logfiles to disk, must produce the SAME canonical trace — record
//! for record — and off-disk analytics over the streamed directory must
//! equal the in-memory report bit for bit. Worker count must be invisible
//! in all of it, and with the driver golden test's exact wiring the
//! streamed read-back reproduces the pinned golden SHA.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use u1_analytics::engine::{run_all, run_all_offdisk};
use u1_bench::scenario::{run_scenario_streamed, StreamedScenario};
use u1_bench::{run_scenario, Scenario};
use u1_core::{Sha1, SimClock};
use u1_server::{Backend, BackendConfig};
use u1_trace::{BufferedSink, DirSink, LogDirReader, TraceRecord};
use u1_workload::{Driver, WorkloadConfig};

/// The exact workload of the driver's golden test, whose canonical trace
/// SHA is pinned there as well.
fn golden_cfg(workers: usize) -> WorkloadConfig {
    WorkloadConfig {
        users: 120,
        days: 3,
        seed: 11,
        attacks: true,
        seed_files: 0.5,
        workers,
    }
}

const GOLDEN_SHA: &str = "78be5180fee062f073b8838c0cb695e681de3f1b";

/// SHA-1 over every canonical line plus its `(origin, seq)` stamp — the
/// same digest the driver golden test computes.
fn canonical_sha(records: &[TraceRecord]) -> String {
    let mut buf = String::new();
    for r in records {
        buf.push_str(&u1_trace::csvline::to_line(r));
        buf.push_str(&format!("|{}|{}\n", r.origin, r.seq));
    }
    Sha1::digest(buf.as_bytes()).to_hex()
}

fn in_memory() -> &'static Scenario {
    static SCN: OnceLock<Scenario> = OnceLock::new();
    SCN.get_or_init(|| run_scenario(golden_cfg(0)))
}

fn temp_trace_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("u1-stream-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn streamed(workers: usize, tag: &str) -> (StreamedScenario, PathBuf) {
    let dir = temp_trace_dir(&format!("{tag}-w{workers}"));
    let scn = run_scenario_streamed(golden_cfg(workers), &dir).expect("streamed run");
    (scn, dir)
}

/// Reads a stamped trace directory back into canonical `(t, origin, seq)`
/// order by concatenating its day chunks.
fn read_back_canonical(dir: &std::path::Path) -> Vec<TraceRecord> {
    let mut chunks = LogDirReader::new(dir).day_chunks(4).expect("day_chunks");
    let mut all = Vec::new();
    while let Some(chunk) = chunks.next_day() {
        all.extend(chunk.expect("read day").records);
    }
    all
}

/// Scenario-level differential: streaming to disk and reading back yields
/// the in-memory canonical trace record-for-record (stamps, fault tags and
/// payloads included), at several worker counts.
#[test]
fn streamed_trace_matches_in_memory_trace() {
    let mem = in_memory();
    let mem_sha = canonical_sha(&mem.records);
    for workers in [0usize, 3] {
        let (scn, dir) = streamed(workers, "sha");
        assert_eq!(
            scn.report.trace_io_errors, 0,
            "{:?}",
            scn.first_trace_io_error
        );
        let records = read_back_canonical(&dir);
        assert_eq!(records.len(), mem.records.len());
        assert_eq!(
            canonical_sha(&records),
            mem_sha,
            "streamed canonical trace diverged at workers={workers}"
        );
        assert_eq!(records, mem.records, "workers={workers}");
        // The simulation itself was identical too.
        assert_eq!(scn.report, mem.report, "workers={workers}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// With the driver golden test's exact wiring (default backend config), the
/// stream-to-disk read-back reproduces the pinned golden SHA — proving the
/// sink swap is byte-for-byte invisible to the canonical trace.
#[test]
fn streamed_mode_reproduces_driver_golden_sha() {
    for workers in [0usize, 3] {
        let dir = temp_trace_dir(&format!("golden-w{workers}"));
        let clock = SimClock::new();
        let sink = Arc::new(DirSink::create_stamped(&dir).unwrap());
        let backend = Arc::new(Backend::new(
            BackendConfig::default(),
            Arc::new(clock.clone()),
            Arc::new(BufferedSink::new(Arc::clone(&sink))),
        ));
        let report = Driver::new(golden_cfg(workers), backend, clock).run();
        assert_eq!(report.trace_io_errors, 0, "{:?}", sink.first_io_error());
        let records = read_back_canonical(&dir);
        assert_eq!(records.len(), 8184);
        assert_eq!(
            canonical_sha(&records),
            GOLDEN_SHA,
            "golden SHA diverged at workers={workers}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn offdisk_analytics_over_streamed_trace_equals_in_memory_report() {
    let mem = in_memory();
    let cfg = u1_bench::engine_config(mem);
    let serial = serde_json::to_value(&run_all(&mem.records, &cfg));
    let (scn, dir) = streamed(0, "offdisk");
    assert_eq!(scn.report.trace_io_errors, 0);
    for threads in [1usize, 4] {
        let (report, stats) = run_all_offdisk(&dir, &cfg, threads).expect("offdisk run");
        assert_eq!(
            serde_json::to_value(&report),
            serial,
            "off-disk report diverged at threads={threads}"
        );
        assert_eq!(stats.days as u64, mem.cfg.days);
        assert_eq!(stats.parse.parsed, mem.records.len());
        assert_eq!(stats.parse.malformed, 0);
        assert!(stats.peak_chunk_records < mem.records.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
