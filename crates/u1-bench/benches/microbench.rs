//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! hashing, protocol codec/framing, metadata-store RPCs, dedup lookups,
//! trace serialization, analytics kernels — plus the ablation benches
//! DESIGN.md calls out (latency-tail on/off, tiering sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use u1_core::{ContentHash, NodeKind, RpcKind, Sha1, SimTime, UserId};
use u1_metastore::{LatencyModel, LatencyProfile, MetaStore, StoreConfig};

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [1usize << 10, 1 << 20] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha1::digest(std::hint::black_box(data)))
        });
    }
    g.finish();
}

fn bench_protocol(c: &mut Criterion) {
    use bytes::BytesMut;
    use u1_proto::codec;
    use u1_proto::frame::{encode_frame, FrameDecoder};
    use u1_proto::msg::{Message, Request};

    let msg = Message::Request {
        id: 42,
        req: Request::BeginUpload {
            volume: u1_core::VolumeId::new(7),
            node: u1_core::NodeId::new(99),
            hash: ContentHash::from_content_id(1),
            size: 12 << 20,
        },
    };
    let mut encoded = BytesMut::new();
    codec::encode(&msg, &mut encoded);

    let mut g = c.benchmark_group("protocol");
    g.bench_function("encode_begin_upload", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(64);
            codec::encode(std::hint::black_box(&msg), &mut buf);
            buf
        })
    });
    g.bench_function("decode_begin_upload", |b| {
        b.iter(|| codec::decode(std::hint::black_box(&encoded)).unwrap())
    });
    // A chunk message dominates upload wire time.
    let chunk = Message::Request {
        id: 43,
        req: Request::UploadChunk {
            upload: u1_core::UploadId::new(1),
            data: vec![0u8; 64 * 1024],
        },
    };
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("encode_frame_64k_chunk", |b| {
        b.iter(|| {
            let mut body = BytesMut::with_capacity(64 * 1024 + 32);
            codec::encode(std::hint::black_box(&chunk), &mut body);
            let mut framed = BytesMut::with_capacity(body.len() + 4);
            encode_frame(&body, &mut framed).expect("chunk fits frame");
            framed
        })
    });
    let mut body = BytesMut::new();
    codec::encode(&chunk, &mut body);
    let mut framed = BytesMut::new();
    encode_frame(&body, &mut framed).expect("chunk fits frame");
    g.bench_function("frame_decode_64k_chunk", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.extend(std::hint::black_box(&framed));
            let frame = dec.next_frame().unwrap().unwrap();
            codec::decode(&frame).unwrap()
        })
    });
    g.finish();
}

fn store_with_users(users: u64) -> MetaStore {
    let store = MetaStore::new(StoreConfig::default());
    for u in 1..=users {
        store.create_user(UserId::new(u), SimTime::ZERO).unwrap();
    }
    store
}

fn bench_metastore(c: &mut Criterion) {
    let mut g = c.benchmark_group("metastore");
    g.measurement_time(Duration::from_secs(2));

    // make_file + unlink cycle (write path).
    let store = store_with_users(16);
    let root = store.get_root(UserId::new(1)).unwrap().volume;
    let mut i = 0u64;
    g.bench_function("make_file_unlink_cycle", |b| {
        b.iter(|| {
            i += 1;
            let row = store
                .make_node(
                    UserId::new(1),
                    root,
                    None,
                    NodeKind::File,
                    &format!("bench{i}"),
                    SimTime::ZERO,
                )
                .unwrap();
            store
                .unlink(UserId::new(1), root, row.node, SimTime::ZERO)
                .unwrap()
        })
    });

    // get_delta over a populated volume (read path).
    let store = store_with_users(1);
    let root = store.get_root(UserId::new(1)).unwrap().volume;
    for i in 0..1_000 {
        store
            .make_node(
                UserId::new(1),
                root,
                None,
                NodeKind::File,
                &format!("f{i}"),
                SimTime::ZERO,
            )
            .unwrap();
    }
    g.bench_function("get_delta_tail_of_1k", |b| {
        b.iter(|| store.get_delta(UserId::new(1), root, 990).unwrap())
    });
    g.bench_function("get_from_scratch_1k", |b| {
        b.iter(|| store.get_from_scratch(UserId::new(1), root).unwrap())
    });

    // Dedup probe against a large content index.
    let store = store_with_users(1);
    let root = store.get_root(UserId::new(1)).unwrap().volume;
    for i in 0..100_000u64 {
        let node = store
            .make_node(
                UserId::new(1),
                root,
                None,
                NodeKind::File,
                &format!("c{i}"),
                SimTime::ZERO,
            )
            .unwrap();
        store
            .make_content(
                UserId::new(1),
                root,
                node.node,
                ContentHash::from_content_id(i),
                100,
                SimTime::ZERO,
            )
            .unwrap();
    }
    g.bench_function("dedup_probe_hit_100k_contents", |b| {
        b.iter(|| store.get_reusable_content(ContentHash::from_content_id(55_555), 100))
    });
    g.bench_function("dedup_probe_miss_100k_contents", |b| {
        b.iter(|| store.get_reusable_content(ContentHash::from_content_id(999_999_999), 100))
    });
    g.finish();
}

fn bench_contention(c: &mut Criterion) {
    use std::sync::atomic::{AtomicU64, Ordering};

    // N threads hammer ONE MetaStore with the commit cycle the parallel
    // driver produces per upload: make_node → make_content → dedup probe →
    // unlink. Total work is fixed, split across threads, so on a
    // multi-core host the striped contents index and sharded volume_owner
    // map let wall-clock fall with the thread count; before de-contention
    // the global write locks made this flat or worse.
    const OPS_PER_ITER: u64 = 2_000;
    let serial = AtomicU64::new(0);
    let mut g = c.benchmark_group("metastore_contention");
    g.measurement_time(Duration::from_secs(2));
    for threads in [1usize, 2, 4] {
        // Four users per thread, mirroring the driver's per-shard client
        // partitioning: threads never share a user, but do share the
        // store-global tables.
        let users = 4 * threads as u64;
        let store = store_with_users(users);
        let roots: Vec<_> = (1..=users)
            .map(|u| store.get_root(UserId::new(u)).unwrap().volume)
            .collect();
        g.throughput(Throughput::Elements(OPS_PER_ITER));
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let base = serial.fetch_add(OPS_PER_ITER, Ordering::Relaxed);
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let store = &store;
                            let roots = &roots;
                            s.spawn(move || {
                                let per = OPS_PER_ITER / threads as u64;
                                for i in 0..per {
                                    let seq = base + t as u64 * per + i;
                                    let slot = t as u64 * 4 + i % 4;
                                    let user = UserId::new(slot + 1);
                                    let root = roots[slot as usize];
                                    let row = store
                                        .make_node(
                                            user,
                                            root,
                                            None,
                                            NodeKind::File,
                                            &format!("b{seq}"),
                                            SimTime::ZERO,
                                        )
                                        .unwrap();
                                    store
                                        .make_content(
                                            user,
                                            root,
                                            row.node,
                                            ContentHash::from_content_id(seq),
                                            100,
                                            SimTime::ZERO,
                                        )
                                        .unwrap();
                                    std::hint::black_box(store.get_reusable_content(
                                        ContentHash::from_content_id(seq),
                                        100,
                                    ));
                                    store.unlink(user, root, row.node, SimTime::ZERO).unwrap();
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    g.finish();
}

fn bench_latency_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency_model");
    let mut with_tail = LatencyModel::new(LatencyProfile::default(), 1);
    let mut no_tail = LatencyModel::new(LatencyProfile::default().no_tail(), 1);
    g.bench_function("sample_with_tail", |b| {
        b.iter(|| with_tail.sample(RpcKind::GetNode, 0))
    });
    // Ablation: what the sampler costs without the tail mixture.
    g.bench_function("sample_no_tail_ablation", |b| {
        b.iter(|| no_tail.sample(RpcKind::GetNode, 0))
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    use u1_trace::{csvline, Payload, TraceRecord};
    let rec = TraceRecord::new(
        SimTime::from_secs(12345),
        u1_core::MachineId::new(3),
        u1_core::ProcessId::new(9),
        Payload::Storage {
            op: u1_core::ApiOpKind::Upload,
            session: u1_core::SessionId::new(17),
            user: UserId::new(4),
            volume: u1_core::VolumeId::new(2),
            node: Some(u1_core::NodeId::new(99)),
            kind: Some(NodeKind::File),
            size: 1_048_576,
            hash: Some(ContentHash::from_content_id(5)),
            ext: "jpg".into(),
            success: true,
            duration_us: 15_000,
        },
    );
    let line = csvline::to_line(&rec);
    let mut g = c.benchmark_group("trace");
    g.bench_function("csv_serialize_storage", |b| {
        b.iter(|| csvline::to_line(std::hint::black_box(&rec)))
    });
    g.bench_function("csv_parse_storage", |b| {
        b.iter(|| {
            csvline::from_line(
                std::hint::black_box(&line),
                u1_core::MachineId::new(3),
                u1_core::ProcessId::new(9),
            )
            .unwrap()
        })
    });
    g.finish();
}

/// A representative record per payload family, for encode benches.
fn sample_records() -> Vec<(&'static str, u1_trace::TraceRecord)> {
    use u1_trace::{Payload, SessionEvent, TraceRecord};
    let storage = TraceRecord::new(
        SimTime::from_secs(12345),
        u1_core::MachineId::new(3),
        u1_core::ProcessId::new(9),
        Payload::Storage {
            op: u1_core::ApiOpKind::Upload,
            session: u1_core::SessionId::new(17),
            user: UserId::new(4),
            volume: u1_core::VolumeId::new(2),
            node: Some(u1_core::NodeId::new(99)),
            kind: Some(NodeKind::File),
            size: 1_048_576,
            hash: Some(ContentHash::from_content_id(5)),
            ext: "jpg".into(),
            success: true,
            duration_us: 15_000,
        },
    );
    let rpc = TraceRecord::new(
        SimTime::from_secs(12345),
        u1_core::MachineId::new(3),
        u1_core::ProcessId::new(9),
        Payload::Rpc {
            rpc: RpcKind::GetNode,
            shard: u1_core::ShardId::new(5),
            user: UserId::new(4),
            service_us: 903,
        },
    );
    let session = TraceRecord::new(
        SimTime::from_secs(12345),
        u1_core::MachineId::new(3),
        u1_core::ProcessId::new(9),
        Payload::Session {
            event: SessionEvent::Open,
            session: u1_core::SessionId::new(17),
            user: UserId::new(4),
        },
    );
    vec![("storage", storage), ("rpc", rpc), ("session", session)]
}

fn bench_trace_encode(c: &mut Criterion) {
    use u1_trace::csvline;
    let mut g = c.benchmark_group("trace_encode");
    for (name, rec) in sample_records() {
        // Allocation-free path: serialize into a reused buffer.
        let mut buf = String::with_capacity(160);
        g.bench_function(&format!("write_line_{name}"), |b| {
            b.iter(|| {
                buf.clear();
                csvline::write_line(std::hint::black_box(&rec), &mut buf).unwrap();
                buf.len()
            })
        });
        // Allocating wrapper, for the before/after comparison.
        g.bench_function(&format!("to_line_{name}"), |b| {
            b.iter(|| csvline::to_line(std::hint::black_box(&rec)))
        });
    }
    g.finish();
}

fn bench_sink_throughput(c: &mut Criterion) {
    use criterion::BatchSize;
    use std::sync::Arc;
    use u1_trace::{BufferedSink, MemorySink, TraceRecord, TraceSink};

    // A batch shaped like one partition-day: a few origins, each a
    // (t, seq)-monotone run, interleaved by origin blocks.
    const N: usize = 8_192;
    let proto = sample_records();
    let mut recs: Vec<TraceRecord> = Vec::with_capacity(N);
    for origin in 0u32..4 {
        for i in 0..(N / 4) {
            let mut r = proto[i % proto.len()].1.clone();
            r.t = SimTime::from_secs(i as u64);
            r.origin = origin + 1;
            r.seq = i as u64;
            recs.push(r);
        }
    }

    let mut g = c.benchmark_group("sink_throughput");
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("memory_record", |b| {
        b.iter_batched(
            || recs.clone(),
            |batch| {
                let sink = MemorySink::new();
                for r in batch {
                    sink.record(r);
                }
                sink
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("memory_record_batch_owned", |b| {
        b.iter_batched(
            || recs.clone(),
            |mut batch| {
                let sink = MemorySink::new();
                sink.record_batch_owned(&mut batch);
                sink
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("buffered_record_flush", |b| {
        b.iter_batched(
            || recs.clone(),
            |batch| {
                let inner = Arc::new(MemorySink::new());
                let sink = BufferedSink::new(Arc::clone(&inner));
                for r in batch {
                    sink.record(r);
                }
                sink.flush();
                inner
            },
            BatchSize::LargeInput,
        )
    });
    // The read side: k-way merge of the per-origin runs into canonical order.
    g.bench_function("take_sorted_merge_4_runs", |b| {
        b.iter_batched(
            || {
                let sink = MemorySink::new();
                let mut batch = recs.clone();
                sink.record_batch_owned(&mut batch);
                sink
            },
            |sink| sink.take_sorted(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_analytics(c: &mut Criterion) {
    use rand::{Rng, SeedableRng};
    use u1_analytics::stats;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..1e6)).collect();
    let series: Vec<f64> = (0..5_000)
        .map(|i| (i as f64 / 24.0).sin() + rng.gen_range(0.0..0.1))
        .collect();
    let pareto: Vec<f64> = (0..50_000)
        .map(|_| u1_core::rngx::sample_pareto(&mut rng, 1.5, 40.0))
        .collect();

    let mut g = c.benchmark_group("analytics");
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("ecdf_build_100k", |b| {
        b.iter(|| stats::Ecdf::new(std::hint::black_box(samples.clone())))
    });
    g.bench_function("gini_100k", |b| {
        b.iter(|| stats::lorenz(std::hint::black_box(&samples), 100).gini)
    });
    g.bench_function("acf_5k_x200", |b| {
        b.iter(|| stats::acf(std::hint::black_box(&series), 200))
    });
    g.bench_function("power_law_fit_50k", |b| {
        b.iter(|| stats::fit_power_law(std::hint::black_box(&pareto), 0.1).unwrap())
    });
    g.finish();
}

fn bench_tier_sweep(c: &mut Criterion) {
    use u1_blobstore::{tier, BlobStore, TierPolicy};
    let store = BlobStore::new();
    for i in 0..50_000u64 {
        store.put(
            ContentHash::from_content_id(i),
            1_000,
            None,
            SimTime::from_secs(i % 86_400),
        );
    }
    let policy = TierPolicy::default();
    c.bench_function("tier_sweep_50k_objects", |b| {
        b.iter(|| tier::tier_sweep(&store, &policy, SimTime::from_days(30)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sha1, bench_protocol, bench_metastore, bench_contention,
              bench_latency_model, bench_trace, bench_trace_encode,
              bench_sink_throughput, bench_analytics, bench_tier_sweep
}
criterion_main!(benches);
