//! Scenario execution: one simulated month, everything the analyses need.

use std::path::PathBuf;
use std::sync::Arc;
use u1_blobstore::BlobStoreStats;
use u1_core::fault::FaultPlan;
use u1_core::{SimClock, SimTime};
use u1_metastore::store::VolumeSnapshot;
use u1_server::{Backend, BackendConfig};
use u1_trace::{BufferedSink, DirSink, MemorySink, TraceRecord};
use u1_workload::{Driver, DriverReport, WorkloadConfig};

/// A completed simulation run plus end-of-run state snapshots.
pub struct Scenario {
    pub cfg: WorkloadConfig,
    pub horizon: SimTime,
    pub records: Vec<TraceRecord>,
    pub volumes: Vec<VolumeSnapshot>,
    pub store_dedup_ratio: f64,
    pub blob_stats: BlobStoreStats,
    pub report: DriverReport,
    /// The backend itself, for experiments that keep interacting with it.
    pub backend: Arc<Backend>,
}

/// Runs a workload against a fresh backend under a virtual clock.
pub fn run_scenario(cfg: WorkloadConfig) -> Scenario {
    run_scenario_with_faults(cfg, FaultPlan::none())
}

/// [`run_scenario`] with a fault plan injected into the backend (the driver
/// reads the same plan off the backend for its client-side behavior).
pub fn run_scenario_with_faults(cfg: WorkloadConfig, fault: FaultPlan) -> Scenario {
    let clock = SimClock::new();
    // Emission goes through the batched path; `sink` keeps a handle on the
    // underlying store for `take_sorted` (the driver flushes at day
    // boundaries and on run exit).
    let sink = Arc::new(MemorySink::new());
    let backend_cfg = BackendConfig {
        seed: cfg.seed ^ 0xBACC,
        fault,
        ..BackendConfig::default()
    };
    let backend = Arc::new(Backend::new(
        backend_cfg,
        Arc::new(clock.clone()),
        Arc::new(BufferedSink::new(Arc::clone(&sink))),
    ));
    let driver = Driver::new(cfg.clone(), Arc::clone(&backend), clock);
    let started = std::time::Instant::now();
    let report = driver.run();
    eprintln!(
        "[scenario] {} users x {} days: {} records in {:.1}s",
        cfg.users,
        cfg.days,
        sink.len(),
        started.elapsed().as_secs_f64()
    );
    Scenario {
        horizon: cfg.horizon(),
        records: sink.take_sorted(),
        volumes: backend.store.volume_snapshot(),
        store_dedup_ratio: backend.store.dedup_ratio(),
        blob_stats: backend.blobs.stats(),
        report,
        cfg,
        backend,
    }
}

/// A completed stream-to-disk run: the trace went straight to stamped
/// logfiles under `trace_dir` instead of accumulating in memory, so the
/// run's peak RSS is bounded by live metastore/driver state — not by the
/// month of records. Read the trace back with
/// `u1_analytics::engine::run_all_offdisk` (bit-identical to the in-memory
/// report) or `LogDirReader`.
pub struct StreamedScenario {
    pub cfg: WorkloadConfig,
    pub horizon: SimTime,
    /// Directory of per-(machine, process, day) stamped logfiles.
    pub trace_dir: PathBuf,
    pub volumes: Vec<VolumeSnapshot>,
    pub store_dedup_ratio: f64,
    pub blob_stats: BlobStoreStats,
    pub report: DriverReport,
    /// First trace I/O failure, if the sink ran degraded (the count is in
    /// `report.trace_io_errors`).
    pub first_trace_io_error: Option<String>,
    pub backend: Arc<Backend>,
}

/// [`run_scenario`], but streaming every record to stamped logfiles under
/// `dir` as the simulation runs. The wiring is identical — same seeds, same
/// `BufferedSink` per-origin runs, same flush-off-barrier machinery (the
/// driver is sink-agnostic) — so the emitted record sequence, and therefore
/// the canonical `(t, origin, seq)` trace and its golden hash, match the
/// in-memory mode exactly.
pub fn run_scenario_streamed(
    cfg: WorkloadConfig,
    dir: impl Into<PathBuf>,
) -> std::io::Result<StreamedScenario> {
    let clock = SimClock::new();
    let sink = Arc::new(DirSink::create_stamped(dir)?);
    let trace_dir = sink.dir().to_path_buf();
    let backend_cfg = BackendConfig {
        seed: cfg.seed ^ 0xBACC,
        fault: FaultPlan::none(),
        ..BackendConfig::default()
    };
    let backend = Arc::new(Backend::new(
        backend_cfg,
        Arc::new(clock.clone()),
        Arc::new(BufferedSink::new(Arc::clone(&sink))),
    ));
    let driver = Driver::new(cfg.clone(), Arc::clone(&backend), clock);
    let started = std::time::Instant::now();
    let report = driver.run();
    eprintln!(
        "[scenario] {} users x {} days streamed to {} in {:.1}s",
        cfg.users,
        cfg.days,
        trace_dir.display(),
        started.elapsed().as_secs_f64()
    );
    Ok(StreamedScenario {
        horizon: cfg.horizon(),
        trace_dir,
        volumes: backend.store.volume_snapshot(),
        store_dedup_ratio: backend.store.dedup_ratio(),
        blob_stats: backend.blobs.stats(),
        report,
        first_trace_io_error: sink.first_io_error(),
        cfg,
        backend,
    })
}

/// Builds the workload configuration from the environment (see crate docs)
/// and runs it.
pub fn scenario_from_env() -> Scenario {
    let mut cfg = WorkloadConfig::paper_scaled();
    if let Ok(v) = std::env::var("U1_USERS") {
        cfg.users = v.parse().expect("U1_USERS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_DAYS") {
        cfg.days = v.parse().expect("U1_DAYS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_SEED") {
        cfg.seed = v.parse().expect("U1_SEED must be an integer");
    }
    if std::env::var("U1_ATTACKS").as_deref() == Ok("0") {
        cfg.attacks = false;
    }
    run_scenario(cfg)
}
