//! Scenario execution: one simulated month, everything the analyses need.

use std::sync::Arc;
use u1_blobstore::BlobStoreStats;
use u1_core::fault::FaultPlan;
use u1_core::{SimClock, SimTime};
use u1_metastore::store::VolumeSnapshot;
use u1_server::{Backend, BackendConfig};
use u1_trace::{BufferedSink, MemorySink, TraceRecord};
use u1_workload::{Driver, DriverReport, WorkloadConfig};

/// A completed simulation run plus end-of-run state snapshots.
pub struct Scenario {
    pub cfg: WorkloadConfig,
    pub horizon: SimTime,
    pub records: Vec<TraceRecord>,
    pub volumes: Vec<VolumeSnapshot>,
    pub store_dedup_ratio: f64,
    pub blob_stats: BlobStoreStats,
    pub report: DriverReport,
    /// The backend itself, for experiments that keep interacting with it.
    pub backend: Arc<Backend>,
}

/// Runs a workload against a fresh backend under a virtual clock.
pub fn run_scenario(cfg: WorkloadConfig) -> Scenario {
    run_scenario_with_faults(cfg, FaultPlan::none())
}

/// [`run_scenario`] with a fault plan injected into the backend (the driver
/// reads the same plan off the backend for its client-side behavior).
pub fn run_scenario_with_faults(cfg: WorkloadConfig, fault: FaultPlan) -> Scenario {
    let clock = SimClock::new();
    // Emission goes through the batched path; `sink` keeps a handle on the
    // underlying store for `take_sorted` (the driver flushes at day
    // boundaries and on run exit).
    let sink = Arc::new(MemorySink::new());
    let backend_cfg = BackendConfig {
        seed: cfg.seed ^ 0xBACC,
        fault,
        ..BackendConfig::default()
    };
    let backend = Arc::new(Backend::new(
        backend_cfg,
        Arc::new(clock.clone()),
        Arc::new(BufferedSink::new(Arc::clone(&sink))),
    ));
    let driver = Driver::new(cfg.clone(), Arc::clone(&backend), clock);
    let started = std::time::Instant::now();
    let report = driver.run();
    eprintln!(
        "[scenario] {} users x {} days: {} records in {:.1}s",
        cfg.users,
        cfg.days,
        sink.len(),
        started.elapsed().as_secs_f64()
    );
    Scenario {
        horizon: cfg.horizon(),
        records: sink.take_sorted(),
        volumes: backend.store.volume_snapshot(),
        store_dedup_ratio: backend.store.dedup_ratio(),
        blob_stats: backend.blobs.stats(),
        report,
        cfg,
        backend,
    }
}

/// Builds the workload configuration from the environment (see crate docs)
/// and runs it.
pub fn scenario_from_env() -> Scenario {
    let mut cfg = WorkloadConfig::paper_scaled();
    if let Ok(v) = std::env::var("U1_USERS") {
        cfg.users = v.parse().expect("U1_USERS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_DAYS") {
        cfg.days = v.parse().expect("U1_DAYS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_SEED") {
        cfg.seed = v.parse().expect("U1_SEED must be an integer");
    }
    if std::env::var("U1_ATTACKS").as_deref() == Ok("0") {
        cfg.attacks = false;
    }
    run_scenario(cfg)
}
