//! One function per paper table/figure. Each prints the paper's rows or
//! series and returns a JSON document with the measured values next to the
//! paper's, so EXPERIMENTS.md can quote both.
//!
//! Every record-derived experiment reads from a shared [`EngineReport`]
//! produced by ONE streaming pass over the trace ([`crate::analyze`]);
//! the harness no longer re-walks `scn.records` per experiment. The two
//! volume experiments (Fig. 10/11) analyze the end-of-run metastore
//! snapshot rather than the trace, and Fig. 17 runs its own mini-backend,
//! so those keep their original inputs.

use crate::{bytes, emit, pct, Scenario};
use serde_json::{json, Value};
use u1_analytics as ana;
use u1_analytics::engine::EngineReport;
use u1_core::{ApiOpKind, RpcClass, RpcKind};
use u1_workload::calibration as cal;

fn fmt_series(series: &[f64], per_day: usize) -> String {
    // Compact day-by-day rendering: one line per day.
    let mut out = String::new();
    for (d, chunk) in series.chunks(per_day).enumerate() {
        let peak = chunk.iter().cloned().fold(0.0f64, f64::max);
        let total: f64 = chunk.iter().sum();
        out.push_str(&format!(
            "  day {d:>2}: total {total:>12.0}   peak/hour {peak:>10.0}\n"
        ));
    }
    out
}

/// Table 3: trace summary.
pub fn exp_t3_summary(rep: &EngineReport) -> Value {
    let s = &rep.summary;
    let human = format!(
        "Trace duration    {} days (paper: 30)\n\
         Records           {}\n\
         Unique user IDs   {} (paper: 1,294,794 at 1:{} scale)\n\
         Unique files      {}\n\
         User sessions     {}\n\
         Transfer ops      {}\n\
         Upload traffic    {} (paper: 105TB)\n\
         Download traffic  {} (paper: 120TB)\n\
         R/W traffic ratio {:.2} (paper: 120/105 = 1.14)",
        s.trace_days,
        s.records,
        s.unique_users,
        cal::PAPER_USERS / s.unique_users.max(1),
        s.unique_files,
        s.sessions,
        s.transfer_ops,
        bytes(s.upload_bytes),
        bytes(s.download_bytes),
        s.download_bytes as f64 / s.upload_bytes.max(1) as f64,
    );
    let j = json!({"summary": s, "paper": {
        "users": cal::PAPER_USERS, "sessions": cal::PAPER_SESSIONS,
        "transfer_ops": cal::PAPER_TRANSFER_OPS,
    }});
    emit("t3_summary", &human, &j);
    j
}

/// Fig. 2(a): traffic time series.
pub fn exp_f2a_traffic_timeseries(rep: &EngineReport) -> Value {
    let ts = &rep.traffic;
    let swing = rep.diurnal_swing;
    let human = format!(
        "Upload GB/hour by day:\n{}\nDiurnal upload swing (peak/trough of hour-of-day means): {swing:.1}x (paper: up to 10x)",
        fmt_series(&ts.upload_bytes, 24)
    );
    let j = json!({
        "upload_bytes_per_hour": ts.upload_bytes,
        "download_bytes_per_hour": ts.download_bytes,
        "diurnal_swing": swing,
        "paper": {"diurnal_swing": 10.0},
    });
    emit("f2a_traffic_timeseries", &human, &j);
    j
}

/// Fig. 2(b): traffic and ops per file-size category.
pub fn exp_f2b_size_categories(rep: &EngineReport) -> Value {
    let s = &rep.size_shares;
    let mut human = String::from(
        "size (MB)     up-ops   up-bytes  down-ops down-bytes   (paper: >25MB = 79%/88% of bytes; <0.5MB = 84%/89% of ops)\n",
    );
    for (i, cat) in s.categories.iter().enumerate() {
        human.push_str(&format!(
            "{:>9}   {:>7}   {:>7}   {:>7}   {:>7}\n",
            cat,
            pct(s.upload_op_share[i]),
            pct(s.upload_byte_share[i]),
            pct(s.download_op_share[i]),
            pct(s.download_byte_share[i]),
        ));
    }
    let j = json!({
        "shares": {
            "categories": s.categories,
            "upload_op_share": s.upload_op_share,
            "upload_byte_share": s.upload_byte_share,
            "download_op_share": s.download_op_share,
            "download_byte_share": s.download_byte_share,
        },
        "paper": {
            "huge_upload_byte_share": cal::HUGE_FILE_UPLOAD_TRAFFIC_SHARE,
            "huge_download_byte_share": cal::HUGE_FILE_DOWNLOAD_TRAFFIC_SHARE,
            "tiny_upload_op_share": cal::TINY_FILE_UPLOAD_OP_SHARE,
            "tiny_download_op_share": cal::TINY_FILE_DOWNLOAD_OP_SHARE,
        },
    });
    emit("f2b_size_categories", &human, &j);
    j
}

/// Fig. 2(c): R/W ratio distribution + ACF.
pub fn exp_f2c_rw_ratio(rep: &EngineReport) -> Value {
    let rw = &rep.rw;
    let outside = rw
        .acf
        .lags
        .iter()
        .skip(1)
        .filter(|l| l.abs() > rw.acf.confidence)
        .count();
    let morning: Vec<String> = (6..=15)
        .map(|h| format!("{h}h:{:.2}", rw.by_hour_of_day[h]))
        .collect();
    let human = format!(
        "R/W ratio: median {:.2} (paper 1.14), mean {:.2} (paper 1.17), min {:.2}, max {:.2}\n\
         ACF: {}/{} lags outside the 95% bound ±{:.3} → {}\n\
         Hour-of-day means 6am→3pm (paper: linear decay): {}",
        rw.median,
        rw.mean,
        rw.min,
        rw.max,
        outside,
        rw.acf.lags.len().saturating_sub(1),
        rw.acf.confidence,
        if outside * 20 > rw.acf.lags.len() {
            "correlated (non-random), as in the paper"
        } else {
            "mostly uncorrelated"
        },
        morning.join(" "),
    );
    let j = json!({
        "median": rw.median, "mean": rw.mean,
        "acf_outside_fraction": outside as f64 / rw.acf.lags.len().max(1) as f64,
        "by_hour_of_day": rw.by_hour_of_day,
        "paper": {"median": cal::RW_RATIO_MEDIAN, "mean": cal::RW_RATIO_MEAN},
    });
    emit("f2c_rw_ratio", &human, &j);
    j
}

fn dep_block(
    analysis: &ana::dependencies::DependencyAnalysis,
    deps: &[ana::dependencies::Dependency],
) -> (String, Value) {
    let total: u64 = deps
        .iter()
        .map(|d| {
            analysis
                .counts
                .iter()
                .find(|(k, _)| k == d)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        })
        .sum();
    let mut human = String::new();
    let mut j = serde_json::Map::new();
    for d in deps {
        let count = analysis
            .counts
            .iter()
            .find(|(k, _)| k == d)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let ecdf = analysis.times.iter().find(|(k, _)| k == d).map(|(_, e)| e);
        let med = ecdf.map(|e| e.median()).unwrap_or(f64::NAN);
        let under_1h = ecdf.map(|e| e.cdf(3600.0)).unwrap_or(0.0);
        human.push_str(&format!(
            "  {}: {:>7} pairs ({}), median gap {:>10.1}s, {} under 1h\n",
            d.label(),
            count,
            pct(count as f64 / total.max(1) as f64),
            med,
            pct(under_1h),
        ));
        j.insert(
            d.label().to_string(),
            json!({"count": count, "share": count as f64 / total.max(1) as f64,
                   "median_gap_s": med, "under_1h": under_1h}),
        );
    }
    (human, Value::Object(j))
}

/// Fig. 3(a): X-after-Write dependencies.
pub fn exp_f3a_after_write(rep: &EngineReport) -> Value {
    let a = &rep.dependencies;
    let (human, j) = dep_block(a, &ana::dependencies::Dependency::AFTER_WRITE);
    let human = format!(
        "{human}  WAW under 1h: {} (paper: 80%)\n  (paper shares: WAW 44%, RAW 30%, DAW 26%)",
        pct(a.waw_under_1h)
    );
    let j = json!({"after_write": j, "waw_under_1h": a.waw_under_1h,
                   "paper": {"waw": cal::WAW_SHARE, "raw": cal::RAW_SHARE, "daw": cal::DAW_SHARE}});
    emit("f3a_after_write", &human, &j);
    j
}

/// Fig. 3(b): X-after-Read dependencies + reads per file.
pub fn exp_f3b_after_read(rep: &EngineReport) -> Value {
    let a = &rep.dependencies;
    let (human, j) = dep_block(a, &ana::dependencies::Dependency::AFTER_READ);
    let human = format!(
        "{human}  RAR under 1 day: {} (paper: ~40%)\n  reads/file: median {:.0}, p99 {:.0}, max {:.0} (long tail)\n  dying files (>1 day quiet before delete): {} of {} deleted\n  (paper shares: WAR 10%, RAR 66%, DAR 24%)",
        pct(a.rar_under_1d),
        a.reads_per_file.median(),
        a.reads_per_file.quantile(0.99),
        a.reads_per_file.max(),
        a.dying_files,
        a.deleted_files,
    );
    let j = json!({"after_read": j, "rar_under_1d": a.rar_under_1d,
                   "reads_per_file_max": a.reads_per_file.max(),
                   "dying_files": a.dying_files, "deleted_files": a.deleted_files,
                   "paper": {"war": cal::WAR_SHARE, "rar": cal::RAR_SHARE, "dar": cal::DAR_SHARE}});
    emit("f3b_after_read", &human, &j);
    j
}

/// Fig. 3(c): node lifetimes.
pub fn exp_f3c_lifetimes(rep: &EngineReport) -> Value {
    let l = &rep.lifetimes;
    let human = format!(
        "files created {} — deleted in window {} (paper 28.9%), within 8h {} (paper 17.1%)\n\
         dirs  created {} — deleted in window {} (paper 31.5%), within 8h {} (paper 12.9%)\n\
         median deleted-file lifetime: {:.0}s; median deleted-dir lifetime: {:.0}s",
        l.files_created,
        pct(l.file_mortality),
        pct(l.file_mortality_8h),
        l.dirs_created,
        pct(l.dir_mortality),
        pct(l.dir_mortality_8h),
        l.file_lifetimes.median(),
        l.dir_lifetimes.median(),
    );
    let j = json!({
        "file_mortality": l.file_mortality, "file_mortality_8h": l.file_mortality_8h,
        "dir_mortality": l.dir_mortality, "dir_mortality_8h": l.dir_mortality_8h,
        "paper": {"file_month": cal::FILE_DEATH_IN_MONTH, "file_8h": cal::FILE_DEATH_IN_8H,
                   "dir_month": cal::DIR_DEATH_IN_MONTH, "dir_8h": cal::DIR_DEATH_IN_8H},
    });
    emit("f3c_lifetimes", &human, &j);
    j
}

/// Fig. 4(a): deduplication.
pub fn exp_f4a_dedup(scn: &Scenario, rep: &EngineReport) -> Value {
    let d = &rep.dedup;
    let human = format!(
        "dedup ratio over uploads: {:.3} (paper: 0.171)\n\
         store-level dedup ratio (live contents): {:.3}\n\
         contents uploaded once: {} (paper: ~80% have no duplicates)\n\
         most-duplicated content: {} copies (long tail / hot spot)",
        d.dedup_ratio,
        scn.store_dedup_ratio,
        pct(d.singleton_fraction),
        d.max_copies,
    );
    let j = json!({
        "dedup_ratio": d.dedup_ratio, "store_dedup_ratio": scn.store_dedup_ratio,
        "singleton_fraction": d.singleton_fraction, "max_copies": d.max_copies,
        "unique_contents": d.unique_contents, "total_uploads": d.total_uploads,
        "paper": {"dedup_ratio": cal::DEDUP_RATIO, "singleton_fraction": 0.80},
    });
    emit("f4a_dedup", &human, &j);
    j
}

/// Fig. 4(b): file sizes per extension.
pub fn exp_f4b_sizes_by_ext(rep: &EngineReport) -> Value {
    let s = &rep.size_by_ext;
    let mut human = format!(
        "all files: {} under 1MB (paper: 90%)\n  ext    median       p90\n",
        pct(s.under_1mb_fraction)
    );
    let mut by_ext = serde_json::Map::new();
    for (ext, e) in &s.by_ext {
        human.push_str(&format!(
            "  {:<5} {:>10} {:>10}\n",
            ext,
            bytes(e.median() as u64),
            bytes(e.quantile(0.9) as u64)
        ));
        by_ext.insert(
            ext.clone(),
            json!({"median": e.median(), "p90": e.quantile(0.9), "n": e.len()}),
        );
    }
    let j = json!({"under_1mb": s.under_1mb_fraction, "by_ext": by_ext,
                   "paper": {"under_1mb": cal::FILES_UNDER_1MB}});
    emit("f4b_sizes_by_ext", &human, &j);
    j
}

/// Fig. 4(c): category count vs storage share.
pub fn exp_f4c_categories(rep: &EngineReport) -> Value {
    let t = &rep.taxonomy;
    let mut human =
        String::from("category      files   storage   (paper: Code most files/least bytes; Audio/Video most bytes)\n");
    for (i, cat) in t.categories.iter().enumerate() {
        human.push_str(&format!(
            "{:<12} {:>7} {:>9}\n",
            cat,
            pct(t.file_share[i]),
            pct(t.byte_share[i])
        ));
    }
    let j = json!({"categories": t.categories, "file_share": t.file_share,
                   "byte_share": t.byte_share});
    emit("f4c_categories", &human, &j);
    j
}

/// Fig. 5: DDoS detection.
pub fn exp_f5_ddos(scn: &Scenario, rep: &EngineReport) -> Value {
    // Count attacks from the session/auth signature (Fig. 5's definition);
    // at small scale single heavy users can legitimately spike the storage
    // series, which the session/auth series are immune to.
    let control_eps: Vec<_> = rep
        .ddos
        .episodes
        .iter()
        .filter(|e| e.signal != "storage")
        .cloned()
        .collect();
    let attacks = ana::ddos::distinct_attacks(&control_eps);
    let mut human = format!(
        "distinct attack episodes detected: {} (paper: 3, on days 4, 5 and 26)\n",
        attacks.len()
    );
    for (start, end, peak) in &attacks {
        human.push_str(&format!(
            "  day {:>2} hours {}..{}: peak {:.1}x over baseline\n",
            start / 24,
            start,
            end,
            peak
        ));
    }
    human.push_str(&format!(
        "driver ground truth: {} attack sessions, {} attack ops, {} users banned",
        scn.report.attack_sessions, scn.report.attack_ops, scn.report.users_banned
    ));
    let j = json!({
        "detected": attacks.iter().map(|(s, e, p)| json!({"start_hour": s, "end_hour": e, "peak": p})).collect::<Vec<_>>(),
        "ground_truth": {"attack_sessions": scn.report.attack_sessions,
                          "attack_ops": scn.report.attack_ops,
                          "users_banned": scn.report.users_banned},
        "paper": {"attacks": 3, "attack_days": cal::ATTACK_DAYS,
                   "storage_multipliers": cal::ATTACK_API_MULTIPLIER},
    });
    emit("f5_ddos", &human, &j);
    j
}

/// Fig. 6: online vs active users.
pub fn exp_f6_online_active(rep: &EngineReport) -> Value {
    let s = &rep.active_online;
    let human = format!(
        "active/online ratio per hour: min {}, mean {}, max {} (paper: 3.49%–16.25%)",
        pct(s.min_ratio),
        pct(s.mean_ratio),
        pct(s.max_ratio)
    );
    let j = json!({"min": s.min_ratio, "mean": s.mean_ratio, "max": s.max_ratio,
                   "paper": {"min": cal::ACTIVE_OF_ONLINE_MIN, "max": cal::ACTIVE_OF_ONLINE_MAX}});
    emit("f6_online_active", &human, &j);
    j
}

/// Fig. 7(a): operation mix.
pub fn exp_f7a_op_mix(rep: &EngineReport) -> Value {
    let mix = &rep.op_mix;
    let mut human = String::from("operation            count\n");
    for (name, count) in &mix.counts {
        if *count > 0 {
            human.push_str(&format!("{name:<20} {count:>10}\n"));
        }
    }
    let j = json!({"counts": mix.counts.iter().map(|(n, c)| json!([n, c])).collect::<Vec<_>>()});
    emit("f7a_op_mix", &human, &j);
    j
}

/// Fig. 7(b): per-user traffic distribution.
pub fn exp_f7b_user_traffic(rep: &EngineReport) -> Value {
    let t = &rep.inequality;
    let human = format!(
        "users who downloaded anything: {} (paper: 14%)\n\
         users who uploaded anything:   {} (paper: 25%)\n\
         active uploader median: {}, p99: {}",
        pct(t.users_who_download),
        pct(t.users_who_upload),
        bytes(t.upload_cdf.median() as u64),
        bytes(t.upload_cdf.quantile(0.99) as u64),
    );
    let j = json!({"users_who_download": t.users_who_download,
                   "users_who_upload": t.users_who_upload,
                   "paper": {"download": 0.14, "upload": 0.25}});
    emit("f7b_user_traffic", &human, &j);
    j
}

/// Fig. 7(c): Lorenz curves and Gini.
pub fn exp_f7c_gini(rep: &EngineReport) -> Value {
    let t = &rep.inequality;
    let human = format!(
        "upload Gini   {:.3} (paper: 0.8943)\n\
         download Gini {:.3} (paper: 0.8966)\n\
         top 1% of active users hold {} of traffic (paper: 65.6%)",
        t.upload_lorenz.gini,
        t.download_lorenz.gini,
        pct(t.top1_share),
    );
    let j = json!({"upload_gini": t.upload_lorenz.gini,
                   "download_gini": t.download_lorenz.gini,
                   "top1_share": t.top1_share,
                   "upload_lorenz": t.upload_lorenz.points,
                   "paper": {"upload_gini": cal::GINI_UPLOAD, "download_gini": cal::GINI_DOWNLOAD,
                              "top1_share": cal::TOP1_TRAFFIC_SHARE}});
    emit("f7c_gini", &human, &j);
    j
}

/// Fig. 8: transition graph.
pub fn exp_f8_transitions(rep: &EngineReport) -> Value {
    let g = &rep.markov;
    let mut human = format!(
        "total transitions: {}\ntop edges (global probability):\n",
        g.total_transitions
    );
    for e in g.edges.iter().take(12) {
        human.push_str(&format!(
            "  {:<18} -> {:<18} {:.3}\n",
            e.from, e.to, e.probability
        ));
    }
    human.push_str(&format!(
        "upload self-loop {:.3} (paper: 0.167), download self-loop {:.3} (paper: 0.158)",
        g.probability(ApiOpKind::Upload, ApiOpKind::Upload),
        g.probability(ApiOpKind::Download, ApiOpKind::Download),
    ));
    let j = json!({
        "total": g.total_transitions,
        "top_edges": g.edges.iter().take(20).map(|e| json!([e.from, e.to, e.probability])).collect::<Vec<_>>(),
        "upload_self": g.probability(ApiOpKind::Upload, ApiOpKind::Upload),
        "download_self": g.probability(ApiOpKind::Download, ApiOpKind::Download),
        "paper": {"upload_self": 0.167, "download_self": 0.158},
    });
    emit("f8_transitions", &human, &j);
    j
}

/// Fig. 9: burstiness + power-law fits.
pub fn exp_f9_burstiness(rep: &EngineReport) -> Value {
    let up = &rep.burst_upload;
    let un = &rep.burst_unlink;
    let fit_line = |b: &ana::burstiness::Burstiness| match &b.fit {
        Some(f) => format!(
            "alpha {:.2}, theta {:.1}s over {} tail samples",
            f.alpha, f.theta, f.tail_n
        ),
        None => "insufficient samples".into(),
    };
    let human = format!(
        "Upload inter-op times: {} gaps, CV {:.1} (Poisson would be 1.0) — fit {} (paper: alpha 1.54, theta 41.4)\n\
         Unlink inter-op times: {} gaps, CV {:.1} — fit {} (paper: alpha 1.44, theta 19.5)\n\
         span: {:.2}s .. {:.0}s ({} decades)",
        up.gaps,
        up.cv,
        fit_line(up),
        un.gaps,
        un.cv,
        fit_line(un),
        up.ecdf.min(),
        up.ecdf.max(),
        ((up.ecdf.max() / up.ecdf.min().max(1e-6)).log10()) as i64,
    );
    let j = json!({
        "upload": {"gaps": up.gaps, "cv": up.cv, "fit": up.fit.as_ref().map(|f| json!({"alpha": f.alpha, "theta": f.theta}))},
        "unlink": {"gaps": un.gaps, "cv": un.cv, "fit": un.fit.as_ref().map(|f| json!({"alpha": f.alpha, "theta": f.theta}))},
        "paper": {"upload": {"alpha": cal::UPLOAD_INTEROP_ALPHA, "theta": cal::UPLOAD_INTEROP_THETA},
                   "unlink": {"alpha": cal::UNLINK_INTEROP_ALPHA, "theta": cal::UNLINK_INTEROP_THETA}},
    });
    emit("f9_burstiness", &human, &j);
    j
}

/// Fig. 10: files vs dirs per volume.
pub fn exp_f10_volume_contents(scn: &Scenario) -> Value {
    let c = ana::volumes::volume_contents(&scn.volumes);
    let human = format!(
        "volumes: {}\n\
         files/dirs Pearson correlation: {:.3} (paper: 0.998)\n\
         volumes with >=1 file: {} (paper: ~60%); with >=1 dir: {} (paper: ~32%)\n\
         volumes with >1000 files: {} (paper: ~5%)",
        c.volumes,
        c.files_dirs_pearson,
        pct(c.with_files),
        pct(c.with_dirs),
        pct(c.over_1000_files),
    );
    let j = json!({"volumes": c.volumes, "pearson": c.files_dirs_pearson,
                   "with_files": c.with_files, "with_dirs": c.with_dirs,
                   "over_1000_files": c.over_1000_files,
                   "paper": {"pearson": 0.998, "with_files": 0.60, "with_dirs": 0.32, "over_1000": 0.05}});
    emit("f10_volume_contents", &human, &j);
    j
}

/// Fig. 11: UDF and shared volumes.
pub fn exp_f11_volume_types(scn: &Scenario) -> Value {
    let t = ana::volumes::volume_types(&scn.volumes);
    let human = format!(
        "users: {}\nusers with >=1 UDF: {} (paper: 58%)\nusers involved in sharing: {} (paper: 1.8%)",
        t.users,
        pct(t.users_with_udf),
        pct(t.users_with_share),
    );
    let j = json!({"users": t.users, "with_udf": t.users_with_udf, "with_share": t.users_with_share,
                   "paper": {"with_udf": cal::USERS_WITH_UDF, "with_share": cal::USERS_WITH_SHARE}});
    emit("f11_volume_types", &human, &j);
    j
}

/// Fig. 12: RPC service-time distributions.
pub fn exp_f12_rpc_latency(rep: &EngineReport) -> Value {
    let a = &rep.rpc;
    let mut human = String::from(
        "rpc                                    panel   class      n     median      p99   far(>10x med)\n",
    );
    let mut rows = Vec::new();
    for p in &a.profiles {
        if p.count == 0 {
            continue;
        }
        human.push_str(&format!(
            "{:<38} {:<7} {:<8} {:>7} {:>9.4}s {:>7.2}s   {}\n",
            p.rpc,
            p.panel,
            p.class,
            p.count,
            p.median_s,
            p.p99_s,
            pct(p.far_from_median),
        ));
        rows.push(json!({"rpc": p.rpc, "panel": p.panel, "class": p.class,
                          "n": p.count, "median_s": p.median_s, "p99_s": p.p99_s,
                          "far_from_median": p.far_from_median}));
    }
    human.push_str("(paper: every RPC long-tailed, 7–22% far from median)");
    let j = json!({"profiles": rows, "paper": {"far_min": 0.07, "far_max": 0.22}});
    emit("f12_rpc_latency", &human, &j);
    j
}

/// Fig. 13: median service time vs frequency scatter.
pub fn exp_f13_rpc_scatter(rep: &EngineReport) -> Value {
    let a = &rep.rpc;
    let read = a.class_median(RpcClass::Read);
    let write = a.class_median(RpcClass::Write);
    let cascade = a.class_median(RpcClass::Cascade);
    let human = format!(
        "class medians: read {read:.4}s < write {write:.4}s < cascade {cascade:.4}s\n\
         cascade/read ratio: {:.0}x (paper: more than one order of magnitude)\n\
         cascades are rare: delete_volume n={}, get_from_scratch n={}",
        cascade / read,
        a.profile(RpcKind::DeleteVolume)
            .map(|p| p.count)
            .unwrap_or(0),
        a.profile(RpcKind::GetFromScratch)
            .map(|p| p.count)
            .unwrap_or(0),
    );
    let j = json!({"read_median": read, "write_median": write, "cascade_median": cascade,
                   "cascade_over_read": cascade / read,
                   "scatter": a.profiles.iter().filter(|p| p.count > 0)
                       .map(|p| json!([p.rpc, p.class, p.count, p.median_s])).collect::<Vec<_>>(),
                   "paper": {"cascade_over_read_min": 10.0}});
    emit("f13_rpc_scatter", &human, &j);
    j
}

/// Fig. 14: load balance.
pub fn exp_f14_load_balance(rep: &EngineReport) -> Value {
    let lb = &rep.load_balance;
    let human = format!(
        "API servers, hourly: mean CV across machines {:.2} (high variance = poor short-window balance)\n\
         store shards, per-minute: mean CV across shards {:.2}\n\
         long-run shard imbalance (stddev/mean of totals): {} (paper: 4.9%)",
        lb.api_mean_cv,
        lb.shard_mean_cv,
        pct(lb.shard_longrun_cv),
    );
    let j = json!({"api_mean_cv": lb.api_mean_cv, "shard_mean_cv": lb.shard_mean_cv,
                   "shard_longrun_cv": lb.shard_longrun_cv,
                   "paper": {"longrun": cal::SHARD_LONGRUN_STDDEV}});
    emit("f14_load_balance", &human, &j);
    j
}

/// Fig. 15: auth/session activity.
pub fn exp_f15_auth_activity(rep: &EngineReport) -> Value {
    let a = &rep.auth;
    let human = format!(
        "auth requests: diurnal swing {:.2}x (paper: 1.5–1.6x day-over-night)\n\
         Monday over weekend: {:.2}x (paper: ~1.15x)\n\
         auth failure fraction: {} (paper: 2.76%)",
        a.diurnal_swing,
        a.monday_over_weekend,
        pct(a.auth_failure_fraction),
    );
    let j = json!({"diurnal_swing": a.diurnal_swing,
                   "monday_over_weekend": a.monday_over_weekend,
                   "auth_failure_fraction": a.auth_failure_fraction,
                   "auth_per_hour": a.auth_per_hour,
                   "paper": {"swing": cal::AUTH_DIURNAL_SWING,
                              "monday": cal::MONDAY_OVER_WEEKEND,
                              "failures": cal::AUTH_FAILURE_RATE}});
    emit("f15_auth_activity", &human, &j);
    j
}

/// Fig. 16: session lengths and ops per session.
pub fn exp_f16_sessions(rep: &EngineReport) -> Value {
    let s = &rep.sessions;
    let human = format!(
        "closed sessions: {}\n\
         under 1s: {} (paper: 32%); under 8h: {} (paper: 97%)\n\
         active sessions: {} (paper: 5.57%)\n\
         p80 ops per active session: {:.0} (paper: 92)\n\
         top-20% active sessions hold {} of data ops (paper: 96.7%)",
        s.sessions,
        pct(s.under_1s),
        pct(s.under_8h),
        pct(s.active_fraction),
        s.p80_ops,
        pct(s.top20_op_share),
    );
    let j = json!({"sessions": s.sessions, "under_1s": s.under_1s, "under_8h": s.under_8h,
                   "active_fraction": s.active_fraction, "p80_ops": s.p80_ops,
                   "top20_op_share": s.top20_op_share,
                   "paper": {"under_1s": cal::SESSION_UNDER_1S, "under_8h": cal::SESSION_UNDER_8H,
                              "active_fraction": cal::ACTIVE_SESSION_FRACTION,
                              "p80_ops": cal::ACTIVE_SESSION_P80_OPS,
                              "top20_share": cal::ACTIVE_SESSION_TOP20_OP_SHARE}});
    emit("f16_sessions", &human, &j);
    j
}

/// Fig. 17 / Table 4: the upload state machine under interruption, resume,
/// cancellation and week-old garbage collection. Self-contained: runs its
/// own mini-backend rather than a whole month.
pub fn exp_f17_uploadjobs() -> Value {
    use std::sync::Arc;
    use u1_core::{ContentHash, NodeKind, SimClock, SimDuration, UserId};
    use u1_server::{Backend, BackendConfig};
    use u1_trace::MemorySink;

    let clock = SimClock::new();
    let backend = Arc::new(Backend::new(
        BackendConfig {
            auth: u1_auth::AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            ..Default::default()
        },
        Arc::new(clock.clone()),
        Arc::new(MemorySink::new()),
    ));
    let token = backend.register_user(UserId::new(1));
    let h = backend.open_session(token).unwrap();
    let v = backend.list_volumes(h.session).unwrap()[0].volume;

    let mut committed = 0u64;
    let mut resumed = 0u64;
    let mut cancelled = 0u64;
    // 30 uploads of 12MB: 10 clean, 10 interrupted-then-resumed, 5
    // cancelled, 5 abandoned (left for the GC).
    let size = 12u64 << 20;
    let mut abandoned = Vec::new();
    for i in 0..30u64 {
        let node = backend
            .make_node(h.session, v, None, NodeKind::File, &format!("f{i}.iso"))
            .unwrap();
        let hash = ContentHash::from_content_id(1000 + i);
        let outcome = backend
            .begin_upload(h.session, v, node.node, hash, size)
            .unwrap();
        let upload = match outcome {
            u1_server::api::UploadOutcome::Started { upload } => upload,
            u1_server::api::UploadOutcome::Deduplicated { .. } => continue,
        };
        backend
            .upload_chunk(h.session, upload, 5 << 20, None)
            .unwrap();
        match i % 6 {
            0 | 1 => {
                // Clean finish.
                backend
                    .upload_chunk(h.session, upload, 5 << 20, None)
                    .unwrap();
                backend
                    .upload_chunk(h.session, upload, size - (10 << 20), None)
                    .unwrap();
                backend.commit_upload(h.session, upload).unwrap();
                committed += 1;
            }
            2 | 3 => {
                // Interrupted: commit refused; resume; commit.
                assert!(backend.commit_upload(h.session, upload).is_err());
                backend
                    .upload_chunk(h.session, upload, 5 << 20, None)
                    .unwrap();
                backend
                    .upload_chunk(h.session, upload, size - (10 << 20), None)
                    .unwrap();
                backend.commit_upload(h.session, upload).unwrap();
                committed += 1;
                resumed += 1;
            }
            4 => {
                backend.cancel_upload(h.session, upload).unwrap();
                cancelled += 1;
            }
            _ => abandoned.push(upload),
        }
    }
    // A week passes: the GC reaps abandoned jobs (Appendix A).
    clock.set(u1_core::SimTime::ZERO + SimDuration::from_days(8));
    let reaped = backend.run_maintenance();
    let stats = backend.blobs.stats();
    let human = format!(
        "committed {committed} (of which resumed after interruption {resumed}), cancelled {cancelled}, \
         abandoned {} → GC reaped {reaped}\n\
         object store: {} multipart initiated, {} completed, {} aborted, {} objects stored",
        abandoned.len(),
        stats.multipart_initiated,
        stats.multipart_completed,
        stats.multipart_aborted,
        stats.objects,
    );
    let j = json!({
        "committed": committed, "resumed": resumed, "cancelled": cancelled,
        "abandoned": abandoned.len(), "gc_reaped": reaped,
        "multipart": {"initiated": stats.multipart_initiated,
                       "completed": stats.multipart_completed,
                       "aborted": stats.multipart_aborted},
    });
    emit("f17_uploadjobs", &human, &j);
    j
}

/// Table 1: the findings checklist, computed from the shared report.
pub fn exp_t1_findings(rep: &EngineReport) -> Value {
    use ana::summary::Finding;
    let ddos = {
        let control: Vec<_> = rep
            .ddos
            .episodes
            .iter()
            .filter(|e| e.signal != "storage")
            .cloned()
            .collect();
        ana::ddos::distinct_attacks(&control)
    };
    let far_mean = {
        let xs: Vec<f64> = rep
            .rpc
            .profiles
            .iter()
            .filter(|p| p.count > 100)
            .map(|p| p.far_from_median)
            .collect();
        ana::stats::mean(&xs)
    };
    let findings = vec![
        Finding { id: "files<1MB", statement: "90% of files are smaller than 1MB", paper_value: 0.90, measured: rep.size_by_ext.under_1mb_fraction, tolerance: 0.08 },
        Finding { id: "update-traffic", statement: "18.5% of upload traffic is caused by file updates", paper_value: 0.1847, measured: rep.updates.update_traffic_fraction, tolerance: 0.6 },
        Finding { id: "dedup", statement: "deduplication ratio of 17%", paper_value: 0.171, measured: rep.dedup.dedup_ratio, tolerance: 0.5 },
        Finding { id: "ddos", statement: "3 DDoS attacks in one month", paper_value: 3.0, measured: ddos.len() as f64, tolerance: 0.35 },
        Finding { id: "top1%", statement: "1% of users generate 65% of the traffic (finite-sample-limited: ideal Pareto at this scale gives ~0.49)", paper_value: 0.656, measured: rep.inequality.top1_share, tolerance: 0.50 },
        Finding { id: "bursty", statement: "user inter-op times are bursty (CV >> 1)", paper_value: 10.0, measured: rep.burst_upload.cv, tolerance: 3.0 },
        Finding { id: "rpc-tails", statement: "7–22% of RPC service times far from median", paper_value: 0.145, measured: far_mean, tolerance: 0.8 },
        Finding { id: "auth-failures", statement: "2.76% of auth requests fail", paper_value: 0.0276, measured: rep.auth.auth_failure_fraction, tolerance: 2.5 },
        Finding { id: "active-sessions", statement: "5.57% of sessions are active", paper_value: 0.0557, measured: rep.sessions.active_fraction, tolerance: 0.6 },
        Finding { id: "sessions<8h", statement: "97% of sessions shorter than 8h", paper_value: 0.97, measured: rep.sessions.under_8h, tolerance: 0.05 },
    ];
    let mut human = String::from("finding                paper     measured   holds?\n");
    for f in &findings {
        human.push_str(&format!(
            "{:<20} {:>9.3} {:>11.3}   {}\n",
            f.id,
            f.paper_value,
            f.measured,
            if f.holds() { "yes" } else { "NO" }
        ));
    }
    let holds = findings.iter().filter(|f| f.holds()).count();
    human.push_str(&format!("{holds}/{} findings hold", findings.len()));
    let j = json!({"findings": findings, "holds": holds, "total": findings.len()});
    emit("t1_findings", &human, &j);
    j
}

/// Ablations: quantify the design choices the paper discusses.
pub fn exp_ablations(scn: &Scenario, rep: &EngineReport) -> Value {
    // (1) Dedup: bytes avoided = logical - stored uploads.
    let ded = &rep.dedup;
    let dedup_saving = ded.total_bytes.saturating_sub(ded.unique_bytes);
    // (2) Delta updates (the client lacked them): if updates shipped only
    // 10% of the file (typical delta), the saved traffic would be:
    let upd = &rep.updates;
    let delta_saving = (upd.update_bytes as f64 * 0.9) as u64;
    // (3) Warm/cold tiering on the blob store (§9 suggestion).
    let policy = u1_blobstore::TierPolicy::default();
    let sweep = u1_blobstore::tier::tier_sweep(&scn.backend.blobs, &policy, scn.horizon);
    let flat = sweep.monthly_cost_flat(&policy);
    let tiered = sweep.monthly_cost(&policy);
    let human = format!(
        "dedup-off ablation: {} extra bytes would hit S3 ({} of upload volume)\n\
         delta-updates ablation: shipping 10%-deltas would save {} ({} of upload traffic)\n\
         tiering ablation: flat bill ${flat:.2}/mo vs tiered ${tiered:.2}/mo ({} saved) — {} objects cold",
        bytes(dedup_saving),
        pct(dedup_saving as f64 / ded.total_bytes.max(1) as f64),
        bytes(delta_saving),
        pct(delta_saving as f64 / upd.upload_bytes.max(1) as f64),
        pct(1.0 - tiered / flat.max(f64::MIN_POSITIVE)),
        sweep.cold_objects,
    );
    let j = json!({
        "dedup_saving_bytes": dedup_saving,
        "delta_saving_bytes": delta_saving,
        "tiering": {"flat_monthly": flat, "tiered_monthly": tiered,
                     "cold_objects": sweep.cold_objects},
    });
    emit("ablations", &human, &j);
    j
}

/// Fault-injection experiment: the same small workload run fault-free and
/// under a ~1% shard-downtime plan (plus light RPC/part/crash/notify
/// faults), reporting error rates and retry-latency inflation from the
/// trace tags. Self-contained like Fig. 17: it runs its own pair of
/// scenarios rather than reusing the shared month.
pub fn exp_faults() -> Value {
    use u1_core::fault::FaultPlan;
    use u1_core::SimDuration;
    use u1_workload::WorkloadConfig;

    let cfg = WorkloadConfig {
        users: 300,
        days: 3,
        seed: 0xFA17,
        attacks: false,
        seed_files: 0.5,
        workers: 0,
    };
    let spec = "shard=0.01,rpc=0.002,part=0.01,crash=0.01,notify=0.02,auth=0.005";
    let plan = FaultPlan::parse(spec, SimDuration::from_days(cfg.days)).expect("valid fault spec");

    let baseline = crate::run_scenario(cfg.clone());
    let faulted = crate::run_scenario_with_faults(cfg, plan);

    let base_f = ana::faults::fault_analysis(&baseline.records);
    let inj_f = ana::faults::fault_analysis(&faulted.records);
    let br = &baseline.report;
    let fr = &faulted.report;

    let class_rows: String = inj_f
        .by_class
        .iter()
        .map(|c| format!("    {:<18} {}\n", c.class, c.count))
        .collect();
    let human = format!(
        "fault plan: {spec}\n\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10.4} {:>10.4}\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10} {:>10}\n\
         {:<28} {:>10.2} {:>10.2}\n\
         error classes (faulted):\n{class_rows}",
        "",
        "baseline",
        "faulted",
        "sessions opened",
        br.sessions_opened,
        fr.sessions_opened,
        "ops executed",
        br.ops_executed,
        fr.ops_executed,
        "storage error rate",
        base_f.storage_error_rate,
        inj_f.storage_error_rate,
        "rpc timeouts",
        br.rpc_timeouts,
        fr.rpc_timeouts,
        "server rpc retries",
        br.rpc_retries,
        fr.rpc_retries,
        "client retries",
        br.client_retries,
        fr.client_retries,
        "uploads interrupted/resumed",
        br.uploads_interrupted,
        fr.uploads_interrupted,
        "auth fallbacks / rescans",
        fr.auth_fallbacks,
        fr.rescans_forced,
        "retry latency inflation",
        base_f.retry_latency_inflation,
        inj_f.retry_latency_inflation,
    );
    let j = json!({
        "plan": spec,
        "baseline": {
            "report": br, "faults": base_f,
        },
        "faulted": {
            "report": fr, "faults": inj_f,
        },
    });
    emit("faults", &human, &j);
    j
}
