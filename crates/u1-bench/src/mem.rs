//! Process-memory instrumentation for the bench bins: kernel-reported peak
//! RSS (`VmHWM`) and an allocator-byte counter, so every committed bench
//! JSON records how much memory the run actually took.
//!
//! The two views are complementary: `VmHWM` is the whole process at its
//! high-water mark (heap + stacks + mapped files, what a container limit
//! sees), while the counting allocator tracks live heap bytes requested
//! through `Rust`'s global allocator — the number the arena/slab work in
//! this repo directly moves.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Reads a `kB` field from `/proc/self/status`, scaled to bytes. Returns
/// `None` off Linux or if the field is missing.
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Peak resident set size of this process so far (`VmHWM`), bytes. The
/// kernel only ever raises this — sample it once, at the end of the
/// measured work.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM")
}

/// Current resident set size (`VmRSS`), bytes.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS")
}

static ALLOC_CURRENT: AtomicU64 = AtomicU64::new(0);
static ALLOC_PEAK: AtomicU64 = AtomicU64::new(0);

fn note_alloc(bytes: u64) {
    let live = ALLOC_CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    ALLOC_PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Live heap bytes currently allocated through [`CountingAlloc`]; 0 unless
/// the binary installed it as its `#[global_allocator]`.
pub fn alloc_current_bytes() -> u64 {
    ALLOC_CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of [`alloc_current_bytes`] over the process lifetime.
pub fn alloc_peak_bytes() -> u64 {
    ALLOC_PEAK.load(Ordering::Relaxed)
}

/// A thin counting wrapper over the system allocator. Install per bench
/// binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: u1_bench::mem::CountingAlloc = u1_bench::mem::CountingAlloc;
/// ```
///
/// Overhead is two relaxed atomic ops per allocation — invisible next to
/// the allocation itself, but not free enough to force on non-bench users
/// of the lib.
pub struct CountingAlloc;

// SAFETY: every method delegates to `System` with unchanged arguments; the
// counter updates don't touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        ALLOC_CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                note_alloc(new - old);
            } else {
                ALLOC_CURRENT.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_status_readers_return_plausible_values() {
        // Only meaningful on Linux; elsewhere both are None and that's fine.
        if std::path::Path::new("/proc/self/status").exists() {
            let peak = peak_rss_bytes().expect("VmHWM present on Linux");
            let cur = current_rss_bytes().expect("VmRSS present on Linux");
            assert!(peak >= cur, "high-water mark below current RSS");
            // A running test binary occupies at least a few hundred kB.
            assert!(cur > 100 * 1024);
        }
    }
}
