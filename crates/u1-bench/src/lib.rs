//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§4–§7) from a freshly simulated trace.
//!
//! Run one experiment:
//!
//! ```text
//! cargo run --release -p u1-bench --bin exp_f7c_gini
//! ```
//!
//! or everything at once (single simulation, all analyses):
//!
//! ```text
//! cargo run --release -p u1-bench --bin exp_all
//! ```
//!
//! Environment overrides: `U1_USERS`, `U1_DAYS`, `U1_SEED`, `U1_ATTACKS=0`,
//! `U1_OUT_DIR` (JSON output directory, default `target/experiments`).
//!
//! Every experiment prints a human-readable table (the paper row/series)
//! and writes a JSON document so EXPERIMENTS.md numbers are regenerable.

pub mod experiments;
pub mod fingerprint;
pub mod mem;
pub mod scenario;

pub use fingerprint::Fingerprint;
pub use scenario::{
    run_scenario, run_scenario_streamed, run_scenario_with_faults, scenario_from_env, Scenario,
    StreamedScenario,
};

use serde_json::Value;
use std::io::Write;
use std::path::PathBuf;
use u1_analytics::engine::{EngineConfig, EngineReport};

/// The engine configuration a scenario implies: its horizon, the backend's
/// API-machine and store-shard counts, and the paper's default extension
/// list / detector parameters.
pub fn engine_config(scn: &Scenario) -> EngineConfig {
    EngineConfig::new(
        scn.horizon,
        scn.backend.config().cluster.machines as usize,
        scn.backend.config().store.shards as usize,
    )
}

/// [`engine_config`] for a stream-to-disk run.
pub fn engine_config_streamed(scn: &StreamedScenario) -> EngineConfig {
    EngineConfig::new(
        scn.horizon,
        scn.backend.config().cluster.machines as usize,
        scn.backend.config().store.shards as usize,
    )
}

/// ONE streaming pass over the scenario's trace producing everything the
/// experiment battery reads (the legacy harness re-walked `scn.records`
/// once per analyzer — ~30 passes for an `exp_all` run).
pub fn analyze(scn: &Scenario) -> EngineReport {
    u1_analytics::engine::run_all(&scn.records, &engine_config(scn))
}

/// Output directory for experiment JSON.
pub fn out_dir() -> PathBuf {
    std::env::var("U1_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"))
}

/// Prints the human-readable block and persists the JSON document.
pub fn emit(id: &str, human: &str, json: &Value) {
    println!("== {id} ==");
    println!("{human}");
    let dir = out_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{id}.json"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(json).unwrap());
            println!("[json: {}]", path.display());
        }
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats bytes humanely.
pub fn bytes(x: u64) -> String {
    u1_core::ByteSize(x).to_string()
}
