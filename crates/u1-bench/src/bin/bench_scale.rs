//! Scale benchmark: the paper-shaped month at growing user populations,
//! proving the memory-bounded path holds its contract as the trace outgrows
//! RAM-friendly sizes.
//!
//! For each tier (default `2500,25000,100000` users; override with
//! `U1_SCALE_TIERS`) the benchmark runs the month twice, each in a FRESH
//! child process so `VmHWM` (kernel peak-RSS, process-lifetime monotone)
//! measures exactly one mode:
//!
//! * **streamed** — [`u1_bench::run_scenario_streamed`] writes stamped
//!   day-sharded logfiles straight to disk through `BufferedSink` →
//!   [`u1_trace::DirSink`]; analytics then folds the month off disk one day
//!   chunk at a time ([`u1_analytics::engine::run_all_offdisk`]), and a
//!   second day-chunk pass computes the canonical trace SHA incrementally.
//!   Peak memory is bounded by the biggest single day, not the month.
//! * **in-memory** — the pre-existing path: the whole trace accumulated in
//!   a `MemorySink`, analytics over the full slice. Memory grows linearly
//!   with the tier; this is the baseline the streamed mode must beat.
//!
//! The parent asserts, per tier: identical canonical SHA and bit-identical
//! analytics [`Fingerprint`] between the two modes; at the 2,500-user tier
//! the SHA must equal the canonical hash pinned in `BENCH_throughput.json`;
//! and across streamed tiers peak RSS must grow SUBLINEARLY in trace size.
//! Results land in `BENCH_scale.json`.
//!
//! Environment: `U1_SCALE_TIERS` (comma-separated user counts),
//! `U1_SCALE_KEEP=1` to keep trace directories. `U1_SCALE_TIER` /
//! `U1_SCALE_VERIFY` are internal (select child mode). A 500k tier works
//! but is gated off by default — it needs ~100 GB of scratch disk.

use serde_json::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Read as _;
use std::path::Path;
use std::time::Instant;
use u1_bench::{mem, Fingerprint};
use u1_core::Sha1;
use u1_trace::LogDirReader;
use u1_workload::WorkloadConfig;

#[global_allocator]
static ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// The canonical 2,500-user month hash, pinned in `BENCH_throughput.json`
/// and cross-checked here so the scale path can never silently fork the
/// trace the rest of the repo is calibrated against.
const CANONICAL_2500_SHA: &str = "276c0d2a4087360ada6eeef55bc5cc592668a01f";

fn tier_cfg(users: u64) -> WorkloadConfig {
    WorkloadConfig {
        users,
        ..WorkloadConfig::paper_scaled()
    }
}

fn analytics_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One protocol line on stdout; everything human goes to stderr.
fn put(key: &str, value: impl std::fmt::Display) {
    println!("scale.{key}={value}");
}

/// SHA-1 over the canonical trace in `(t, origin, seq)` order — the same
/// formula as `bench_throughput` and the driver golden test.
fn sha_of_records(sha: &mut Sha1, records: &[u1_trace::TraceRecord]) {
    let mut line = String::with_capacity(160);
    for r in records {
        line.clear();
        let _ = u1_trace::csvline::write_line(r, &mut line);
        let _ = writeln!(line, "|{}|{}", r.origin, r.seq);
        sha.update(line.as_bytes());
    }
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Streamed child: simulate straight to disk, fold analytics off disk, hash
/// the canonical order in a second bounded pass.
fn run_streamed_tier(users: u64) {
    let cfg = tier_cfg(users);
    let dir = u1_bench::out_dir().join(format!("bench-scale-trace-{users}"));
    let _ = std::fs::remove_dir_all(&dir);
    let threads = analytics_threads();

    let started = Instant::now();
    let scn = u1_bench::run_scenario_streamed(cfg, &dir).expect("streamed scenario");
    let sim_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        scn.report.trace_io_errors, 0,
        "trace I/O errors: {:?}",
        scn.first_trace_io_error
    );
    let trace_bytes = dir_bytes(&dir);
    eprintln!(
        "[scale] users={users} streamed sim {sim_secs:.1}s, {:.1} MB on disk",
        trace_bytes as f64 / 1e6
    );

    let ecfg = u1_bench::engine_config_streamed(&scn);
    let started = Instant::now();
    let (report, stats) =
        u1_analytics::engine::run_all_offdisk(&dir, &ecfg, threads).expect("off-disk analytics");
    let analytics_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[scale] users={users} off-disk analytics {analytics_secs:.1}s \
         ({} days, peak chunk {} records)",
        stats.days, stats.peak_chunk_records
    );

    let started = Instant::now();
    let mut sha = Sha1::new();
    let mut chunks = LogDirReader::new(&dir)
        .day_chunks(threads)
        .expect("day chunks");
    let mut records = 0u64;
    while let Some(chunk) = chunks.next_day() {
        let chunk = chunk.expect("read day chunk");
        records += chunk.records.len() as u64;
        sha_of_records(&mut sha, &chunk.records);
    }
    let sha_secs = started.elapsed().as_secs_f64();
    assert_eq!(records, report.summary.records, "SHA pass lost records");

    if std::env::var("U1_SCALE_KEEP").as_deref() != Ok("1") {
        let _ = std::fs::remove_dir_all(&dir);
    }

    put("mode", "streamed");
    put("users", users);
    put("records", records);
    put("sim_secs", format!("{sim_secs:.6}"));
    put("analytics_secs", format!("{analytics_secs:.6}"));
    put("sha_secs", format!("{sha_secs:.6}"));
    put("trace_bytes", trace_bytes);
    put("days", stats.days);
    put("peak_chunk_records", stats.peak_chunk_records);
    put("fingerprint", Fingerprint::of(&report).to_line());
    put("sha", sha.finalize().to_hex());
    put("peak_rss_bytes", mem::peak_rss_bytes().unwrap_or(0));
    put("alloc_peak_bytes", mem::alloc_peak_bytes());
}

/// In-memory child: the baseline path — whole trace in RAM, analytics over
/// the full slice.
fn run_inmemory_tier(users: u64) {
    let cfg = tier_cfg(users);
    let threads = analytics_threads();

    let started = Instant::now();
    let scn = u1_bench::run_scenario(cfg);
    let sim_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[scale] users={users} in-memory sim {sim_secs:.1}s, {} records",
        scn.records.len()
    );

    let ecfg = u1_bench::engine_config(&scn);
    let timers = u1_core::timing::PhaseTimers::new();
    let started = Instant::now();
    let report = u1_analytics::engine::run_all_chunked_timed(&scn.records, &ecfg, threads, &timers);
    let analytics_secs = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut sha = Sha1::new();
    sha_of_records(&mut sha, &scn.records);
    let sha_secs = started.elapsed().as_secs_f64();

    put("mode", "inmemory");
    put("users", users);
    put("records", scn.records.len());
    put("sim_secs", format!("{sim_secs:.6}"));
    put("analytics_secs", format!("{analytics_secs:.6}"));
    put("sha_secs", format!("{sha_secs:.6}"));
    put("fingerprint", Fingerprint::of(&report).to_line());
    put("sha", sha.finalize().to_hex());
    put("peak_rss_bytes", mem::peak_rss_bytes().unwrap_or(0));
    put("alloc_peak_bytes", mem::alloc_peak_bytes());
}

/// Everything one child reported, parsed back from its `scale.*` lines.
struct ModeResult {
    records: u64,
    sim_secs: f64,
    analytics_secs: f64,
    sha_secs: f64,
    fingerprint: Fingerprint,
    sha: String,
    peak_rss_bytes: u64,
    alloc_peak_bytes: u64,
    trace_bytes: u64,
    days: u64,
    peak_chunk_records: u64,
}

fn spawn_tier(users: u64, verify: bool) -> ModeResult {
    let exe = std::env::current_exe().expect("current exe");
    // `U1_SCALE_STREAM_ULIMIT_KB` puts a hard address-space cap on the
    // STREAMED child only (via `ulimit -v` in a shell wrapper) — the
    // in-memory baseline legitimately needs linear memory, so capping it
    // too would OOM the comparison rather than prove the bounded path.
    let ulimit_kb = std::env::var("U1_SCALE_STREAM_ULIMIT_KB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|_| !verify);
    let mut cmd = match ulimit_kb {
        Some(kb) => {
            let mut c = std::process::Command::new("/bin/sh");
            c.arg("-c")
                .arg(format!("ulimit -v {kb} && exec \"$0\""))
                .arg(&exe);
            c
        }
        None => std::process::Command::new(&exe),
    };
    cmd.env_remove("U1_SCALE_TIER")
        .env_remove("U1_SCALE_VERIFY");
    if verify {
        cmd.env("U1_SCALE_VERIFY", users.to_string());
    } else {
        cmd.env("U1_SCALE_TIER", users.to_string());
    }
    cmd.stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    let mut child = cmd.spawn().expect("spawn scale child");
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .expect("child stdout")
        .read_to_string(&mut stdout)
        .expect("read child stdout");
    let status = child.wait().expect("wait for scale child");
    assert!(
        status.success(),
        "scale child (users={users}, verify={verify}) failed: {status}"
    );

    let kv: BTreeMap<&str, &str> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("scale."))
        .filter_map(|l| l.split_once('='))
        .collect();
    let get = |k: &str| {
        *kv.get(k)
            .unwrap_or_else(|| panic!("child omitted scale.{k}"))
    };
    let num = |k: &str| {
        get(k)
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("bad scale.{k}: {e}"))
    };
    let secs = |k: &str| {
        get(k)
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad scale.{k}: {e}"))
    };
    ModeResult {
        records: num("records"),
        sim_secs: secs("sim_secs"),
        analytics_secs: secs("analytics_secs"),
        sha_secs: secs("sha_secs"),
        fingerprint: Fingerprint::from_line(get("fingerprint")).expect("bad scale.fingerprint"),
        sha: get("sha").to_string(),
        peak_rss_bytes: num("peak_rss_bytes"),
        alloc_peak_bytes: num("alloc_peak_bytes"),
        trace_bytes: kv
            .get("trace_bytes")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        days: kv.get("days").and_then(|v| v.parse().ok()).unwrap_or(0),
        peak_chunk_records: kv
            .get("peak_chunk_records")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    }
}

struct TierResult {
    users: u64,
    streamed: ModeResult,
    inmemory: ModeResult,
}

fn run_parent() {
    let host_cpus = analytics_threads();
    let tiers: Vec<u64> = std::env::var("U1_SCALE_TIERS")
        .unwrap_or_else(|_| "2500,25000,100000".into())
        .split(',')
        .map(|t| t.trim().parse().expect("U1_SCALE_TIERS must be integers"))
        .collect();

    let mut results: Vec<TierResult> = Vec::new();
    for &users in &tiers {
        eprintln!("[scale] === tier: {users} users ===");
        let streamed = spawn_tier(users, false);
        let inmemory = spawn_tier(users, true);
        assert_eq!(
            streamed.sha, inmemory.sha,
            "canonical trace SHA diverged between modes at {users} users"
        );
        assert_eq!(
            streamed.fingerprint, inmemory.fingerprint,
            "analytics fingerprint diverged between modes at {users} users"
        );
        assert_eq!(streamed.records, inmemory.records);
        if users == 2_500 {
            assert_eq!(
                streamed.sha, CANONICAL_2500_SHA,
                "2,500-user canonical trace hash changed"
            );
        }
        eprintln!(
            "[scale] users={users}: sha + fingerprint identical across modes; \
             peak rss streamed {} vs in-memory {}",
            u1_core::ByteSize(streamed.peak_rss_bytes),
            u1_core::ByteSize(inmemory.peak_rss_bytes),
        );
        results.push(TierResult {
            users,
            streamed,
            inmemory,
        });
    }

    // The scale claim: streamed peak RSS grows SUBLINEARLY in trace size.
    // Compare the smallest and largest tiers actually run.
    let mut rss_sublinear = true;
    if results.len() >= 2 {
        let small = &results[0];
        let big = &results[results.len() - 1];
        let rss_growth =
            big.streamed.peak_rss_bytes as f64 / small.streamed.peak_rss_bytes.max(1) as f64;
        let record_growth = big.streamed.records as f64 / small.streamed.records.max(1) as f64;
        rss_sublinear = rss_growth < record_growth;
        eprintln!(
            "[scale] streamed rss growth {rss_growth:.2}x over {record_growth:.2}x records \
             ({} -> {} users): {}",
            small.users,
            big.users,
            if rss_sublinear {
                "sublinear"
            } else {
                "NOT sublinear"
            }
        );
        assert!(
            rss_sublinear,
            "streamed peak RSS grew {rss_growth:.2}x while the trace grew only \
             {record_growth:.2}x — the memory-bounded path is not bounded"
        );
    }

    let mut human = String::new();
    human.push_str(&format!(
        "paper-shaped month at {} tier(s), host cpus {host_cpus}\n",
        results.len()
    ));
    human.push_str(
        "users    records      mode       sim(s)  analytics(s)  peak rss    rec/s(sim)\n",
    );
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for t in &results {
        for (mode, r) in [("streamed", &t.streamed), ("in-memory", &t.inmemory)] {
            human.push_str(&format!(
                "{:>7}  {:>10}  {:<9}  {:>7.1}  {:>11.1}  {:>9}  {:>10.0}\n",
                t.users,
                r.records,
                mode,
                r.sim_secs,
                r.analytics_secs,
                u1_core::ByteSize(r.peak_rss_bytes).to_string(),
                r.records as f64 / r.sim_secs,
            ));
        }
        let s = &t.streamed;
        rows.push(json!({
            "users": t.users,
            "records": s.records,
            "sha": s.sha,
            "modes_identical": true,
            "streamed": {
                "sim_secs": s.sim_secs,
                "analytics_secs": s.analytics_secs,
                "sha_secs": s.sha_secs,
                "sim_records_per_sec": s.records as f64 / s.sim_secs,
                "analytics_records_per_sec": s.records as f64 / s.analytics_secs,
                "peak_rss_bytes": s.peak_rss_bytes,
                "alloc_peak_bytes": s.alloc_peak_bytes,
                "trace_bytes": s.trace_bytes,
                "days": s.days,
                "peak_chunk_records": s.peak_chunk_records,
            },
            "inmemory": {
                "sim_secs": t.inmemory.sim_secs,
                "analytics_secs": t.inmemory.analytics_secs,
                "sha_secs": t.inmemory.sha_secs,
                "sim_records_per_sec": t.inmemory.records as f64 / t.inmemory.sim_secs,
                "analytics_records_per_sec": t.inmemory.records as f64
                    / t.inmemory.analytics_secs,
                "peak_rss_bytes": t.inmemory.peak_rss_bytes,
                "alloc_peak_bytes": t.inmemory.alloc_peak_bytes,
            },
        }));
    }
    if let Some(last) = results.last() {
        human.push_str(&format!(
            "streamed peak chunk: {} records ({} days); rss sublinear: {rss_sublinear}\n",
            last.streamed.peak_chunk_records, last.streamed.days
        ));
    }

    u1_bench::emit(
        "BENCH_scale",
        &human,
        &json!({
            "host_cpus": host_cpus,
            "canonical_2500_sha": CANONICAL_2500_SHA,
            "canonical_2500_verified": tiers.contains(&2_500),
            "rss_sublinear": rss_sublinear,
            "tiers": rows,
        }),
    );
}

fn main() {
    if let Ok(v) = std::env::var("U1_SCALE_TIER") {
        run_streamed_tier(v.parse().expect("U1_SCALE_TIER must be an integer"));
    } else if let Ok(v) = std::env::var("U1_SCALE_VERIFY") {
        run_inmemory_tier(v.parse().expect("U1_SCALE_VERIFY must be an integer"));
    } else {
        run_parent();
    }
}
