//! Upload state machine experiment (Fig. 17 / Table 4); self-contained.
fn main() {
    u1_bench::experiments::exp_f17_uploadjobs();
}
