//! Runs every experiment from a single simulated month.
use u1_bench::experiments as exp;

fn main() {
    let scenario = u1_bench::scenario_from_env();
    exp::exp_t3_summary(&scenario);
    exp::exp_f2a_traffic_timeseries(&scenario);
    exp::exp_f2b_size_categories(&scenario);
    exp::exp_f2c_rw_ratio(&scenario);
    exp::exp_f3a_after_write(&scenario);
    exp::exp_f3b_after_read(&scenario);
    exp::exp_f3c_lifetimes(&scenario);
    exp::exp_f4a_dedup(&scenario);
    exp::exp_f4b_sizes_by_ext(&scenario);
    exp::exp_f4c_categories(&scenario);
    exp::exp_f5_ddos(&scenario);
    exp::exp_f6_online_active(&scenario);
    exp::exp_f7a_op_mix(&scenario);
    exp::exp_f7b_user_traffic(&scenario);
    exp::exp_f7c_gini(&scenario);
    exp::exp_f8_transitions(&scenario);
    exp::exp_f9_burstiness(&scenario);
    exp::exp_f10_volume_contents(&scenario);
    exp::exp_f11_volume_types(&scenario);
    exp::exp_f12_rpc_latency(&scenario);
    exp::exp_f13_rpc_scatter(&scenario);
    exp::exp_f14_load_balance(&scenario);
    exp::exp_f15_auth_activity(&scenario);
    exp::exp_f16_sessions(&scenario);
    exp::exp_f17_uploadjobs();
    exp::exp_t1_findings(&scenario);
    exp::exp_ablations(&scenario);
}
