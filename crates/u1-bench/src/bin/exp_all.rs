//! Runs every experiment from a single simulated month and ONE streaming
//! analytics pass over its trace.
use u1_bench::experiments as exp;

fn main() {
    let scenario = u1_bench::scenario_from_env();
    let report = u1_bench::analyze(&scenario);
    exp::exp_t3_summary(&report);
    exp::exp_f2a_traffic_timeseries(&report);
    exp::exp_f2b_size_categories(&report);
    exp::exp_f2c_rw_ratio(&report);
    exp::exp_f3a_after_write(&report);
    exp::exp_f3b_after_read(&report);
    exp::exp_f3c_lifetimes(&report);
    exp::exp_f4a_dedup(&scenario, &report);
    exp::exp_f4b_sizes_by_ext(&report);
    exp::exp_f4c_categories(&report);
    exp::exp_f5_ddos(&scenario, &report);
    exp::exp_f6_online_active(&report);
    exp::exp_f7a_op_mix(&report);
    exp::exp_f7b_user_traffic(&report);
    exp::exp_f7c_gini(&report);
    exp::exp_f8_transitions(&report);
    exp::exp_f9_burstiness(&report);
    exp::exp_f10_volume_contents(&scenario);
    exp::exp_f11_volume_types(&scenario);
    exp::exp_f12_rpc_latency(&report);
    exp::exp_f13_rpc_scatter(&report);
    exp::exp_f14_load_balance(&report);
    exp::exp_f15_auth_activity(&report);
    exp::exp_f16_sessions(&report);
    exp::exp_f17_uploadjobs();
    exp::exp_t1_findings(&report);
    exp::exp_ablations(&scenario, &report);
    exp::exp_faults();
}
