//! Wire-tier benchmark: the closed-loop client fleet over real loopback
//! sockets against the epoll reactor.
//!
//! Two sections, both recorded in `BENCH_wire.json`:
//!
//! 1. **Parity** — the golden fleet scenario is run twice in lockstep
//!    virtual time, once through [`DirectTransport`] and once through
//!    [`TcpTransport`] against the reactor. The fleet reports must be
//!    equal and the canonical back-end traces byte-identical; any
//!    divergence panics, which is the CI gate for "the socket path adds
//!    transport, not behavior".
//! 2. **Load** — a concurrent fleet (one thread per client, think times
//!    compressed) drives the reactor over loopback while we record
//!    per-exchange service times (p50/p99/p999), per-op breakdowns,
//!    per-shard request balance, the reactor's admission counters, and
//!    its phase timers.
//!
//! Environment overrides: `U1_FLEET_USERS`, `U1_FLEET_SESSIONS`,
//! `U1_SEED`, `U1_FLEET_TIMESCALE` (think-time compression for the load
//! section).
//!
//! Latency numbers from a loopback socket on a shared CI box are shaped
//! by the host, so the document carries the usual `host_cpus` /
//! `scaling_valid` stamp; the parity verdict is host-independent.

use serde_json::json;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use u1_auth::AuthConfig;
use u1_client::{DirectTransport, TcpTransport};
use u1_core::{RealClock, Sha1, SimClock, UserId};
use u1_server::{Backend, BackendConfig, TcpServer};
use u1_trace::{csvline, MemorySink, TraceRecord};
use u1_workload::{fleet, FleetConfig, FleetReport};

/// Same canonicalization as `bench_throughput`: every line plus its
/// `(origin, seq)` stamp, in `take_sorted()` order.
fn canonical_trace_hash(records: &[TraceRecord]) -> String {
    let mut sha = Sha1::new();
    let mut line = String::with_capacity(160);
    for r in records {
        line.clear();
        let _ = csvline::write_line(r, &mut line);
        let _ = writeln!(line, "|{}|{}", r.origin, r.seq);
        sha.update(line.as_bytes());
    }
    sha.finalize().to_hex()
}

fn fleet_backend_cfg() -> BackendConfig {
    BackendConfig {
        auth: AuthConfig {
            transient_failure_rate: 0.0,
            token_ttl: None,
        },
        ..Default::default()
    }
}

fn register(backend: &Backend, users: u32) -> Vec<u1_auth::Token> {
    (0..users)
        .map(|i| backend.register_user(UserId::new(u64::from(i) + 1)))
        .collect()
}

fn run_direct(cfg: &FleetConfig) -> (FleetReport, String, u64) {
    let clock = Arc::new(SimClock::new());
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        fleet_backend_cfg(),
        clock.clone(),
        sink.clone(),
    ));
    let tokens = register(&backend, cfg.users);
    let report = fleet::run_lockstep(cfg, &clock, &tokens, |_| {
        DirectTransport::new(Arc::clone(&backend))
    });
    let records = sink.take_sorted();
    let n = records.len() as u64;
    (report, canonical_trace_hash(&records), n)
}

fn run_wire(cfg: &FleetConfig) -> (FleetReport, String, u64) {
    let clock = Arc::new(SimClock::new());
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        fleet_backend_cfg(),
        clock.clone(),
        sink.clone(),
    ));
    let tokens = register(&backend, cfg.users);
    let server = TcpServer::start(Arc::clone(&backend), "127.0.0.1:0").expect("bind reactor");
    let addr = server.local_addr();
    let report = fleet::run_lockstep(cfg, &clock, &tokens, |_| {
        TcpTransport::connect(addr)
            .expect("loopback connect")
            .with_sparse_content()
    });
    server.shutdown();
    let records = sink.take_sorted();
    let n = records.len() as u64;
    (report, canonical_trace_hash(&records), n)
}

/// Nearest-rank percentile over an ascending-sorted sample set.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn env_u32(key: &str, default: u32) -> u32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scaling_valid = host_cpus >= 2;

    let cfg = FleetConfig {
        users: env_u32("U1_FLEET_USERS", 32),
        sessions_per_user: env_u32("U1_FLEET_SESSIONS", 2),
        seed: std::env::var("U1_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(11),
    };
    let time_scale: u64 = std::env::var("U1_FLEET_TIMESCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);

    // --- Section 1: parity. The wire tier must be behavior-invisible. ---
    println!(
        "[wire] parity: lockstep fleet, direct vs tcp ({} users)",
        cfg.users
    );
    let (direct_report, direct_hash, direct_records) = run_direct(&cfg);
    let (wire_report, wire_hash, wire_records) = run_wire(&cfg);
    assert_eq!(
        direct_report, wire_report,
        "fleet reports diverged between in-process and wire transports"
    );
    assert_eq!(
        direct_hash, wire_hash,
        "canonical traces diverged between in-process and wire transports"
    );
    assert_eq!(direct_records, wire_records);
    println!(
        "[wire] parity OK: {} trace records, sha1 {}",
        direct_records, direct_hash
    );

    // --- Section 2: concurrent load over loopback. ---
    println!(
        "[wire] load: {} clients x {} sessions, timescale {}x",
        cfg.users, cfg.sessions_per_user, time_scale
    );
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        fleet_backend_cfg(),
        Arc::new(RealClock::new()),
        sink.clone(),
    ));
    let shards = backend.config().store.shards;
    let tokens = register(&backend, cfg.users);
    let server = TcpServer::start(Arc::clone(&backend), "127.0.0.1:0").expect("bind reactor");
    let addr = server.local_addr();
    let started = Instant::now();
    let (load_report, samples) = fleet::run_concurrent(&cfg, &tokens, time_scale, |_| {
        TcpTransport::connect(addr)
            .expect("loopback connect")
            .with_sparse_content()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    // Per-shard request balance: every timed exchange attributed to its
    // client's home shard.
    let mut shard_ops = vec![0u64; shards as usize];
    for s in &samples {
        let shard = backend
            .store
            .shard_of(UserId::new(u64::from(s.client) + 1))
            .raw() as usize
            % shard_ops.len();
        shard_ops[shard] += 1;
    }
    let busiest = shard_ops.iter().copied().max().unwrap_or(0);
    let quietest_nonzero = shard_ops
        .iter()
        .copied()
        .filter(|&c| c > 0)
        .min()
        .unwrap_or(0);

    // Service-time distribution, overall and per op.
    let mut all: Vec<u64> = samples.iter().map(|s| s.nanos).collect();
    all.sort_unstable();
    let mut per_op: std::collections::BTreeMap<&'static str, Vec<u64>> =
        std::collections::BTreeMap::new();
    for s in &samples {
        per_op.entry(s.op.label()).or_default().push(s.nanos);
    }
    let per_op_rows: Vec<serde_json::Value> = per_op
        .into_iter()
        .map(|(op, mut v)| {
            v.sort_unstable();
            json!({
                "op": op,
                "count": v.len() as u64,
                "p50_nanos": percentile(&v, 50.0),
                "p99_nanos": percentile(&v, 99.0),
            })
        })
        .collect();

    let stats = server.stats();
    let phases = server.phase_nanos();
    server.shutdown();

    let ops_per_sec = if wall_secs > 0.0 {
        load_report.ops_executed as f64 / wall_secs
    } else {
        0.0
    };
    let mut human = String::new();
    let _ = writeln!(
        human,
        "parity          : OK ({direct_records} records, sha1 {direct_hash})"
    );
    let _ = writeln!(
        human,
        "load            : {} ops in {:.2}s over loopback ({:.0} ops/s)",
        load_report.ops_executed, wall_secs, ops_per_sec
    );
    let _ = writeln!(
        human,
        "service time    : p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms ({} samples)",
        percentile(&all, 50.0) as f64 / 1e6,
        percentile(&all, 99.0) as f64 / 1e6,
        percentile(&all, 99.9) as f64 / 1e6,
        all.len()
    );
    let _ = writeln!(
        human,
        "shard balance   : busiest {} / quietest {} requests across {} shards",
        busiest, quietest_nonzero, shards
    );
    let _ = writeln!(
        human,
        "admission       : {} accepted, {} byes, {} eof reaps, {} evicted",
        stats.accepted, stats.graceful_byes, stats.eof_reaps, stats.evicted_slow
    );

    u1_bench::emit(
        "BENCH_wire",
        &human,
        &json!({
            "config": {
                "users": cfg.users,
                "sessions_per_user": cfg.sessions_per_user,
                "seed": cfg.seed,
                "time_scale": time_scale,
            },
            "host_cpus": host_cpus,
            "scaling_valid": scaling_valid,
            "parity": {
                "reports_equal": true,
                "traces_equal": true,
                "trace_records": direct_records,
                "trace_hash": direct_hash,
                "report": direct_report,
            },
            "load": {
                "wall_secs": wall_secs,
                "ops": load_report.ops_executed,
                "ops_per_sec": ops_per_sec,
                "op_errors": load_report.op_errors,
                "sessions": load_report.sessions,
                "uploads": load_report.uploads,
                "downloads": load_report.downloads,
                "bytes_uploaded": load_report.bytes_uploaded,
                "service_time_nanos": {
                    "samples": all.len() as u64,
                    "p50": percentile(&all, 50.0),
                    "p99": percentile(&all, 99.0),
                    "p999": percentile(&all, 99.9),
                    "max": all.last().copied().unwrap_or(0),
                },
                "per_op": per_op_rows,
                "shard_ops": shard_ops,
                "shard_balance": {
                    "shards": shards,
                    "busiest_ops": busiest,
                    "quietest_nonzero_ops": quietest_nonzero,
                },
                "admission": {
                    "accepted": stats.accepted,
                    "refused_capacity": stats.refused_capacity,
                    "refused_throttle": stats.refused_throttle,
                    "evicted_slow": stats.evicted_slow,
                    "graceful_byes": stats.graceful_byes,
                    "eof_reaps": stats.eof_reaps,
                    "protocol_errors": stats.protocol_errors,
                    "pushes_forwarded": stats.pushes_forwarded,
                },
                "reactor_phase_nanos": phases,
            },
        }),
    );
}
