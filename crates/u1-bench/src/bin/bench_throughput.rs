//! Throughput benchmark: the same `paper_scaled()` month replayed at
//! 1/2/4/8 worker threads.
//!
//! Writes `BENCH_throughput.json` (ops/sec, wall-clock, speedup vs the
//! single-worker run) so future changes have a performance trajectory to
//! beat, and cross-checks two determinism contracts of the parallel driver:
//!
//! * every worker count produces the identical `DriverReport` **and** the
//!   identical canonical trace (SHA-1 over every line in `(t, origin, seq)`
//!   order), and
//! * buffering does not change the trace: a run with the batched
//!   [`BufferedSink`] path is byte-identical to a per-record run (batch
//!   size 1).
//!
//! A final run with the auth token cache enabled measures
//! `token_cache_hit_rate`; its trace legitimately differs (cache hits skip
//! the `GetUserIdFromToken` rpc and auth records), so it is excluded from
//! the hash cross-check.
//!
//! Environment overrides: `U1_USERS`, `U1_DAYS`, `U1_SEED`, `U1_ATTACKS=0`
//! (same as the experiment harness), plus `U1_BENCH_WORKERS` as a
//! comma-separated list of worker counts (default `1,2,4,8`).
//!
//! `--faults <spec>` (or `U1_FAULTS=<spec>`) runs the whole benchmark under
//! an injected fault plan — `light`, `none`, or a `key=value` list such as
//! `shard=0.01,rpc=0.002,part=0.01,crash=0.005` (see
//! [`u1_core::fault::FaultPlan::parse`]). The determinism cross-checks
//! still apply: a seeded fault plan must produce the identical report and
//! trace at every worker count.

use serde_json::json;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use u1_core::fault::FaultPlan;
use u1_core::{Sha1, SimClock, SimDuration};
use u1_server::{Backend, BackendConfig};
use u1_trace::{csvline, BufferedSink, MemorySink, TraceRecord, TraceSink};
use u1_workload::{Driver, DriverReport, WorkloadConfig};

#[global_allocator]
static ALLOC: u1_bench::mem::CountingAlloc = u1_bench::mem::CountingAlloc;

struct Run {
    label: &'static str,
    workers: usize,
    wall_secs: f64,
    ops: u64,
    records: u64,
    trace_hash: String,
    report: DriverReport,
}

/// SHA-1 over the canonical trace: every record serialized with
/// [`csvline::write_line`] plus its `(origin, seq)` stamp, in
/// `take_sorted` order. Same formula as the golden test in u1-workload.
fn canonical_trace_hash(records: &[TraceRecord]) -> String {
    let mut sha = Sha1::new();
    let mut line = String::with_capacity(160);
    for r in records {
        line.clear();
        let _ = csvline::write_line(r, &mut line);
        let _ = writeln!(line, "|{}|{}", r.origin, r.seq);
        sha.update(line.as_bytes());
    }
    sha.finalize().to_hex()
}

fn run_once(
    mut cfg: WorkloadConfig,
    fault: &FaultPlan,
    label: &'static str,
    workers: usize,
    buffered: bool,
    auth_cache: bool,
) -> Run {
    cfg.workers = workers;
    let clock = SimClock::new();
    let inner = Arc::new(MemorySink::new());
    let sink: Arc<dyn TraceSink> = if buffered {
        Arc::new(BufferedSink::new(Arc::clone(&inner)))
    } else {
        Arc::clone(&inner) as Arc<dyn TraceSink>
    };
    let backend_cfg = BackendConfig {
        seed: cfg.seed ^ 0xBACC,
        auth_cache_ttl: auth_cache.then(|| SimDuration::from_hours(8)),
        fault: fault.clone(),
        ..BackendConfig::default()
    };
    let backend = Arc::new(Backend::new(backend_cfg, Arc::new(clock.clone()), sink));
    let driver = Driver::new(cfg, Arc::clone(&backend), clock);
    let started = Instant::now();
    let report = driver.run();
    let wall_secs = started.elapsed().as_secs_f64();
    let records = inner.take_sorted();
    Run {
        label,
        workers,
        wall_secs,
        ops: report.ops_executed + report.attack_ops,
        records: records.len() as u64,
        trace_hash: canonical_trace_hash(&records),
        report,
    }
}

fn main() {
    // The 1-CPU-bench trap: speedup numbers from a single-core container are
    // meaningless (every worker count degenerates to ~1.0x). Record the host
    // parallelism FIRST and stamp every emitted row set with its validity.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scaling_valid = host_cpus >= 2;
    if !scaling_valid {
        eprintln!(
            "[throughput] WARNING: host has {host_cpus} cpu(s) — speedup \
             columns are NOT meaningful (scaling_valid=false); run on a \
             multi-core host to measure scaling"
        );
    }
    let mut cfg = WorkloadConfig::paper_scaled();
    if let Ok(v) = std::env::var("U1_USERS") {
        cfg.users = v.parse().expect("U1_USERS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_DAYS") {
        cfg.days = v.parse().expect("U1_DAYS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_SEED") {
        cfg.seed = v.parse().expect("U1_SEED must be an integer");
    }
    if std::env::var("U1_ATTACKS").as_deref() == Ok("0") {
        cfg.attacks = false;
    }
    // `--faults <spec>` / `U1_FAULTS=<spec>`: run under an injected fault
    // plan (default: faults off).
    let args: Vec<String> = std::env::args().collect();
    let fault_spec = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("U1_FAULTS").ok());
    let fault = match &fault_spec {
        Some(spec) => FaultPlan::parse(spec, SimDuration::from_days(cfg.days))
            .unwrap_or_else(|e| panic!("bad --faults spec {spec:?}: {e}")),
        None => FaultPlan::none(),
    };
    if let Some(spec) = &fault_spec {
        eprintln!("[throughput] fault plan: {spec}");
    }
    let worker_counts: Vec<usize> = std::env::var("U1_BENCH_WORKERS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .map(|w| w.trim().parse().expect("U1_BENCH_WORKERS must be integers"))
        .collect();

    let mut runs: Vec<Run> = Vec::new();
    for &w in &worker_counts {
        runs.push(run_once(cfg.clone(), &fault, "buffered", w, true, false));
        let run = runs.last().unwrap();
        eprintln!(
            "[throughput] workers={} buffered wall={:.2}s ops/s={:.0}",
            run.workers,
            run.wall_secs,
            run.ops as f64 / run.wall_secs
        );
    }
    // Batch-size cross-check: per-record emission (batch size 1) against the
    // buffered path at the same worker count.
    let unbuffered = run_once(
        cfg.clone(),
        &fault,
        "per-record",
        worker_counts[0],
        false,
        false,
    );
    eprintln!(
        "[throughput] workers={} per-record wall={:.2}s ops/s={:.0}",
        unbuffered.workers,
        unbuffered.wall_secs,
        unbuffered.ops as f64 / unbuffered.wall_secs
    );

    // Determinism cross-check: neither worker count nor batching may change
    // what happened or what was traced.
    let deterministic = runs.windows(2).all(|w| {
        w[0].report == w[1].report
            && w[0].records == w[1].records
            && w[0].trace_hash == w[1].trace_hash
    });
    assert!(
        deterministic,
        "DriverReport or canonical trace differs across worker counts — determinism violated"
    );
    let batch_invariant = unbuffered.report == runs[0].report
        && unbuffered.records == runs[0].records
        && unbuffered.trace_hash == runs[0].trace_hash;
    assert!(
        batch_invariant,
        "buffered trace differs from per-record trace — batching changed the output"
    );

    // Auth-cache run: same workload with the memcached-analogue token cache
    // enabled, to record the hit rate and the fast-path throughput.
    let cached = run_once(
        cfg.clone(),
        &fault,
        "auth-cached",
        worker_counts[0],
        true,
        true,
    );
    let cache_lookups = cached.report.token_cache_hits + cached.report.token_cache_misses;
    let token_cache_hit_rate = if cache_lookups == 0 {
        0.0
    } else {
        cached.report.token_cache_hits as f64 / cache_lookups as f64
    };
    eprintln!(
        "[throughput] workers={} auth-cached wall={:.2}s ops/s={:.0} hit_rate={:.3}",
        cached.workers,
        cached.wall_secs,
        cached.ops as f64 / cached.wall_secs,
        token_cache_hit_rate
    );

    let base = &runs[0];
    let mut human = String::new();
    human.push_str(&format!(
        "{} users x {} days (seed {:#x}), {} trace records, hash {}\n",
        cfg.users, cfg.days, cfg.seed, base.records, base.trace_hash
    ));
    human.push_str(&format!(
        "host cpus: {host_cpus} (scaling columns {})\n",
        if scaling_valid {
            "valid"
        } else {
            "NOT VALID — single-core host"
        }
    ));
    human.push_str("workers  mode        wall(s)   ops/s     speedup   park%  flush%\n");
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for r in runs.iter().chain([&unbuffered, &cached]) {
        let ops_per_sec = r.ops as f64 / r.wall_secs;
        let speedup = base.wall_secs / r.wall_secs;
        // Phase accounting: thread-seconds per phase, measured inside the
        // driver (see DESIGN.md §13). Park% and flush% are shares of worker
        // thread time — the two overheads this benchmark exists to shrink.
        let t = &*r.report.timing;
        let worker_total = (t.worker_run_nanos + t.barrier_park_nanos + t.day_flush_nanos).max(1);
        human.push_str(&format!(
            "{:>7}  {:<10}  {:>7.2}  {:>8.0}  {:>6.2}x  {:>5.1}  {:>6.1}\n",
            r.workers,
            r.label,
            r.wall_secs,
            ops_per_sec,
            speedup,
            100.0 * t.barrier_park_nanos as f64 / worker_total as f64,
            100.0 * t.day_flush_nanos as f64 / worker_total as f64,
        ));
        rows.push(json!({
            "workers": r.workers,
            "mode": r.label,
            "wall_secs": r.wall_secs,
            "ops": r.ops,
            "ops_per_sec": ops_per_sec,
            "speedup_vs_serial": speedup,
            "phase_nanos": *t,
        }));
    }
    human.push_str(&format!(
        "token cache hit rate: {token_cache_hit_rate:.3}\n"
    ));
    human.push_str(&format!(
        "peak rss: {}, allocator peak: {}\n",
        u1_core::ByteSize(u1_bench::mem::peak_rss_bytes().unwrap_or(0)),
        u1_core::ByteSize(u1_bench::mem::alloc_peak_bytes()),
    ));
    if !fault.is_none() {
        let r = &base.report;
        human.push_str(&format!(
            "faults: rpc_timeouts {} retries {} client_retries {} \
             uploads interrupted/resumed/abandoned {}/{}/{} rescans {}\n",
            r.rpc_timeouts,
            r.rpc_retries,
            r.client_retries,
            r.uploads_interrupted,
            r.uploads_resumed,
            r.uploads_abandoned,
            r.rescans_forced,
        ));
    }
    u1_bench::emit(
        "BENCH_throughput",
        &human,
        &json!({
            "config": {
                "users": cfg.users,
                "days": cfg.days,
                "seed": cfg.seed,
                "attacks": cfg.attacks,
                "faults": fault_spec,
            },
            "host_cpus": host_cpus,
            "scaling_valid": scaling_valid,
            "peak_rss_bytes": u1_bench::mem::peak_rss_bytes().unwrap_or(0),
            "alloc_peak_bytes": u1_bench::mem::alloc_peak_bytes(),
            "trace_records": base.records,
            "trace_hash": base.trace_hash,
            "deterministic_across_worker_counts": deterministic,
            "batch_invariant": batch_invariant,
            "token_cache_hit_rate": token_cache_hit_rate,
            "runs": rows,
        }),
    );
}
