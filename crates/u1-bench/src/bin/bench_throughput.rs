//! Throughput benchmark: the same `paper_scaled()` month replayed at
//! 1/2/4/8 worker threads.
//!
//! Writes `BENCH_throughput.json` (ops/sec, wall-clock, speedup vs the
//! single-worker run) so future changes have a performance trajectory to
//! beat, and cross-checks that every worker count produced the identical
//! `DriverReport` — the determinism contract of the parallel driver.
//!
//! Environment overrides: `U1_USERS`, `U1_DAYS`, `U1_SEED`, `U1_ATTACKS=0`
//! (same as the experiment harness), plus `U1_BENCH_WORKERS` as a
//! comma-separated list of worker counts (default `1,2,4,8`).

use serde_json::json;
use std::sync::Arc;
use std::time::Instant;
use u1_core::SimClock;
use u1_server::{Backend, BackendConfig};
use u1_trace::MemorySink;
use u1_workload::{Driver, DriverReport, WorkloadConfig};

struct Run {
    workers: usize,
    wall_secs: f64,
    ops: u64,
    records: u64,
    report: DriverReport,
}

fn run_once(mut cfg: WorkloadConfig, workers: usize) -> Run {
    cfg.workers = workers;
    let clock = SimClock::new();
    let sink = Arc::new(MemorySink::new());
    let backend_cfg = BackendConfig {
        seed: cfg.seed ^ 0xBACC,
        ..BackendConfig::default()
    };
    let backend = Arc::new(Backend::new(
        backend_cfg,
        Arc::new(clock.clone()),
        sink.clone(),
    ));
    let driver = Driver::new(cfg, Arc::clone(&backend), clock);
    let started = Instant::now();
    let report = driver.run();
    let wall_secs = started.elapsed().as_secs_f64();
    Run {
        workers,
        wall_secs,
        ops: report.ops_executed + report.attack_ops,
        records: sink.len() as u64,
        report,
    }
}

fn main() {
    let mut cfg = WorkloadConfig::paper_scaled();
    if let Ok(v) = std::env::var("U1_USERS") {
        cfg.users = v.parse().expect("U1_USERS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_DAYS") {
        cfg.days = v.parse().expect("U1_DAYS must be an integer");
    }
    if let Ok(v) = std::env::var("U1_SEED") {
        cfg.seed = v.parse().expect("U1_SEED must be an integer");
    }
    if std::env::var("U1_ATTACKS").as_deref() == Ok("0") {
        cfg.attacks = false;
    }
    let worker_counts: Vec<usize> = std::env::var("U1_BENCH_WORKERS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .map(|w| w.trim().parse().expect("U1_BENCH_WORKERS must be integers"))
        .collect();

    let runs: Vec<Run> = worker_counts
        .iter()
        .map(|&w| {
            let run = run_once(cfg.clone(), w);
            eprintln!(
                "[throughput] workers={} wall={:.2}s ops/s={:.0}",
                run.workers,
                run.wall_secs,
                run.ops as f64 / run.wall_secs
            );
            run
        })
        .collect();

    // Determinism cross-check: worker count must not change what happened.
    let deterministic = runs
        .windows(2)
        .all(|w| w[0].report == w[1].report && w[0].records == w[1].records);
    assert!(
        deterministic,
        "DriverReport differs across worker counts — determinism violated"
    );

    let base = &runs[0];
    let mut human = String::new();
    human.push_str(&format!(
        "{} users x {} days (seed {:#x}), {} trace records\n",
        cfg.users, cfg.days, cfg.seed, base.records
    ));
    human.push_str("workers  wall(s)   ops/s     speedup\n");
    let rows: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            let ops_per_sec = r.ops as f64 / r.wall_secs;
            let speedup = base.wall_secs / r.wall_secs;
            human.push_str(&format!(
                "{:>7}  {:>7.2}  {:>8.0}  {:>6.2}x\n",
                r.workers, r.wall_secs, ops_per_sec, speedup
            ));
            json!({
                "workers": r.workers,
                "wall_secs": r.wall_secs,
                "ops": r.ops,
                "ops_per_sec": ops_per_sec,
                "speedup_vs_serial": speedup,
            })
        })
        .collect();
    // Speedup is bounded by the host: on a 1-core container every worker
    // count degenerates to ~1.0x, so record what was available.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    human.push_str(&format!("host cpus: {host_cpus}\n"));
    u1_bench::emit(
        "BENCH_throughput",
        &human,
        &json!({
            "config": {
                "users": cfg.users,
                "days": cfg.days,
                "seed": cfg.seed,
                "attacks": cfg.attacks,
            },
            "host_cpus": host_cpus,
            "trace_records": base.records,
            "deterministic_across_worker_counts": deterministic,
            "runs": rows,
        }),
    );
}
