//! Fault-injection experiment (failure-mode handbook); self-contained.
fn main() {
    u1_bench::experiments::exp_faults();
}
