//! Analytics benchmark: the Table-3/figure battery over the bench trace in
//! both modes — the legacy per-analyzer multi-pass sequence (exactly the
//! calls the pre-streaming `exp_all` harness made, duplicates included)
//! against ONE streaming [`u1_analytics::engine::run_all`] pass — plus the
//! chunk-parallel pass at several thread counts and the logfile parse path
//! (serial vs parallel `LogDirReader`).
//!
//! Writes `BENCH_analytics.json` with wall times, records/sec, the
//! before/after record-pass counts, parse throughput and thread scaling,
//! and cross-checks that every mode produces the identical analysis
//! (scalar outputs compared bit-for-bit).
//!
//! Environment overrides: `U1_USERS`, `U1_DAYS`, `U1_SEED`, `U1_ATTACKS=0`
//! (same as the experiment harness), plus `U1_BENCH_THREADS` as a
//! comma-separated list of chunk-parallel thread counts (default `1,2,4,8`).

use serde_json::json;
use std::hint::black_box;
use std::time::Instant;
use u1_analytics as ana;
use u1_analytics::engine::{
    host_clamped, plan_chunk_count, run_all, run_all_chunked_timed, EngineConfig,
};
use u1_bench::{Fingerprint, Scenario};
use u1_core::timing::{Phase, PhaseTimers};
use u1_core::ApiOpKind;
use u1_trace::logfile::LogDirReader;
use u1_trace::{DirSink, TraceSink};

#[global_allocator]
static ALLOC: u1_bench::mem::CountingAlloc = u1_bench::mem::CountingAlloc;

/// Replays the pre-streaming `exp_all` analyzer sequence: one full record
/// pass per call, duplicated calls included (f3a/f3b both ran
/// `dependency_analysis`, Table 1 re-ran most of the battery, …). Returns
/// the pass count and the legacy-path fingerprint.
fn legacy_battery(scn: &Scenario, cfg: &EngineConfig) -> (usize, Fingerprint) {
    let records = &scn.records;
    let horizon = scn.horizon;
    let exts: Vec<&str> = cfg.exts.iter().map(String::as_str).collect();
    let mut passes = 0usize;
    let mut pass = |n: usize| passes += n;

    // t3
    let summary = ana::summary::trace_summary(records, horizon);
    pass(1);
    // f2a
    black_box(ana::timeseries::traffic_per_hour(records, horizon));
    black_box(ana::storage::upload_diurnal_swing(records, horizon));
    pass(2);
    // f2b, f2c
    black_box(ana::storage::size_category_shares(records));
    black_box(ana::storage::rw_ratio(records, horizon));
    pass(2);
    // f3a, f3b (both called dependency_analysis), f3c
    let deps = ana::dependencies::dependency_analysis(records);
    black_box(ana::dependencies::dependency_analysis(records));
    let lifetimes = ana::dependencies::lifetime_analysis(records);
    pass(3);
    // f4a, f4b, f4c
    let dedup = ana::dedup::dedup_analysis(records);
    black_box(ana::storage::size_by_extension(records, &exts));
    black_box(ana::storage::taxonomy_shares(records));
    pass(3);
    // f5
    let ddos = ana::ddos::detect(records, horizon, &cfg.ddos);
    pass(1);
    // f6, f7a, f7b, f7c (7b and 7c both ran traffic_inequality)
    black_box(ana::users::active_online_summary(records, horizon));
    black_box(ana::users::op_mix(records));
    let ineq = ana::users::traffic_inequality(records);
    black_box(ana::users::traffic_inequality(records));
    pass(4);
    // f8, f9
    let markov = ana::markov::transition_graph(records);
    let burst_up = ana::burstiness::burstiness(records, ApiOpKind::Upload);
    black_box(ana::burstiness::burstiness(records, ApiOpKind::Unlink));
    pass(3);
    // f12, f13 (both ran rpc_analysis), f14, f15, f16
    let rpc = ana::rpc::rpc_analysis(records);
    black_box(ana::rpc::rpc_analysis(records));
    let lb = ana::rpc::load_balance(records, horizon, cfg.machines, cfg.shards, cfg.lb_minutes);
    let auth = ana::sessions::auth_activity(records, horizon);
    let sessions = ana::sessions::session_analysis(records);
    pass(5);
    // t1 re-ran most of the battery
    black_box(ana::storage::size_by_extension(records, &[]));
    let updates = ana::storage::update_analysis(records);
    black_box(ana::dedup::dedup_analysis(records));
    black_box(ana::ddos::detect(records, horizon, &cfg.ddos));
    black_box(ana::users::traffic_inequality(records));
    black_box(ana::sessions::session_analysis(records));
    black_box(ana::burstiness::burstiness(records, ApiOpKind::Upload));
    black_box(ana::rpc::rpc_analysis(records));
    black_box(ana::sessions::auth_activity(records, horizon));
    pass(9);
    // ablations
    black_box(ana::dedup::dedup_analysis(records));
    black_box(ana::storage::update_analysis(records));
    pass(2);

    let fp = Fingerprint {
        records: summary.records,
        unique_files: summary.unique_files,
        dedup_ratio: dedup.dedup_ratio.to_bits(),
        update_traffic_fraction: updates.update_traffic_fraction.to_bits(),
        transitions: markov.total_transitions,
        upload_gini: ineq.upload_lorenz.gini.to_bits(),
        sessions: sessions.sessions,
        active_fraction: sessions.active_fraction.to_bits(),
        ddos_episodes: ddos.episodes.len(),
        rpc_profiles: rpc.profiles.len(),
        shard_longrun_cv: lb.shard_longrun_cv.to_bits(),
        auth_failure_fraction: auth.auth_failure_fraction.to_bits(),
        waw_under_1h: deps.waw_under_1h.to_bits(),
        file_mortality: lifetimes.file_mortality.to_bits(),
        upload_cv: burst_up.cv.to_bits(),
    };
    (passes, fp)
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() {
    // The 1-CPU-bench trap: thread-scaling numbers from a single-core host
    // are meaningless. Record host parallelism FIRST and stamp the output.
    let host_cpus = std::thread::available_parallelism()
        .map(|nz| nz.get())
        .unwrap_or(1);
    let scaling_valid = host_cpus >= 2;
    if !scaling_valid {
        eprintln!(
            "[analytics] WARNING: host has {host_cpus} cpu(s) — thread-scaling \
             columns are NOT meaningful (scaling_valid=false); run on a \
             multi-core host to measure scaling"
        );
    }
    let scenario = u1_bench::scenario_from_env();
    let cfg = u1_bench::engine_config(&scenario);
    let records = &scenario.records;
    let n = records.len();
    let thread_counts: Vec<usize> = std::env::var("U1_BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .map(|w| w.trim().parse().expect("U1_BENCH_THREADS must be integers"))
        .collect();

    // Legacy multi-pass battery.
    let started = Instant::now();
    let (legacy_passes, legacy_fp) = legacy_battery(&scenario, &cfg);
    let legacy_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[analytics] legacy battery: {legacy_passes} record passes, {legacy_secs:.2}s \
         ({:.0} records/s effective)",
        n as f64 / legacy_secs
    );

    // Streaming single pass.
    let started = Instant::now();
    let report = run_all(records, &cfg);
    let streaming_secs = started.elapsed().as_secs_f64();
    let streaming_fp = Fingerprint::of(&report);
    eprintln!(
        "[analytics] streaming battery: 1 record pass, {streaming_secs:.2}s \
         ({:.0} records/s)",
        n as f64 / streaming_secs
    );
    assert_eq!(
        streaming_fp, legacy_fp,
        "streaming battery disagrees with the legacy per-analyzer battery"
    );

    // Chunk-parallel scaling, with per-phase accounting (fold thread-seconds
    // vs merge seconds — merge is the serial tail the tree merge shrinks).
    let mut scaling: Vec<(usize, f64, u64, u64)> = Vec::new();
    for &threads in &thread_counts {
        let timers = PhaseTimers::new();
        let started = Instant::now();
        let chunked = run_all_chunked_timed(records, &cfg, threads, &timers);
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(
            Fingerprint::of(&chunked),
            streaming_fp,
            "chunk-parallel battery at {threads} threads disagrees with serial"
        );
        let fold_nanos = timers.get(Phase::Fold);
        let merge_nanos = timers.get(Phase::Merge);
        eprintln!(
            "[analytics] chunked threads={threads} (chunks={}): {secs:.2}s \
             ({:.0} records/s, {:.2}x vs serial; fold {:.2}ts, merge {:.3}s)",
            plan_chunk_count(n, host_clamped(threads)),
            n as f64 / secs,
            streaming_secs / secs,
            fold_nanos as f64 / 1e9,
            merge_nanos as f64 / 1e9,
        );
        scaling.push((threads, secs, fold_nanos, merge_nanos));
    }

    // Logfile parse path: dump the trace as per-(machine, process, day)
    // logfiles, then read it back serially and in parallel.
    let log_dir = u1_bench::out_dir().join("bench-analytics-logs");
    let _ = std::fs::remove_dir_all(&log_dir);
    let sink = DirSink::create(&log_dir).expect("create log dir");
    let started = Instant::now();
    for rec in records {
        sink.record(rec.clone());
    }
    sink.flush();
    let write_secs = started.elapsed().as_secs_f64();
    assert_eq!(sink.io_errors(), 0, "log dump hit I/O errors");
    let trace_bytes = dir_bytes(&log_dir);

    let reader = LogDirReader::new(&log_dir);
    let started = Instant::now();
    let (serial_records, serial_stats) = reader.read_all().expect("serial read");
    let parse_serial_secs = started.elapsed().as_secs_f64();
    let parse_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let parse_timers = PhaseTimers::new();
    let started = Instant::now();
    let (par_records, par_stats) = reader
        .read_all_parallel_timed(parse_threads, &parse_timers)
        .expect("parallel read");
    let parse_parallel_secs = started.elapsed().as_secs_f64();
    assert_eq!(par_stats, serial_stats, "parallel parse stats differ");
    assert_eq!(par_records, serial_records, "parallel parse records differ");
    assert_eq!(serial_stats.parsed, n, "parse round-trip lost records");
    let _ = std::fs::remove_dir_all(&log_dir);
    eprintln!(
        "[analytics] parse: {} files, {:.1} MB; serial {parse_serial_secs:.2}s \
         ({:.0} rec/s, {:.1} MB/s), parallel x{parse_threads} {parse_parallel_secs:.2}s ({:.2}x)",
        serial_stats.files,
        trace_bytes as f64 / 1e6,
        n as f64 / parse_serial_secs,
        trace_bytes as f64 / 1e6 / parse_serial_secs,
        parse_serial_secs / parse_parallel_secs,
    );

    let speedup = legacy_secs / streaming_secs;
    let mut human = String::new();
    human.push_str(&format!(
        "{} users x {} days (seed {:#x}), {} trace records\n",
        scenario.cfg.users, scenario.cfg.days, scenario.cfg.seed, n
    ));
    human.push_str(&format!(
        "host cpus: {host_cpus} (scaling columns {})\n",
        if scaling_valid {
            "valid"
        } else {
            "NOT VALID — single-core host"
        }
    ));
    human.push_str(&format!(
        "peak rss: {}, allocator peak: {}\n",
        u1_core::ByteSize(u1_bench::mem::peak_rss_bytes().unwrap_or(0)),
        u1_core::ByteSize(u1_bench::mem::alloc_peak_bytes()),
    ));
    human.push_str(&format!(
        "legacy battery     {legacy_passes:>3} passes  {legacy_secs:>7.2}s\n\
         streaming battery    1 pass    {streaming_secs:>7.2}s  {speedup:>5.2}x faster\n"
    ));
    for &(threads, secs, fold_nanos, merge_nanos) in &scaling {
        human.push_str(&format!(
            "chunked x{threads:<2}                      {secs:>7.2}s  {:>5.2}x vs serial streaming \
             (fold {:.2}ts, merge {:.3}s)\n",
            streaming_secs / secs,
            fold_nanos as f64 / 1e9,
            merge_nanos as f64 / 1e9,
        ));
    }
    human.push_str(&format!(
        "parse: serial {parse_serial_secs:.2}s, parallel x{parse_threads} {parse_parallel_secs:.2}s \
         over {:.1} MB in {} files\n",
        trace_bytes as f64 / 1e6,
        serial_stats.files,
    ));
    u1_bench::emit(
        "BENCH_analytics",
        &human,
        &json!({
            "config": {
                "users": scenario.cfg.users,
                "days": scenario.cfg.days,
                "seed": scenario.cfg.seed,
                "attacks": scenario.cfg.attacks,
            },
            "host_cpus": host_cpus,
            "scaling_valid": scaling_valid,
            "peak_rss_bytes": u1_bench::mem::peak_rss_bytes().unwrap_or(0),
            "alloc_peak_bytes": u1_bench::mem::alloc_peak_bytes(),
            "trace_records": n,
            "battery": {
                "legacy_record_passes": legacy_passes,
                "streaming_record_passes": 1,
                "legacy_wall_secs": legacy_secs,
                "streaming_wall_secs": streaming_secs,
                "streaming_records_per_sec": n as f64 / streaming_secs,
                "speedup_single_pass_vs_multi_pass": speedup,
                "outputs_identical": true,
            },
            "thread_scaling": scaling
                .iter()
                .map(|&(threads, secs, fold_nanos, merge_nanos)| json!({
                    "threads": threads,
                    "chunks": plan_chunk_count(n, host_clamped(threads)),
                    "wall_secs": secs,
                    "records_per_sec": n as f64 / secs,
                    "speedup_vs_serial_streaming": streaming_secs / secs,
                    "fold_thread_nanos": fold_nanos,
                    "merge_nanos": merge_nanos,
                }))
                .collect::<Vec<_>>(),
            "parse": {
                "files": serial_stats.files,
                "bytes": trace_bytes,
                "lines": serial_stats.lines,
                "malformed": serial_stats.malformed,
                "write_secs": write_secs,
                "serial_secs": parse_serial_secs,
                "parallel_secs": parse_parallel_secs,
                "parallel_threads": parse_threads,
                "serial_records_per_sec": n as f64 / parse_serial_secs,
                "serial_mb_per_sec": trace_bytes as f64 / 1e6 / parse_serial_secs,
                "parallel_speedup": parse_serial_secs / parse_parallel_secs,
                "parallel_identical": true,
                "parse_thread_nanos": parse_timers.get(Phase::Parse),
                "sort_nanos": parse_timers.get(Phase::Sort),
            },
        }),
    );
}
