//! CI scaling gate: fails (exit 1) when the multi-core speedup of any of
//! the three parallel paths drops below its pinned floor.
//!
//! The three paths and their default floors (4 workers/threads vs 1, on a
//! ≥ 4-core host):
//!
//! * driver replay (`Driver::run` at `workers = 4`)      — ≥ 2.5x
//! * logfile parse (`LogDirReader::read_all_parallel`)   — ≥ 1.8x
//! * chunked analytics (`run_all_chunked` at 4 threads)  — ≥ 2.5x
//!
//! Measures in-process (best-of-`U1_GATE_REPS`, default 2, to absorb
//! scheduler noise) rather than parsing bench JSON, so the gate needs no
//! JSON reader and cannot drift from the benches' output schema.
//!
//! On a host with fewer than 4 CPUs the gate prints a warning and exits 0 —
//! a single- or dual-core container cannot exhibit 4-way scaling, and a
//! fake failure there would train people to ignore the gate (see the
//! `scaling_valid` flag the benches emit for the same reason).
//!
//! Environment overrides: `U1_USERS` / `U1_DAYS` / `U1_SEED` (workload
//! size; defaults 600 x 4), `U1_GATE_REPS`, and the floors
//! `U1_GATE_DRIVER_FLOOR`, `U1_GATE_PARSE_FLOOR`, `U1_GATE_CHUNKED_FLOOR`.

use std::sync::Arc;
use std::time::Instant;
use u1_analytics::engine::{run_all_chunked, EngineReport};
use u1_core::SimClock;
use u1_server::{Backend, BackendConfig};
use u1_trace::logfile::LogDirReader;
use u1_trace::{BufferedSink, DirSink, MemorySink, TraceRecord, TraceSink};
use u1_workload::{Driver, WorkloadConfig};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Wall-clock of the fastest of `reps` runs of `f`.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

fn run_driver(cfg: &WorkloadConfig, workers: usize) -> Vec<TraceRecord> {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    let clock = SimClock::new();
    let sink = Arc::new(MemorySink::new());
    let backend_cfg = BackendConfig {
        seed: cfg.seed ^ 0xBACC,
        ..BackendConfig::default()
    };
    let backend = Arc::new(Backend::new(
        backend_cfg,
        Arc::new(clock.clone()),
        Arc::new(BufferedSink::new(Arc::clone(&sink))),
    ));
    Driver::new(cfg, backend, clock).run();
    sink.take_sorted()
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if host_cpus < 4 {
        eprintln!(
            "[scaling-gate] SKIP: host has {host_cpus} cpu(s); 4-way scaling \
             floors need a >= 4-core host (scaling_valid=false)"
        );
        return;
    }
    let reps: usize = env_or("U1_GATE_REPS", 2);
    let driver_floor: f64 = env_or("U1_GATE_DRIVER_FLOOR", 2.5);
    let parse_floor: f64 = env_or("U1_GATE_PARSE_FLOOR", 1.8);
    let chunked_floor: f64 = env_or("U1_GATE_CHUNKED_FLOOR", 2.5);

    let mut cfg = WorkloadConfig::paper_scaled();
    cfg.users = env_or("U1_USERS", 600);
    cfg.days = env_or("U1_DAYS", 4);
    cfg.seed = env_or("U1_SEED", cfg.seed);

    // Driver replay: workers=1 vs workers=4.
    let driver_serial = best_of(reps, || {
        run_driver(&cfg, 1);
    });
    let driver_parallel = best_of(reps, || {
        run_driver(&cfg, 4);
    });
    let driver_speedup = driver_serial / driver_parallel;
    eprintln!(
        "[scaling-gate] driver: 1w {driver_serial:.2}s, 4w {driver_parallel:.2}s \
         -> {driver_speedup:.2}x (floor {driver_floor:.2}x)"
    );

    // One trace for the parse and analytics paths.
    let records = run_driver(&cfg, 4);
    let backend_defaults = BackendConfig::default();
    let engine_cfg = u1_analytics::engine::EngineConfig::new(
        cfg.horizon(),
        backend_defaults.cluster.machines as usize,
        backend_defaults.store.shards as usize,
    );

    // Logfile parse: serial vs byte-range parallel over the dumped trace.
    let log_dir = u1_bench::out_dir().join("scaling-gate-logs");
    let _ = std::fs::remove_dir_all(&log_dir);
    let sink = DirSink::create(&log_dir).expect("create log dir");
    for rec in &records {
        sink.record(rec.clone());
    }
    sink.flush();
    assert_eq!(sink.io_errors(), 0, "log dump hit I/O errors");
    let reader = LogDirReader::new(&log_dir);
    let parse_serial = best_of(reps, || {
        std::hint::black_box(reader.read_all().expect("serial read"));
    });
    let parse_parallel = best_of(reps, || {
        std::hint::black_box(reader.read_all_parallel(4).expect("parallel read"));
    });
    let _ = std::fs::remove_dir_all(&log_dir);
    let parse_speedup = parse_serial / parse_parallel;
    eprintln!(
        "[scaling-gate] parse: serial {parse_serial:.2}s, x4 {parse_parallel:.2}s \
         -> {parse_speedup:.2}x (floor {parse_floor:.2}x)"
    );

    // Chunked analytics: 1 thread vs 4 threads.
    let chunked_serial = best_of(reps, || {
        std::hint::black_box::<EngineReport>(run_all_chunked(&records, &engine_cfg, 1));
    });
    let chunked_parallel = best_of(reps, || {
        std::hint::black_box::<EngineReport>(run_all_chunked(&records, &engine_cfg, 4));
    });
    let chunked_speedup = chunked_serial / chunked_parallel;
    eprintln!(
        "[scaling-gate] chunked: x1 {chunked_serial:.2}s, x4 {chunked_parallel:.2}s \
         -> {chunked_speedup:.2}x (floor {chunked_floor:.2}x)"
    );

    let mut failed = false;
    for (name, got, floor) in [
        ("driver", driver_speedup, driver_floor),
        ("parse", parse_speedup, parse_floor),
        ("chunked", chunked_speedup, chunked_floor),
    ] {
        if got < floor {
            eprintln!(
                "[scaling-gate] FAIL: {name} speedup {got:.2}x is below the \
                 pinned floor {floor:.2}x"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("[scaling-gate] OK: all parallel paths at or above their pinned floors");
}
