//! Harness binary for one experiment; see `u1-bench` crate docs.
fn main() {
    let scenario = u1_bench::scenario_from_env();
    let report = u1_bench::analyze(&scenario);
    u1_bench::experiments::exp_ablations(&scenario, &report);
}
