//! A compact bit-exact fingerprint of an [`EngineReport`], shared by the
//! analytics and scale benchmarks: scalar outputs spanning every analysis
//! family, with floats compared by bit pattern (so NaN == NaN and no
//! tolerance can mask a real divergence).
//!
//! `to_line`/`from_line` give the fingerprint a lossless single-line text
//! form, which is how `bench_scale`'s child processes report results to the
//! parent (the vendored serde stub cannot parse JSON back).

use u1_analytics::engine::EngineReport;

/// The scalar outputs every analytics mode must agree on, bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    pub records: u64,
    pub unique_files: u64,
    pub dedup_ratio: u64,
    pub update_traffic_fraction: u64,
    pub transitions: u64,
    pub upload_gini: u64,
    pub sessions: u64,
    pub active_fraction: u64,
    pub ddos_episodes: usize,
    pub rpc_profiles: usize,
    pub shard_longrun_cv: u64,
    pub auth_failure_fraction: u64,
    pub waw_under_1h: u64,
    pub file_mortality: u64,
    pub upload_cv: u64,
}

impl Fingerprint {
    pub fn of(rep: &EngineReport) -> Self {
        Self {
            records: rep.summary.records,
            unique_files: rep.summary.unique_files,
            dedup_ratio: rep.dedup.dedup_ratio.to_bits(),
            update_traffic_fraction: rep.updates.update_traffic_fraction.to_bits(),
            transitions: rep.markov.total_transitions,
            upload_gini: rep.inequality.upload_lorenz.gini.to_bits(),
            sessions: rep.sessions.sessions,
            active_fraction: rep.sessions.active_fraction.to_bits(),
            ddos_episodes: rep.ddos.episodes.len(),
            rpc_profiles: rep.rpc.profiles.len(),
            shard_longrun_cv: rep.load_balance.shard_longrun_cv.to_bits(),
            auth_failure_fraction: rep.auth.auth_failure_fraction.to_bits(),
            waw_under_1h: rep.dependencies.waw_under_1h.to_bits(),
            file_mortality: rep.lifetimes.file_mortality.to_bits(),
            upload_cv: rep.burst_upload.cv.to_bits(),
        }
    }

    /// Lossless single-line form: 15 decimal fields, comma-separated, in
    /// declaration order.
    pub fn to_line(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.records,
            self.unique_files,
            self.dedup_ratio,
            self.update_traffic_fraction,
            self.transitions,
            self.upload_gini,
            self.sessions,
            self.active_fraction,
            self.ddos_episodes,
            self.rpc_profiles,
            self.shard_longrun_cv,
            self.auth_failure_fraction,
            self.waw_under_1h,
            self.file_mortality,
            self.upload_cv,
        )
    }

    /// Parses [`Self::to_line`] output; `None` on any malformation.
    pub fn from_line(line: &str) -> Option<Self> {
        let mut it = line.trim().split(',');
        let mut next_u64 = || it.next()?.parse::<u64>().ok();
        let fp = Self {
            records: next_u64()?,
            unique_files: next_u64()?,
            dedup_ratio: next_u64()?,
            update_traffic_fraction: next_u64()?,
            transitions: next_u64()?,
            upload_gini: next_u64()?,
            sessions: next_u64()?,
            active_fraction: next_u64()?,
            ddos_episodes: usize::try_from(next_u64()?).ok()?,
            rpc_profiles: usize::try_from(next_u64()?).ok()?,
            shard_longrun_cv: next_u64()?,
            auth_failure_fraction: next_u64()?,
            waw_under_1h: next_u64()?,
            file_mortality: next_u64()?,
            upload_cv: next_u64()?,
        };
        if it.next().is_some() {
            return None;
        }
        Some(fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip_is_lossless() {
        let fp = Fingerprint {
            records: 1,
            unique_files: 2,
            dedup_ratio: f64::NAN.to_bits(),
            update_traffic_fraction: 0.25f64.to_bits(),
            transitions: u64::MAX,
            upload_gini: 0,
            sessions: 7,
            active_fraction: 1.0f64.to_bits(),
            ddos_episodes: 3,
            rpc_profiles: 9,
            shard_longrun_cv: 0.125f64.to_bits(),
            auth_failure_fraction: 42,
            waw_under_1h: 43,
            file_mortality: 44,
            upload_cv: 45,
        };
        assert_eq!(Fingerprint::from_line(&fp.to_line()), Some(fp));
        assert_eq!(Fingerprint::from_line("1,2,3"), None);
        assert_eq!(Fingerprint::from_line(""), None);
    }
}
