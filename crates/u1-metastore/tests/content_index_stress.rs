//! Concurrent stress test for the striped, epoch-visibility content index
//! (§3.3 file-level dedup).
//!
//! Eight threads — one per origin, mirroring the parallel driver's
//! shard-per-origin layout — hammer one `ContentIndex` with interleaved
//! upload (incref) and unlink (decref) cycles over a mix of shared and
//! thread-private hashes. Epochs end at a barrier where the main thread
//! seals the index, exactly like the driver's day boundary. The test keeps
//! an independent ledger (per-hash atomic expected refcounts, plus a model
//! of the blob store driven by the same remove-at-zero / seal-restore
//! protocol the real backend uses) and asserts after every seal:
//!
//! * **refcounts balance** — every hash's committed refcount equals the
//!   ledger (total increfs minus decrefs across all threads),
//! * **no double-free** — a hash is never reported dead while references
//!   remain, never dead and restored in the same seal, and a referenced
//!   hash always has its blob after the seal outcome is applied,
//! * **no leak** — once every thread has released its references, a final
//!   seal reports every surviving hash dead, all probes miss, the blob
//!   model is empty, and `fold_stats` is all-zero.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Barrier};
use u1_core::{ContentHash, SimTime};
use u1_metastore::ContentIndex;

const THREADS: usize = 8;
const ROUNDS: usize = 6;
const OPS_PER_ROUND: usize = 2_000;
const SHARED_HASHES: usize = 48;
const PRIVATE_HASHES: usize = 16;
const UNIVERSE: usize = SHARED_HASHES + THREADS * PRIVATE_HASHES;

fn hash_of(id: usize) -> ContentHash {
    ContentHash::from_content_id(id as u64 + 1)
}

/// Sizes are a pure function of the hash, as in the real store.
fn size_of(id: usize) -> u64 {
    64 + id as u64 * 8
}

/// Verify the committed state against the ledger after a seal: refcounts
/// balance exactly and a blob exists iff references remain.
fn verify_sealed_view(
    idx: &ContentIndex,
    expected: &[AtomicI64],
    blobs: &Mutex<HashSet<ContentHash>>,
    round: usize,
) {
    let blobs = blobs.lock();
    for (id, want) in expected.iter().enumerate() {
        let want = want.load(Ordering::SeqCst);
        let got = idx.probe(hash_of(id), 0).map(|row| row.refcount as i64);
        match got {
            Some(refcount) => {
                assert_eq!(
                    refcount, want,
                    "round {round}: hash {id} refcount out of balance"
                );
                assert!(
                    blobs.contains(&hash_of(id)),
                    "round {round}: hash {id} still referenced but its blob is gone"
                );
            }
            None => {
                assert_eq!(want, 0, "round {round}: hash {id} leaked from the index");
                assert!(
                    !blobs.contains(&hash_of(id)),
                    "round {round}: hash {id} dead but its blob leaked"
                );
            }
        }
    }
}

#[test]
fn concurrent_upload_unlink_stress_keeps_refcounts_balanced() {
    let idx = Arc::new(ContentIndex::new());
    let expected: Arc<Vec<AtomicI64>> =
        Arc::new((0..UNIVERSE).map(|_| AtomicI64::new(0)).collect());
    let blobs: Arc<Mutex<HashSet<ContentHash>>> = Arc::new(Mutex::new(HashSet::new()));
    // Two waits per round: mutators quiesce, then the main thread seals and
    // verifies before releasing everyone into the next epoch.
    let barrier = Arc::new(Barrier::new(THREADS + 1));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let idx = Arc::clone(&idx);
            let expected = Arc::clone(&expected);
            let blobs = Arc::clone(&blobs);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let origin = t as u32;
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE + t as u64);
                // Refs this thread currently holds, per hash id. Threads
                // only ever release their own references, so per-hash
                // totals never go negative.
                let mut held = vec![0u64; UNIVERSE];
                for round in 0..ROUNDS {
                    for _ in 0..OPS_PER_ROUND {
                        let id = if rng.gen_range(0.0..1.0) < 0.7 {
                            rng.gen_range(0..SHARED_HASHES)
                        } else {
                            SHARED_HASHES + t * PRIVATE_HASHES + rng.gen_range(0..PRIVATE_HASHES)
                        };
                        let h = hash_of(id);
                        if held[id] == 0 || rng.gen_range(0.0..1.0) < 0.55 {
                            // Upload: put the blob on a dedup miss, then
                            // take a reference — the store's commit path.
                            if idx.probe(h, origin).is_none() {
                                blobs.lock().insert(h);
                            }
                            idx.incref(h, size_of(id), SimTime::from_secs(round as u64), origin);
                            held[id] += 1;
                            expected[id].fetch_add(1, Ordering::SeqCst);
                        } else {
                            // Unlink: drop a reference, delete the blob
                            // when this origin's view hits zero.
                            if idx.decref(h, origin) {
                                blobs.lock().remove(&h);
                            }
                            held[id] -= 1;
                            expected[id].fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    barrier.wait(); // epoch over, main thread seals
                    barrier.wait(); // sealed + verified, next epoch
                }
                // Drain: release everything this thread still holds, so
                // the final seal must account for every last reference.
                for (id, refs) in held.into_iter().enumerate() {
                    let h = hash_of(id);
                    for _ in 0..refs {
                        if idx.decref(h, origin) {
                            blobs.lock().remove(&h);
                        }
                        expected[id].fetch_sub(1, Ordering::SeqCst);
                    }
                }
                barrier.wait(); // drain over, final seal
                barrier.wait();
            });
        }

        for round in 0..ROUNDS {
            barrier.wait(); // mutators quiesced
            let outcome = idx.seal();
            let dead: HashSet<ContentHash> = outcome.dead.iter().copied().collect();
            for (h, _size) in &outcome.live {
                assert!(
                    !dead.contains(h),
                    "round {round}: hash both dead and restored in one seal"
                );
            }
            // Apply the seal outcome to the blob model the way the real
            // backend does: dead blobs go (idempotently), mid-epoch
            // view-local deletions of surviving hashes are restored.
            {
                let mut blobs = blobs.lock();
                for h in &outcome.dead {
                    blobs.remove(h);
                }
                for (h, _size) in &outcome.live {
                    blobs.insert(*h);
                }
            }
            verify_sealed_view(&idx, &expected, &blobs, round);
            barrier.wait(); // release mutators into the next epoch
        }

        barrier.wait(); // drain round quiesced
        let outcome = idx.seal();
        {
            let mut blobs = blobs.lock();
            for h in &outcome.dead {
                blobs.remove(h);
            }
            for (h, _size) in &outcome.live {
                blobs.insert(*h);
            }
        }
        for (id, want) in expected.iter().enumerate() {
            assert_eq!(want.load(Ordering::SeqCst), 0, "ledger must drain to zero");
            assert!(
                idx.probe(hash_of(id), 0).is_none(),
                "hash {id} leaked: refs remain after every thread released"
            );
        }
        assert!(
            blobs.lock().is_empty(),
            "blob model must be empty after the final seal"
        );
        assert_eq!(
            idx.fold_stats(),
            (0, 0, 0),
            "fold_stats must report an empty index"
        );
        barrier.wait();
    });
}
