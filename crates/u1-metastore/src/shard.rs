//! One metadata shard.
//!
//! A shard owns every row of the users routed to it: their volumes, the
//! nodes inside those volumes, and their in-flight upload jobs. All methods
//! take the *resolved volume owner* — the [`store`](crate::store) layer is
//! responsible for routing and for authorizing shared-volume access, which
//! is the only case where a request involves a second shard (§3.4).
//!
//! Reads take the shard lock shared; the paper calls this data model
//! "lockless" because read RPCs exploit parallel access to the shard pair
//! and ordinary operations never span shards.
//!
//! # Storage layout (memory-bounded scale path)
//!
//! Rows are *not* stored as the DTO types of [`crate::model`]. Internally a
//! shard is slab-allocated and index-linked:
//!
//! * All node/volume names live interned in one per-shard
//!   [`NameArena`]; slots carry a 4-byte [`NameId`], and name equality on
//!   the `make_node` idempotency probe is a u32 compare.
//! * Nodes live in a `Vec<NodeSlot>` slab addressed by dense `u32`
//!   indices; the sparse strided [`NodeId`]s map to slots through one
//!   `FxHashMap`. Slots are recycled through a free list — but only by
//!   `delete_volume`, which also drops every per-volume index that could
//!   reference them, so no stale slot reference can survive reuse.
//! * Volumes live in a `Vec<VolumeSlot>` slab the same way; each volume
//!   slot *owns* its secondary indexes (live-name map, change log, member
//!   list), so the cascade delete is a wholesale drop.
//! * The per-volume change log backing `get_delta` is an append-only
//!   `Vec<(generation, slot)>` instead of a `BTreeSet`: generations are
//!   monotone per volume, so the vector is naturally sorted, a log entry is
//!   live iff the slot still carries that generation (updating a node makes
//!   its old entry stale *for free*), and range reads are a binary search
//!   plus a scan. Stale entries are compacted away once they outnumber the
//!   members.
//!
//! Public methods still speak DTO rows; they are materialized on the way
//! out (a [`Name`] is built from the arena text — inline, no allocation,
//! for names up to 22 bytes).

use crate::model::{NodeRow, UploadJobRow, UploadState, UserRow, VolumeRow};
use u1_core::intern::to_u32;
use u1_core::{
    ContentHash, CoreError, CoreResult, FxHashMap, IdArena, Name, NameArena, NameId, NodeId,
    NodeKind, ShardId, SimDuration, SimTime, UploadId, UserId, VolumeId, VolumeKind,
};

/// A deleted node reported back so the caller can release content refs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadNode {
    pub node: NodeId,
    pub kind: NodeKind,
    pub content: Option<ContentHash>,
    pub size: u64,
}

/// Slab storage of one node row. 4-byte interned name, no heap strings;
/// the only owned allocation is the live-children list of directories.
#[derive(Debug, Clone)]
struct NodeSlot {
    node: NodeId,
    volume: VolumeId,
    parent: Option<NodeId>,
    kind: NodeKind,
    name: NameId,
    content: Option<ContentHash>,
    size: u64,
    generation: u64,
    is_live: bool,
    created_at: SimTime,
    changed_at: SimTime,
    /// Live children (directories only), kept sorted ascending so the
    /// unlink cascade walk is iteration-order-free — the same order the
    /// previous `BTreeSet` index produced.
    children: Vec<NodeId>,
}

/// Slab storage of one volume row plus the secondary indexes it owns.
/// Dropping the slot (delete-volume cascade) drops every index that could
/// reference a node slot of this volume.
#[derive(Debug, Clone)]
struct VolumeSlot {
    volume: VolumeId,
    owner: UserId,
    kind: VolumeKind,
    name: NameId,
    generation: u64,
    created_at: SimTime,
    node_count: u64,
    /// False once the slot has been freed (awaiting reuse).
    alive: bool,
    /// Every node slot ever created in this volume (live and tombstoned),
    /// in creation order. Backs `get_from_scratch` and the cascade delete.
    members: Vec<u32>,
    /// Live `(parent, name)` → node slot. Backs `make_node`'s idempotency
    /// probe without scanning the volume.
    live_names: FxHashMap<(Option<NodeId>, NameId), u32>,
    /// Append-only change log `(generation, node slot)`, sorted because
    /// generations are monotone (same-generation unlink batches are
    /// appended sorted by node id). An entry is live iff the slot still
    /// carries that generation. Backs `get_delta` range scans.
    log: Vec<(u64, u32)>,
}

impl Default for VolumeSlot {
    /// The freed-slot placeholder (`alive: false`, empty indexes).
    fn default() -> Self {
        Self {
            volume: VolumeId::new(0),
            owner: UserId::new(0),
            kind: VolumeKind::Root,
            name: NameId::default(),
            generation: 0,
            created_at: SimTime::ZERO,
            node_count: 0,
            alive: false,
            members: Vec::new(),
            live_names: FxHashMap::default(),
            log: Vec::new(),
        }
    }
}

/// Compact a change log only past this length (every member keeps exactly
/// one live entry, so short logs are never worth rewriting).
const LOG_COMPACT_FLOOR: usize = 64;

/// The mutable tables of one shard.
#[derive(Debug, Default)]
pub struct Shard {
    pub id: ShardId,
    /// All node and volume names, interned once per distinct string.
    names: NameArena,
    /// Dense user index; users are never deleted, so no free list.
    users: IdArena<UserId>,
    user_rows: Vec<UserRow>,
    volumes: FxHashMap<VolumeId, u32>,
    volume_slots: Vec<VolumeSlot>,
    free_volumes: Vec<u32>,
    nodes: FxHashMap<NodeId, u32>,
    node_slots: Vec<NodeSlot>,
    free_nodes: Vec<u32>,
    uploadjobs: FxHashMap<UploadId, UploadJobRow>,
}

fn child_insert(children: &mut Vec<NodeId>, id: NodeId) {
    if let Err(pos) = children.binary_search(&id) {
        children.insert(pos, id);
    }
}

fn child_remove(children: &mut Vec<NodeId>, id: NodeId) {
    if let Ok(pos) = children.binary_search(&id) {
        children.remove(pos);
    }
}

impl Shard {
    pub fn new(id: ShardId) -> Self {
        Self {
            id,
            ..Default::default()
        }
    }

    pub fn user_count(&self) -> usize {
        self.user_rows.len()
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn uploadjob_count(&self) -> usize {
        self.uploadjobs.len()
    }

    /// Distinct names interned on this shard (observability only).
    pub fn interned_names(&self) -> usize {
        self.names.len()
    }

    // ----- slab plumbing ----------------------------------------------

    fn intern_name(&mut self, s: &str) -> CoreResult<NameId> {
        self.names
            .intern(s)
            .ok_or_else(|| CoreError::invalid("name arena exhausted"))
    }

    fn alloc_node_slot(&mut self, slot: NodeSlot) -> CoreResult<u32> {
        if let Some(free) = self.free_nodes.pop() {
            self.node_slots[free as usize] = slot;
            Ok(free)
        } else {
            let idx = to_u32(self.node_slots.len())
                .ok_or_else(|| CoreError::invalid("node slab exhausted"))?;
            self.node_slots.push(slot);
            Ok(idx)
        }
    }

    fn alloc_volume_slot(&mut self, slot: VolumeSlot) -> CoreResult<u32> {
        if let Some(free) = self.free_volumes.pop() {
            self.volume_slots[free as usize] = slot;
            Ok(free)
        } else {
            let idx = to_u32(self.volume_slots.len())
                .ok_or_else(|| CoreError::invalid("volume slab exhausted"))?;
            self.volume_slots.push(slot);
            Ok(idx)
        }
    }

    /// Materializes the DTO row for a node slot.
    fn node_row(&self, slot: u32) -> NodeRow {
        let s = &self.node_slots[slot as usize];
        NodeRow {
            node: s.node,
            volume: s.volume,
            parent: s.parent,
            kind: s.kind,
            name: Name::new(self.names.resolve(s.name)),
            content: s.content,
            size: s.size,
            generation: s.generation,
            is_live: s.is_live,
            created_at: s.created_at,
            changed_at: s.changed_at,
        }
    }

    /// Materializes the DTO row for a volume slot.
    fn volume_row(&self, idx: u32) -> VolumeRow {
        let v = &self.volume_slots[idx as usize];
        VolumeRow {
            volume: v.volume,
            owner: v.owner,
            kind: v.kind,
            name: Name::new(self.names.resolve(v.name)),
            generation: v.generation,
            created_at: v.created_at,
            node_count: v.node_count,
        }
    }

    fn volume_idx(&self, volume: VolumeId) -> CoreResult<u32> {
        self.volumes
            .get(&volume)
            .copied()
            .ok_or_else(|| CoreError::not_found(format!("volume {volume}")))
    }

    /// The slot index of `volume` after checking `owner` may write it —
    /// the slab equivalent of the old `volume_mut` authorization helper.
    fn owned_volume_idx(&self, owner: UserId, volume: VolumeId) -> CoreResult<u32> {
        let idx = self.volume_idx(volume)?;
        if self.volume_slots[idx as usize].owner != owner {
            return Err(CoreError::permission_denied(format!("volume {volume}")));
        }
        Ok(idx)
    }

    /// Drops log entries whose slot has since moved to a newer generation.
    /// Live entries stay in `(generation, node)` order (retain preserves
    /// order, and the log was sorted).
    fn maybe_compact_log(&mut self, vidx: u32) {
        let v = &self.volume_slots[vidx as usize];
        if v.log.len() < LOG_COMPACT_FLOOR || v.log.len() <= v.members.len().saturating_mul(2) {
            return;
        }
        let mut log = std::mem::take(&mut self.volume_slots[vidx as usize].log);
        log.retain(|&(generation, slot)| self.node_slots[slot as usize].generation == generation);
        self.volume_slots[vidx as usize].log = log;
    }

    /// Snapshot of every volume on this shard with live file/dir counts.
    pub fn volume_snapshot(&self) -> Vec<crate::store::VolumeSnapshot> {
        self.volume_slots
            .iter()
            .filter(|v| v.alive)
            .map(|vol| {
                let mut files = 0u64;
                let mut dirs = 0u64;
                for &slot in &vol.members {
                    let n = &self.node_slots[slot as usize];
                    if n.is_live {
                        match n.kind {
                            NodeKind::File => files += 1,
                            NodeKind::Directory => dirs += 1,
                        }
                    }
                }
                crate::store::VolumeSnapshot {
                    volume: vol.volume,
                    owner: vol.owner,
                    kind: vol.kind,
                    files,
                    dirs,
                    shared_to: 0,
                }
            })
            .collect()
    }

    // ----- users -------------------------------------------------------

    /// Creates a user and their root volume.
    pub fn create_user(
        &mut self,
        user: UserId,
        root_volume: VolumeId,
        now: SimTime,
    ) -> CoreResult<UserRow> {
        if self.users.get(user).is_some() {
            return Err(CoreError::conflict(format!("user {user} exists")));
        }
        let row = UserRow {
            user,
            shard: self.id,
            root_volume,
            created_at: now,
        };
        self.users
            .intern(user)
            .ok_or_else(|| CoreError::invalid("user arena exhausted"))?;
        self.user_rows.push(row.clone());
        let name = self.intern_name("Ubuntu One")?;
        let vidx = self.alloc_volume_slot(VolumeSlot {
            volume: root_volume,
            owner: user,
            kind: VolumeKind::Root,
            name,
            generation: 0,
            created_at: now,
            node_count: 0,
            alive: true,
            ..Default::default()
        })?;
        self.volumes.insert(root_volume, vidx);
        Ok(row)
    }

    /// `dal.get_user_data`.
    pub fn get_user_data(&self, user: UserId) -> CoreResult<UserRow> {
        self.users
            .get(user)
            .map(|slot| self.user_rows[slot as usize].clone())
            .ok_or_else(|| CoreError::not_found(format!("user {user}")))
    }

    /// `dal.get_root`.
    pub fn get_root(&self, user: UserId) -> CoreResult<VolumeRow> {
        let u = self.get_user_data(user)?;
        let idx = self
            .volumes
            .get(&u.root_volume)
            .copied()
            .ok_or_else(|| CoreError::not_found(format!("root volume of {user}")))?;
        Ok(self.volume_row(idx))
    }

    /// `dal.list_volumes` — root plus UDFs owned by the user (shares are
    /// resolved by the store layer).
    pub fn list_volumes(&self, user: UserId) -> CoreResult<Vec<VolumeRow>> {
        self.get_user_data(user)?;
        let mut vols: Vec<VolumeRow> = (0..self.volume_slots.len())
            .filter(|&i| {
                let v = &self.volume_slots[i];
                v.alive && v.owner == user
            })
            .map(|i| self.volume_row(i as u32))
            .collect();
        vols.sort_by_key(|v| v.volume);
        Ok(vols)
    }

    // ----- volumes -----------------------------------------------------

    /// `dal.create_udf`.
    pub fn create_udf(
        &mut self,
        user: UserId,
        volume: VolumeId,
        name: &str,
        now: SimTime,
    ) -> CoreResult<VolumeRow> {
        self.get_user_data(user)?;
        if name.is_empty() {
            return Err(CoreError::invalid("empty UDF name"));
        }
        // Same-name probe: a name never interned cannot name a volume, and
        // equal strings share one id, so the old string scan becomes a u32
        // compare.
        let dup = self.names.lookup(name).is_some_and(|id| {
            self.volume_slots
                .iter()
                .any(|v| v.alive && v.owner == user && v.name == id)
        });
        if dup {
            return Err(CoreError::conflict(format!("UDF '{name}' exists")));
        }
        let name_id = self.intern_name(name)?;
        let vidx = self.alloc_volume_slot(VolumeSlot {
            volume,
            owner: user,
            kind: VolumeKind::UserDefined,
            name: name_id,
            generation: 0,
            created_at: now,
            node_count: 0,
            alive: true,
            ..Default::default()
        })?;
        self.volumes.insert(volume, vidx);
        Ok(self.volume_row(vidx))
    }

    pub fn get_volume(&self, volume: VolumeId) -> CoreResult<VolumeRow> {
        Ok(self.volume_row(self.volume_idx(volume)?))
    }

    /// `dal.delete_volume` — the cascade RPC: removes the volume and every
    /// node it contains. The root volume cannot be deleted.
    pub fn delete_volume(&mut self, owner: UserId, volume: VolumeId) -> CoreResult<Vec<DeadNode>> {
        let vidx = self.volume_idx(volume)?;
        {
            let vol = &self.volume_slots[vidx as usize];
            if vol.owner != owner {
                return Err(CoreError::permission_denied(format!("volume {volume}")));
            }
            if vol.kind == VolumeKind::Root {
                return Err(CoreError::invalid("cannot delete the root volume"));
            }
        }
        // Take the whole slot: its member list, live-name map and log go
        // with it, so freed node slots cannot be referenced afterwards.
        let slot = std::mem::take(&mut self.volume_slots[vidx as usize]);
        let mut dead = Vec::with_capacity(slot.members.len());
        for nslot in slot.members {
            let n = &mut self.node_slots[nslot as usize];
            if n.is_live {
                dead.push(DeadNode {
                    node: n.node,
                    kind: n.kind,
                    content: n.content,
                    size: n.size,
                });
            }
            n.children = Vec::new();
            self.nodes.remove(&n.node);
            self.free_nodes.push(nslot);
        }
        // Abandon any in-flight uploads into the deleted volume.
        self.uploadjobs.retain(|_, j| j.volume != volume);
        self.volumes.remove(&volume);
        self.free_volumes.push(vidx);
        Ok(dead)
    }

    // ----- nodes -------------------------------------------------------

    fn check_parent(&self, volume: VolumeId, parent: Option<NodeId>) -> CoreResult<()> {
        let Some(parent) = parent else {
            return Ok(());
        };
        match self
            .nodes
            .get(&parent)
            .map(|&s| &self.node_slots[s as usize])
        {
            Some(p) if p.volume == volume && p.is_live && p.kind == NodeKind::Directory => Ok(()),
            Some(_) => Err(CoreError::invalid(format!(
                "parent {parent} is not a live directory of {volume}"
            ))),
            None => Err(CoreError::not_found(format!("parent {parent}"))),
        }
    }

    /// `dal.make_file` / `dal.make_dir`. Idempotent on (parent, name): if a
    /// live node with the same name exists under the same parent, it is
    /// returned unchanged — "this operation ... normally precedes a file
    /// upload" (Table 2), and the desktop client re-issues it freely.
    #[allow(clippy::too_many_arguments)]
    pub fn make_node(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node_id: NodeId,
        parent: Option<NodeId>,
        kind: NodeKind,
        name: &str,
        now: SimTime,
    ) -> CoreResult<NodeRow> {
        if name.is_empty() {
            return Err(CoreError::invalid("empty node name"));
        }
        let vidx = self.owned_volume_idx(owner, volume)?;
        self.check_parent(volume, parent)?;
        // Idempotency probe: only interned names can collide, so a miss in
        // the arena is a miss in the volume.
        if let Some(existing) = self.names.lookup(name).and_then(|id| {
            self.volume_slots[vidx as usize]
                .live_names
                .get(&(parent, id))
                .copied()
        }) {
            if self.node_slots[existing as usize].kind != kind {
                return Err(CoreError::conflict(format!(
                    "node '{name}' exists with different kind"
                )));
            }
            return Ok(self.node_row(existing));
        }
        let name_id = self.intern_name(name)?;
        let generation = {
            let vol = &mut self.volume_slots[vidx as usize];
            vol.generation += 1;
            vol.node_count += 1;
            vol.generation
        };
        let nslot = self.alloc_node_slot(NodeSlot {
            node: node_id,
            volume,
            parent,
            kind,
            name: name_id,
            content: None,
            size: 0,
            generation,
            is_live: true,
            created_at: now,
            changed_at: now,
            children: Vec::new(),
        })?;
        self.nodes.insert(node_id, nslot);
        {
            let vol = &mut self.volume_slots[vidx as usize];
            vol.members.push(nslot);
            vol.live_names.insert((parent, name_id), nslot);
            vol.log.push((generation, nslot));
        }
        if let Some(p) = parent {
            if let Some(&pslot) = self.nodes.get(&p) {
                child_insert(&mut self.node_slots[pslot as usize].children, node_id);
            }
        }
        Ok(self.node_row(nslot))
    }

    /// `dal.get_node`.
    pub fn get_node(&self, volume: VolumeId, node: NodeId) -> CoreResult<NodeRow> {
        match self.nodes.get(&node) {
            Some(&s)
                if self.node_slots[s as usize].volume == volume
                    && self.node_slots[s as usize].is_live =>
            {
                Ok(self.node_row(s))
            }
            _ => Err(CoreError::not_found(format!("node {node} in {volume}"))),
        }
    }

    /// `dal.make_content` — attaches uploaded content to a file node (the
    /// "equivalent of an inode", Table 4). Returns the replaced content, if
    /// any, so the caller can drop its dedup reference.
    #[allow(clippy::too_many_arguments)]
    pub fn make_content(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
        now: SimTime,
    ) -> CoreResult<(NodeRow, Option<ContentHash>)> {
        let vidx = self.owned_volume_idx(owner, volume)?;
        // The generation advances before the node lookup — a failed
        // make_content still burns a generation, as it always has.
        let generation = {
            let vol = &mut self.volume_slots[vidx as usize];
            vol.generation += 1;
            vol.generation
        };
        let nslot = self
            .nodes
            .get(&node)
            .copied()
            .filter(|&s| {
                let n = &self.node_slots[s as usize];
                n.volume == volume && n.is_live
            })
            .ok_or_else(|| CoreError::not_found(format!("node {node}")))?;
        let row = &mut self.node_slots[nslot as usize];
        if row.kind != NodeKind::File {
            return Err(CoreError::invalid("make_content on a directory"));
        }
        let old = row.content;
        row.content = Some(hash);
        row.size = size;
        row.generation = generation;
        row.changed_at = now;
        // The old log entry went stale the moment the slot's generation
        // moved; just append the new one.
        self.volume_slots[vidx as usize]
            .log
            .push((generation, nslot));
        self.maybe_compact_log(vidx);
        Ok((self.node_row(nslot), old))
    }

    /// `dal.unlink_node`. Deleting a directory cascades to everything under
    /// it (§5.2: "deleting a directory in U1 triggers the deletion of all
    /// the files it contains"). Returns every node that died.
    pub fn unlink(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node: NodeId,
        now: SimTime,
    ) -> CoreResult<Vec<DeadNode>> {
        let vidx = self.owned_volume_idx(owner, volume)?;
        let root = self
            .nodes
            .get(&node)
            .copied()
            .filter(|&s| {
                let n = &self.node_slots[s as usize];
                n.volume == volume && n.is_live
            })
            .map(|s| self.node_slots[s as usize].node)
            .ok_or_else(|| CoreError::not_found(format!("node {node}")))?;
        // Collect the subtree over the sorted live-children lists — the
        // same traversal order the previous `BTreeSet` index produced.
        let mut doomed = vec![root];
        let mut queue = vec![root];
        while let Some(cur) = queue.pop() {
            if let Some(&s) = self.nodes.get(&cur) {
                let kids = &self.node_slots[s as usize].children;
                doomed.extend(kids.iter().copied());
                queue.extend(kids.iter().copied());
            }
        }
        let generation = {
            let vol = &mut self.volume_slots[vidx as usize];
            vol.generation += 1;
            vol.node_count = vol.node_count.saturating_sub(doomed.len() as u64);
            vol.generation
        };
        let mut dead = Vec::with_capacity(doomed.len());
        let mut batch: Vec<(NodeId, u32)> = Vec::with_capacity(doomed.len());
        for nid in doomed {
            // Doomed ids were collected from live rows above; a missing row
            // means nothing to kill, not an error.
            let Some(&nslot) = self.nodes.get(&nid) else {
                continue;
            };
            let (parent, name_id) = {
                let row = &mut self.node_slots[nslot as usize];
                row.is_live = false;
                row.generation = generation;
                row.changed_at = now;
                dead.push(DeadNode {
                    node: row.node,
                    kind: row.kind,
                    content: row.content,
                    size: row.size,
                });
                row.children = Vec::new();
                (row.parent, row.name)
            };
            self.volume_slots[vidx as usize]
                .live_names
                .remove(&(parent, name_id));
            if let Some(p) = parent {
                if let Some(&pslot) = self.nodes.get(&p) {
                    child_remove(&mut self.node_slots[pslot as usize].children, nid);
                }
            }
            batch.push((nid, nslot));
        }
        // The whole batch shares one generation; append in node order so
        // the log stays sorted by (generation, node).
        batch.sort_by_key(|&(nid, _)| nid);
        self.volume_slots[vidx as usize]
            .log
            .extend(batch.into_iter().map(|(_, nslot)| (generation, nslot)));
        self.maybe_compact_log(vidx);
        Ok(dead)
    }

    /// `dal.move`.
    #[allow(clippy::too_many_arguments)]
    pub fn move_node(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: &str,
        now: SimTime,
    ) -> CoreResult<NodeRow> {
        if new_name.is_empty() {
            return Err(CoreError::invalid("empty node name"));
        }
        let vidx = self.owned_volume_idx(owner, volume)?;
        self.check_parent(volume, new_parent)?;
        // A directory cannot be moved under itself.
        if let Some(mut cursor) = new_parent {
            loop {
                if cursor == node {
                    return Err(CoreError::invalid("move would create a cycle"));
                }
                match self
                    .nodes
                    .get(&cursor)
                    .and_then(|&s| self.node_slots[s as usize].parent)
                {
                    Some(p) => cursor = p,
                    None => break,
                }
            }
        }
        let generation = {
            let vol = &mut self.volume_slots[vidx as usize];
            vol.generation += 1;
            vol.generation
        };
        let nslot = self
            .nodes
            .get(&node)
            .copied()
            .filter(|&s| {
                let n = &self.node_slots[s as usize];
                n.volume == volume && n.is_live
            })
            .ok_or_else(|| CoreError::not_found(format!("node {node}")))?;
        let new_name_id = self.intern_name(new_name)?;
        let (old_parent, old_name_id) = {
            let row = &mut self.node_slots[nslot as usize];
            let old_parent = row.parent;
            let old_name_id = std::mem::replace(&mut row.name, new_name_id);
            row.parent = new_parent;
            row.generation = generation;
            row.changed_at = now;
            (old_parent, old_name_id)
        };
        {
            let vol = &mut self.volume_slots[vidx as usize];
            vol.live_names.remove(&(old_parent, old_name_id));
            vol.live_names.insert((new_parent, new_name_id), nslot);
        }
        if old_parent != new_parent {
            if let Some(p) = old_parent {
                if let Some(&pslot) = self.nodes.get(&p) {
                    child_remove(&mut self.node_slots[pslot as usize].children, node);
                }
            }
            if let Some(p) = new_parent {
                if let Some(&pslot) = self.nodes.get(&p) {
                    child_insert(&mut self.node_slots[pslot as usize].children, node);
                }
            }
        }
        self.volume_slots[vidx as usize]
            .log
            .push((generation, nslot));
        self.maybe_compact_log(vidx);
        Ok(self.node_row(nslot))
    }

    /// `dal.get_delta` — every node changed after `from_generation`,
    /// including tombstones, plus the current generation.
    pub fn get_delta(
        &self,
        volume: VolumeId,
        from_generation: u64,
    ) -> CoreResult<(u64, Vec<NodeRow>)> {
        let vidx = self.volume_idx(volume)?;
        let vol = &self.volume_slots[vidx as usize];
        // The log is sorted by generation (monotone appends), each node
        // live exactly once at its current generation — so the read is a
        // binary search plus a filtered scan, never a volume scan.
        let start = vol.log.partition_point(|&(g, _)| g <= from_generation);
        let changed: Vec<NodeRow> = vol.log[start..]
            .iter()
            .filter(|&&(g, s)| self.node_slots[s as usize].generation == g)
            .map(|&(_, s)| self.node_row(s))
            .collect();
        Ok((vol.generation, changed))
    }

    /// `dal.get_from_scratch` — the cascade read: every live node of the
    /// volume (what a fresh client mirrors).
    pub fn get_from_scratch(&self, volume: VolumeId) -> CoreResult<(u64, Vec<NodeRow>)> {
        let vidx = self.volume_idx(volume)?;
        let vol = &self.volume_slots[vidx as usize];
        let mut live: Vec<NodeRow> = vol
            .members
            .iter()
            .filter(|&&s| self.node_slots[s as usize].is_live)
            .map(|&s| self.node_row(s))
            .collect();
        live.sort_by_key(|n| n.node);
        Ok((vol.generation, live))
    }

    // ----- upload jobs (Appendix A) -------------------------------------

    /// `dal.make_uploadjob`.
    #[allow(clippy::too_many_arguments)]
    pub fn make_uploadjob(
        &mut self,
        user: UserId,
        volume: VolumeId,
        node: NodeId,
        upload: UploadId,
        hash: ContentHash,
        declared_size: u64,
        now: SimTime,
    ) -> CoreResult<UploadJobRow> {
        self.volume_idx(volume)?;
        let row = UploadJobRow {
            upload,
            user,
            volume,
            node,
            hash,
            declared_size,
            state: UploadState::Created,
            multipart_id: None,
            part_sizes: Vec::new(),
            created_at: now,
            touched_at: now,
        };
        self.uploadjobs.insert(upload, row.clone());
        Ok(row)
    }

    /// `dal.get_uploadjob`.
    pub fn get_uploadjob(&self, upload: UploadId) -> CoreResult<UploadJobRow> {
        self.uploadjobs
            .get(&upload)
            .cloned()
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))
    }

    /// `dal.set_uploadjob_multipart_id`.
    pub fn set_uploadjob_multipart_id(
        &mut self,
        upload: UploadId,
        multipart_id: u64,
        now: SimTime,
    ) -> CoreResult<()> {
        let job = self
            .uploadjobs
            .get_mut(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))?;
        if job.multipart_id.is_some() {
            return Err(CoreError::conflict("multipart id already set"));
        }
        job.multipart_id = Some(multipart_id);
        job.state = UploadState::InProgress;
        job.touched_at = now;
        Ok(())
    }

    /// `dal.add_part_to_uploadjob`.
    pub fn add_part_to_uploadjob(
        &mut self,
        upload: UploadId,
        part_size: u64,
        now: SimTime,
    ) -> CoreResult<UploadJobRow> {
        let job = self
            .uploadjobs
            .get_mut(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))?;
        if job.state != UploadState::InProgress {
            return Err(CoreError::invalid("uploadjob has no multipart id yet"));
        }
        if part_size == 0 {
            return Err(CoreError::invalid("empty upload part"));
        }
        job.part_sizes.push(part_size);
        job.touched_at = now;
        Ok(job.clone())
    }

    /// `dal.touch_uploadjob` — client liveness check on a job.
    pub fn touch_uploadjob(&mut self, upload: UploadId, now: SimTime) -> CoreResult<()> {
        let job = self
            .uploadjobs
            .get_mut(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))?;
        job.touched_at = now;
        Ok(())
    }

    /// `dal.delete_uploadjob` — on commit or cancel.
    pub fn delete_uploadjob(&mut self, upload: UploadId) -> CoreResult<UploadJobRow> {
        self.uploadjobs
            .remove(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))
    }

    /// The weekly garbage collection: removes jobs untouched for longer
    /// than `max_age` and returns them so the object store can abort the
    /// corresponding multipart uploads.
    pub fn gc_uploadjobs(&mut self, now: SimTime, max_age: SimDuration) -> Vec<UploadJobRow> {
        let mut doomed: Vec<UploadId> = self
            .uploadjobs
            .values()
            .filter(|j| now.since(j.touched_at) > max_age)
            .map(|j| j.upload)
            .collect();
        // The reaped jobs are traced one record each at the same timestamp,
        // so their order must not depend on hash-map iteration order.
        doomed.sort();
        doomed
            .into_iter()
            .filter_map(|id| self.uploadjobs.remove(&id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Shard, UserId, VolumeId) {
        let mut shard = Shard::new(ShardId::new(0));
        let user = UserId::new(1);
        let root = VolumeId::new(100);
        shard.create_user(user, root, SimTime::ZERO).unwrap();
        (shard, user, root)
    }

    #[test]
    fn create_user_makes_root_volume() {
        let (shard, user, root) = setup();
        let vols = shard.list_volumes(user).unwrap();
        assert_eq!(vols.len(), 1);
        assert_eq!(vols[0].volume, root);
        assert_eq!(vols[0].kind, VolumeKind::Root);
        assert_eq!(shard.get_root(user).unwrap().volume, root);
        assert_eq!(shard.get_user_data(user).unwrap().shard, ShardId::new(0));
    }

    #[test]
    fn duplicate_user_is_a_conflict() {
        let (mut shard, user, _) = setup();
        assert!(shard
            .create_user(user, VolumeId::new(200), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn make_node_bumps_generation_and_count() {
        let (mut shard, user, root) = setup();
        let n1 = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a.txt",
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n1.generation, 1);
        let vol = shard.get_volume(root).unwrap();
        assert_eq!(vol.generation, 1);
        assert_eq!(vol.node_count, 1);
    }

    #[test]
    fn make_node_is_idempotent_on_name() {
        let (mut shard, user, root) = setup();
        let n1 = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let n2 = shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n1.node, n2.node, "same name resolves to same node");
        assert_eq!(shard.get_volume(root).unwrap().node_count, 1);
        // Same name but different kind is a conflict.
        assert!(shard
            .make_node(
                user,
                root,
                NodeId::new(3),
                None,
                NodeKind::Directory,
                "a",
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn make_node_validates_parent() {
        let (mut shard, user, root) = setup();
        // Nonexistent parent.
        assert!(shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                Some(NodeId::new(99)),
                NodeKind::File,
                "a",
                SimTime::ZERO
            )
            .is_err());
        // File as parent.
        shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "f",
                SimTime::ZERO,
            )
            .unwrap();
        assert!(shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                Some(NodeId::new(1)),
                NodeKind::File,
                "b",
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn unlink_directory_cascades() {
        let (mut shard, user, root) = setup();
        let dir = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::Directory,
                "d",
                SimTime::ZERO,
            )
            .unwrap();
        let sub = shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                Some(dir.node),
                NodeKind::Directory,
                "sub",
                SimTime::ZERO,
            )
            .unwrap();
        shard
            .make_node(
                user,
                root,
                NodeId::new(3),
                Some(sub.node),
                NodeKind::File,
                "f",
                SimTime::ZERO,
            )
            .unwrap();
        let dead = shard
            .unlink(user, root, dir.node, SimTime::from_secs(5))
            .unwrap();
        assert_eq!(dead.len(), 3);
        assert_eq!(shard.get_volume(root).unwrap().node_count, 0);
        assert!(shard.get_node(root, NodeId::new(3)).is_err());
    }

    #[test]
    fn delta_reports_changes_and_tombstones() {
        let (mut shard, user, root) = setup();
        let n = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let (gen1, delta) = shard.get_delta(root, 0).unwrap();
        assert_eq!(gen1, 1);
        assert_eq!(delta.len(), 1);
        // No changes since gen1.
        let (_, delta) = shard.get_delta(root, gen1).unwrap();
        assert!(delta.is_empty());
        // Unlink produces a tombstone entry.
        shard
            .unlink(user, root, n.node, SimTime::from_secs(1))
            .unwrap();
        let (gen2, delta) = shard.get_delta(root, gen1).unwrap();
        assert_eq!(gen2, 2);
        assert_eq!(delta.len(), 1);
        assert!(!delta[0].is_live);
    }

    #[test]
    fn make_content_replaces_and_reports_old_hash() {
        let (mut shard, user, root) = setup();
        let n = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let h1 = ContentHash::from_content_id(1);
        let h2 = ContentHash::from_content_id(2);
        let (row, old) = shard
            .make_content(user, root, n.node, h1, 100, SimTime::ZERO)
            .unwrap();
        assert_eq!(old, None);
        assert_eq!(row.size, 100);
        let (row, old) = shard
            .make_content(user, root, n.node, h2, 200, SimTime::ZERO)
            .unwrap();
        assert_eq!(old, Some(h1));
        assert_eq!(row.content, Some(h2));
    }

    #[test]
    fn move_rejects_cycles() {
        let (mut shard, user, root) = setup();
        let a = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::Directory,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let b = shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                Some(a.node),
                NodeKind::Directory,
                "b",
                SimTime::ZERO,
            )
            .unwrap();
        // a -> under b (its own child) must fail.
        assert!(shard
            .move_node(user, root, a.node, Some(b.node), "a", SimTime::ZERO)
            .is_err());
        // b -> root level is fine.
        let moved = shard
            .move_node(user, root, b.node, None, "b2", SimTime::ZERO)
            .unwrap();
        assert_eq!(moved.parent, None);
        assert_eq!(moved.name, "b2");
    }

    #[test]
    fn delete_volume_cascades_and_is_forbidden_for_root() {
        let (mut shard, user, root) = setup();
        assert!(shard.delete_volume(user, root).is_err());
        let udf = shard
            .create_udf(user, VolumeId::new(200), "Photos", SimTime::ZERO)
            .unwrap();
        shard
            .make_node(
                user,
                udf.volume,
                NodeId::new(1),
                None,
                NodeKind::File,
                "x",
                SimTime::ZERO,
            )
            .unwrap();
        let dead = shard.delete_volume(user, udf.volume).unwrap();
        assert_eq!(dead.len(), 1);
        assert!(shard.get_volume(udf.volume).is_err());
    }

    #[test]
    fn deleted_volume_slots_are_recycled_safely() {
        let (mut shard, user, _root) = setup();
        // Create a UDF with nodes, delete it, create another: the new
        // volume must reuse the freed slots without leaking old state.
        let udf1 = shard
            .create_udf(user, VolumeId::new(200), "One", SimTime::ZERO)
            .unwrap();
        for i in 0..5 {
            shard
                .make_node(
                    user,
                    udf1.volume,
                    NodeId::new(10 + i),
                    None,
                    NodeKind::File,
                    &format!("f{i}"),
                    SimTime::ZERO,
                )
                .unwrap();
        }
        shard.delete_volume(user, udf1.volume).unwrap();
        let udf2 = shard
            .create_udf(user, VolumeId::new(201), "Two", SimTime::ZERO)
            .unwrap();
        assert_eq!(udf2.generation, 0);
        assert_eq!(udf2.node_count, 0);
        let (generation, live) = shard.get_from_scratch(udf2.volume).unwrap();
        assert_eq!(generation, 0);
        assert!(live.is_empty(), "recycled volume slot must start empty");
        // Node slots are recycled too: new nodes land in the new volume.
        let n = shard
            .make_node(
                user,
                udf2.volume,
                NodeId::new(50),
                None,
                NodeKind::File,
                "fresh",
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n.name, "fresh");
        assert_eq!(n.generation, 1);
        let (_, delta) = shard.get_delta(udf2.volume, 0).unwrap();
        assert_eq!(delta.len(), 1, "delta must not see the old volume's log");
        // The old volume's ids are gone.
        assert!(shard.get_node(udf2.volume, NodeId::new(10)).is_err());
    }

    #[test]
    fn change_log_compaction_preserves_delta_semantics() {
        let (mut shard, user, root) = setup();
        let n = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "hot",
                SimTime::ZERO,
            )
            .unwrap();
        // Rewrite the same file far past the compaction floor: the log
        // accumulates stale entries and must compact without losing the
        // node's current entry.
        let mut last_generation = 0;
        for i in 0..300u64 {
            let (row, _) = shard
                .make_content(
                    user,
                    root,
                    n.node,
                    ContentHash::from_content_id(i + 1),
                    i + 1,
                    SimTime::from_secs(i),
                )
                .unwrap();
            last_generation = row.generation;
        }
        // From generation zero, exactly one (current) entry is visible.
        let (generation, delta) = shard.get_delta(root, 0).unwrap();
        assert_eq!(generation, last_generation);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].generation, last_generation);
        assert_eq!(delta[0].size, 300);
        // From just before the last change, still exactly one.
        let (_, delta) = shard.get_delta(root, last_generation - 1).unwrap();
        assert_eq!(delta.len(), 1);
        // From the current generation, nothing.
        let (_, delta) = shard.get_delta(root, last_generation).unwrap();
        assert!(delta.is_empty());
    }

    #[test]
    fn permission_checks_apply() {
        let (mut shard, _user, root) = setup();
        let other = UserId::new(2);
        shard
            .create_user(other, VolumeId::new(300), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            shard.make_node(
                other,
                root,
                NodeId::new(9),
                None,
                NodeKind::File,
                "x",
                SimTime::ZERO
            ),
            Err(CoreError::PermissionDenied(_))
        ));
        assert!(matches!(
            shard.delete_volume(other, root),
            Err(CoreError::PermissionDenied(_))
        ));
    }

    #[test]
    fn uploadjob_lifecycle_and_gc() {
        let (mut shard, user, root) = setup();
        let n = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "big",
                SimTime::ZERO,
            )
            .unwrap();
        let up = UploadId::new(50);
        let h = ContentHash::from_content_id(9);
        shard
            .make_uploadjob(user, root, n.node, up, h, 10_000_000, SimTime::ZERO)
            .unwrap();
        // Parts before multipart id are rejected.
        assert!(shard
            .add_part_to_uploadjob(up, 5_000_000, SimTime::ZERO)
            .is_err());
        shard
            .set_uploadjob_multipart_id(up, 777, SimTime::ZERO)
            .unwrap();
        assert!(shard
            .set_uploadjob_multipart_id(up, 778, SimTime::ZERO)
            .is_err());
        shard
            .add_part_to_uploadjob(up, 5_000_000, SimTime::ZERO)
            .unwrap();
        let job = shard
            .add_part_to_uploadjob(up, 5_000_000, SimTime::ZERO)
            .unwrap();
        assert!(job.is_complete());
        // GC: a week-old untouched job is reaped, a fresh one is not.
        let week = SimDuration::from_days(7);
        let reaped = shard.gc_uploadjobs(SimTime::from_days(3), week);
        assert!(reaped.is_empty());
        let reaped = shard.gc_uploadjobs(SimTime::from_days(8), week);
        assert_eq!(reaped.len(), 1);
        assert!(shard.get_uploadjob(up).is_err());
    }
}
