//! One metadata shard.
//!
//! A shard owns every row of the users routed to it: their volumes, the
//! nodes inside those volumes, and their in-flight upload jobs. All methods
//! take the *resolved volume owner* — the [`store`](crate::store) layer is
//! responsible for routing and for authorizing shared-volume access, which
//! is the only case where a request involves a second shard (§3.4).
//!
//! Reads take the shard lock shared; the paper calls this data model
//! "lockless" because read RPCs exploit parallel access to the shard pair
//! and ordinary operations never span shards.

use crate::model::{NodeRow, UploadJobRow, UploadState, UserRow, VolumeRow};
use std::collections::{BTreeSet, HashMap, HashSet};
use u1_core::{
    ContentHash, CoreError, CoreResult, NodeId, NodeKind, ShardId, SimDuration, SimTime, UploadId,
    UserId, VolumeId, VolumeKind,
};

/// A deleted node reported back so the caller can release content refs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadNode {
    pub node: NodeId,
    pub kind: NodeKind,
    pub content: Option<ContentHash>,
    pub size: u64,
}

/// The mutable tables of one shard.
#[derive(Debug, Default)]
pub struct Shard {
    pub id: ShardId,
    users: HashMap<UserId, UserRow>,
    volumes: HashMap<VolumeId, VolumeRow>,
    nodes: HashMap<NodeId, NodeRow>,
    /// Secondary index: nodes per volume (live and tombstoned).
    volume_nodes: HashMap<VolumeId, HashSet<NodeId>>,
    /// Secondary index: live `(parent, name)` → node, per volume. Backs
    /// `make_node`'s idempotency probe without scanning the volume.
    live_names: HashMap<VolumeId, HashMap<Option<NodeId>, HashMap<String, NodeId>>>,
    /// Secondary index: per-volume change log ordered by
    /// `(generation, node)`, one entry per node at its *current*
    /// generation. Backs `get_delta` range scans.
    volume_log: HashMap<VolumeId, BTreeSet<(u64, NodeId)>>,
    /// Secondary index: live children of each directory (`unlink`'s
    /// cascade walk). Ordered so cascade output is iteration-order-free.
    children: HashMap<NodeId, BTreeSet<NodeId>>,
    uploadjobs: HashMap<UploadId, UploadJobRow>,
}

impl Shard {
    pub fn new(id: ShardId) -> Self {
        Self {
            id,
            ..Default::default()
        }
    }

    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn uploadjob_count(&self) -> usize {
        self.uploadjobs.len()
    }

    /// Snapshot of every volume on this shard with live file/dir counts.
    pub fn volume_snapshot(&self) -> Vec<crate::store::VolumeSnapshot> {
        self.volumes
            .values()
            .map(|vol| {
                let mut files = 0u64;
                let mut dirs = 0u64;
                for nid in self.volume_nodes.get(&vol.volume).into_iter().flatten() {
                    if let Some(n) = self.nodes.get(nid) {
                        if n.is_live {
                            match n.kind {
                                NodeKind::File => files += 1,
                                NodeKind::Directory => dirs += 1,
                            }
                        }
                    }
                }
                crate::store::VolumeSnapshot {
                    volume: vol.volume,
                    owner: vol.owner,
                    kind: vol.kind,
                    files,
                    dirs,
                    shared_to: 0,
                }
            })
            .collect()
    }

    // ----- users -------------------------------------------------------

    /// Creates a user and their root volume.
    pub fn create_user(
        &mut self,
        user: UserId,
        root_volume: VolumeId,
        now: SimTime,
    ) -> CoreResult<UserRow> {
        if self.users.contains_key(&user) {
            return Err(CoreError::conflict(format!("user {user} exists")));
        }
        let row = UserRow {
            user,
            shard: self.id,
            root_volume,
            created_at: now,
        };
        self.users.insert(user, row.clone());
        self.volumes.insert(
            root_volume,
            VolumeRow {
                volume: root_volume,
                owner: user,
                kind: VolumeKind::Root,
                name: "Ubuntu One".to_string(),
                generation: 0,
                created_at: now,
                node_count: 0,
            },
        );
        self.volume_nodes.insert(root_volume, HashSet::new());
        Ok(row)
    }

    /// `dal.get_user_data`.
    pub fn get_user_data(&self, user: UserId) -> CoreResult<UserRow> {
        self.users
            .get(&user)
            .cloned()
            .ok_or_else(|| CoreError::not_found(format!("user {user}")))
    }

    /// `dal.get_root`.
    pub fn get_root(&self, user: UserId) -> CoreResult<VolumeRow> {
        let u = self.get_user_data(user)?;
        self.volumes
            .get(&u.root_volume)
            .cloned()
            .ok_or_else(|| CoreError::not_found(format!("root volume of {user}")))
    }

    /// `dal.list_volumes` — root plus UDFs owned by the user (shares are
    /// resolved by the store layer).
    pub fn list_volumes(&self, user: UserId) -> CoreResult<Vec<VolumeRow>> {
        self.get_user_data(user)?;
        let mut vols: Vec<VolumeRow> = self
            .volumes
            .values()
            .filter(|v| v.owner == user)
            .cloned()
            .collect();
        vols.sort_by_key(|v| v.volume);
        Ok(vols)
    }

    // ----- volumes -----------------------------------------------------

    /// `dal.create_udf`.
    pub fn create_udf(
        &mut self,
        user: UserId,
        volume: VolumeId,
        name: &str,
        now: SimTime,
    ) -> CoreResult<VolumeRow> {
        self.get_user_data(user)?;
        if name.is_empty() {
            return Err(CoreError::invalid("empty UDF name"));
        }
        if self
            .volumes
            .values()
            .any(|v| v.owner == user && v.name == name)
        {
            return Err(CoreError::conflict(format!("UDF '{name}' exists")));
        }
        let row = VolumeRow {
            volume,
            owner: user,
            kind: VolumeKind::UserDefined,
            name: name.to_string(),
            generation: 0,
            created_at: now,
            node_count: 0,
        };
        self.volumes.insert(volume, row.clone());
        self.volume_nodes.insert(volume, HashSet::new());
        Ok(row)
    }

    pub fn get_volume(&self, volume: VolumeId) -> CoreResult<VolumeRow> {
        self.volumes
            .get(&volume)
            .cloned()
            .ok_or_else(|| CoreError::not_found(format!("volume {volume}")))
    }

    /// `dal.delete_volume` — the cascade RPC: removes the volume and every
    /// node it contains. The root volume cannot be deleted.
    pub fn delete_volume(&mut self, owner: UserId, volume: VolumeId) -> CoreResult<Vec<DeadNode>> {
        let vol = self.get_volume(volume)?;
        if vol.owner != owner {
            return Err(CoreError::permission_denied(format!("volume {volume}")));
        }
        if vol.kind == VolumeKind::Root {
            return Err(CoreError::invalid("cannot delete the root volume"));
        }
        let node_ids = self.volume_nodes.remove(&volume).unwrap_or_default();
        self.live_names.remove(&volume);
        self.volume_log.remove(&volume);
        let mut dead = Vec::with_capacity(node_ids.len());
        for nid in node_ids {
            self.children.remove(&nid);
            if let Some(row) = self.nodes.remove(&nid) {
                if row.is_live {
                    dead.push(DeadNode {
                        node: row.node,
                        kind: row.kind,
                        content: row.content,
                        size: row.size,
                    });
                }
            }
        }
        // Abandon any in-flight uploads into the deleted volume.
        self.uploadjobs.retain(|_, j| j.volume != volume);
        self.volumes.remove(&volume);
        Ok(dead)
    }

    // ----- nodes -------------------------------------------------------

    fn volume_mut(&mut self, owner: UserId, volume: VolumeId) -> CoreResult<&mut VolumeRow> {
        let vol = self
            .volumes
            .get_mut(&volume)
            .ok_or_else(|| CoreError::not_found(format!("volume {volume}")))?;
        if vol.owner != owner {
            return Err(CoreError::permission_denied(format!("volume {volume}")));
        }
        Ok(vol)
    }

    fn check_parent(&self, volume: VolumeId, parent: Option<NodeId>) -> CoreResult<()> {
        let Some(parent) = parent else {
            return Ok(());
        };
        match self.nodes.get(&parent) {
            Some(p) if p.volume == volume && p.is_live && p.kind == NodeKind::Directory => Ok(()),
            Some(_) => Err(CoreError::invalid(format!(
                "parent {parent} is not a live directory of {volume}"
            ))),
            None => Err(CoreError::not_found(format!("parent {parent}"))),
        }
    }

    /// `dal.make_file` / `dal.make_dir`. Idempotent on (parent, name): if a
    /// live node with the same name exists under the same parent, it is
    /// returned unchanged — "this operation ... normally precedes a file
    /// upload" (Table 2), and the desktop client re-issues it freely.
    #[allow(clippy::too_many_arguments)]
    pub fn make_node(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node_id: NodeId,
        parent: Option<NodeId>,
        kind: NodeKind,
        name: &str,
        now: SimTime,
    ) -> CoreResult<NodeRow> {
        if name.is_empty() {
            return Err(CoreError::invalid("empty node name"));
        }
        self.volume_mut(owner, volume)?;
        self.check_parent(volume, parent)?;
        if let Some(existing) = self
            .live_names
            .get(&volume)
            .and_then(|m| m.get(&parent))
            .and_then(|names| names.get(name))
            .and_then(|nid| self.nodes.get(nid))
        {
            if existing.kind != kind {
                return Err(CoreError::conflict(format!(
                    "node '{name}' exists with different kind"
                )));
            }
            return Ok(existing.clone());
        }
        let vol = self.volume_mut(owner, volume)?;
        vol.generation += 1;
        vol.node_count += 1;
        let generation = vol.generation;
        let row = NodeRow {
            node: node_id,
            volume,
            parent,
            kind,
            name: name.to_string(),
            content: None,
            size: 0,
            generation,
            is_live: true,
            created_at: now,
            changed_at: now,
        };
        self.nodes.insert(node_id, row.clone());
        self.volume_nodes.entry(volume).or_default().insert(node_id);
        self.live_names
            .entry(volume)
            .or_default()
            .entry(parent)
            .or_default()
            .insert(name.to_string(), node_id);
        self.volume_log
            .entry(volume)
            .or_default()
            .insert((generation, node_id));
        if let Some(p) = parent {
            self.children.entry(p).or_default().insert(node_id);
        }
        Ok(row)
    }

    /// `dal.get_node`.
    pub fn get_node(&self, volume: VolumeId, node: NodeId) -> CoreResult<NodeRow> {
        match self.nodes.get(&node) {
            Some(n) if n.volume == volume && n.is_live => Ok(n.clone()),
            _ => Err(CoreError::not_found(format!("node {node} in {volume}"))),
        }
    }

    /// `dal.make_content` — attaches uploaded content to a file node (the
    /// "equivalent of an inode", Table 4). Returns the replaced content, if
    /// any, so the caller can drop its dedup reference.
    #[allow(clippy::too_many_arguments)]
    pub fn make_content(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
        now: SimTime,
    ) -> CoreResult<(NodeRow, Option<ContentHash>)> {
        self.volume_mut(owner, volume)?;
        let generation = {
            let vol = self.volume_mut(owner, volume)?;
            vol.generation += 1;
            vol.generation
        };
        let row = self
            .nodes
            .get_mut(&node)
            .filter(|n| n.volume == volume && n.is_live)
            .ok_or_else(|| CoreError::not_found(format!("node {node}")))?;
        if row.kind != NodeKind::File {
            return Err(CoreError::invalid("make_content on a directory"));
        }
        let old = row.content;
        let old_generation = row.generation;
        row.content = Some(hash);
        row.size = size;
        row.generation = generation;
        row.changed_at = now;
        let result = (row.clone(), old);
        let log = self.volume_log.entry(volume).or_default();
        log.remove(&(old_generation, node));
        log.insert((generation, node));
        Ok(result)
    }

    /// `dal.unlink_node`. Deleting a directory cascades to everything under
    /// it (§5.2: "deleting a directory in U1 triggers the deletion of all
    /// the files it contains"). Returns every node that died.
    pub fn unlink(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node: NodeId,
        now: SimTime,
    ) -> CoreResult<Vec<DeadNode>> {
        self.volume_mut(owner, volume)?;
        let root = self
            .nodes
            .get(&node)
            .filter(|n| n.volume == volume && n.is_live)
            .ok_or_else(|| CoreError::not_found(format!("node {node}")))?
            .node;
        // Collect the subtree (BFS over the live-children index).
        let mut doomed = vec![root];
        let mut queue = vec![root];
        while let Some(cur) = queue.pop() {
            if let Some(kids) = self.children.get(&cur) {
                doomed.extend(kids.iter().copied());
                queue.extend(kids.iter().copied());
            }
        }
        let generation = {
            let vol = self.volume_mut(owner, volume)?;
            vol.generation += 1;
            vol.node_count = vol.node_count.saturating_sub(doomed.len() as u64);
            vol.generation
        };
        let mut dead = Vec::with_capacity(doomed.len());
        for nid in doomed {
            // Doomed ids were collected from live rows above; a missing row
            // means nothing to kill, not an error.
            let Some(row) = self.nodes.get_mut(&nid) else {
                continue;
            };
            let old_generation = row.generation;
            row.is_live = false;
            row.generation = generation;
            row.changed_at = now;
            dead.push(DeadNode {
                node: row.node,
                kind: row.kind,
                content: row.content,
                size: row.size,
            });
            if let Some(names) = self
                .live_names
                .get_mut(&volume)
                .and_then(|m| m.get_mut(&row.parent))
            {
                names.remove(&row.name);
            }
            if let Some(p) = row.parent {
                if let Some(kids) = self.children.get_mut(&p) {
                    kids.remove(&nid);
                }
            }
            self.children.remove(&nid);
            let log = self.volume_log.entry(volume).or_default();
            log.remove(&(old_generation, nid));
            log.insert((generation, nid));
        }
        Ok(dead)
    }

    /// `dal.move`.
    #[allow(clippy::too_many_arguments)]
    pub fn move_node(
        &mut self,
        owner: UserId,
        volume: VolumeId,
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: &str,
        now: SimTime,
    ) -> CoreResult<NodeRow> {
        if new_name.is_empty() {
            return Err(CoreError::invalid("empty node name"));
        }
        self.volume_mut(owner, volume)?;
        self.check_parent(volume, new_parent)?;
        // A directory cannot be moved under itself.
        if let Some(mut cursor) = new_parent {
            loop {
                if cursor == node {
                    return Err(CoreError::invalid("move would create a cycle"));
                }
                match self.nodes.get(&cursor).and_then(|n| n.parent) {
                    Some(p) => cursor = p,
                    None => break,
                }
            }
        }
        let generation = {
            let vol = self.volume_mut(owner, volume)?;
            vol.generation += 1;
            vol.generation
        };
        let row = self
            .nodes
            .get_mut(&node)
            .filter(|n| n.volume == volume && n.is_live)
            .ok_or_else(|| CoreError::not_found(format!("node {node}")))?;
        let old_parent = row.parent;
        let old_name = std::mem::replace(&mut row.name, new_name.to_string());
        let old_generation = row.generation;
        row.parent = new_parent;
        row.generation = generation;
        row.changed_at = now;
        let result = row.clone();
        let names = self.live_names.entry(volume).or_default();
        if let Some(old_bucket) = names.get_mut(&old_parent) {
            old_bucket.remove(&old_name);
        }
        names
            .entry(new_parent)
            .or_default()
            .insert(new_name.to_string(), node);
        if old_parent != new_parent {
            if let Some(p) = old_parent {
                if let Some(kids) = self.children.get_mut(&p) {
                    kids.remove(&node);
                }
            }
            if let Some(p) = new_parent {
                self.children.entry(p).or_default().insert(node);
            }
        }
        let log = self.volume_log.entry(volume).or_default();
        log.remove(&(old_generation, node));
        log.insert((generation, node));
        Ok(result)
    }

    /// `dal.get_delta` — every node changed after `from_generation`,
    /// including tombstones, plus the current generation.
    pub fn get_delta(
        &self,
        volume: VolumeId,
        from_generation: u64,
    ) -> CoreResult<(u64, Vec<NodeRow>)> {
        let vol = self.get_volume(volume)?;
        // The log holds each node once, at its current generation, ordered
        // by (generation, node) — the canonical delta order — so the read
        // is O(log n + |delta|) instead of a volume scan.
        let changed: Vec<NodeRow> = self
            .volume_log
            .get(&volume)
            .into_iter()
            .flat_map(|log| log.range((from_generation.saturating_add(1), NodeId::new(0))..))
            .filter_map(|(_, nid)| self.nodes.get(nid))
            .cloned()
            .collect();
        Ok((vol.generation, changed))
    }

    /// `dal.get_from_scratch` — the cascade read: every live node of the
    /// volume (what a fresh client mirrors).
    pub fn get_from_scratch(&self, volume: VolumeId) -> CoreResult<(u64, Vec<NodeRow>)> {
        let vol = self.get_volume(volume)?;
        let mut live: Vec<NodeRow> = self
            .volume_nodes
            .get(&volume)
            .into_iter()
            .flatten()
            .filter_map(|nid| self.nodes.get(nid))
            .filter(|n| n.is_live)
            .cloned()
            .collect();
        live.sort_by_key(|n| n.node);
        Ok((vol.generation, live))
    }

    // ----- upload jobs (Appendix A) -------------------------------------

    /// `dal.make_uploadjob`.
    #[allow(clippy::too_many_arguments)]
    pub fn make_uploadjob(
        &mut self,
        user: UserId,
        volume: VolumeId,
        node: NodeId,
        upload: UploadId,
        hash: ContentHash,
        declared_size: u64,
        now: SimTime,
    ) -> CoreResult<UploadJobRow> {
        self.get_volume(volume)?;
        let row = UploadJobRow {
            upload,
            user,
            volume,
            node,
            hash,
            declared_size,
            state: UploadState::Created,
            multipart_id: None,
            part_sizes: Vec::new(),
            created_at: now,
            touched_at: now,
        };
        self.uploadjobs.insert(upload, row.clone());
        Ok(row)
    }

    /// `dal.get_uploadjob`.
    pub fn get_uploadjob(&self, upload: UploadId) -> CoreResult<UploadJobRow> {
        self.uploadjobs
            .get(&upload)
            .cloned()
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))
    }

    /// `dal.set_uploadjob_multipart_id`.
    pub fn set_uploadjob_multipart_id(
        &mut self,
        upload: UploadId,
        multipart_id: u64,
        now: SimTime,
    ) -> CoreResult<()> {
        let job = self
            .uploadjobs
            .get_mut(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))?;
        if job.multipart_id.is_some() {
            return Err(CoreError::conflict("multipart id already set"));
        }
        job.multipart_id = Some(multipart_id);
        job.state = UploadState::InProgress;
        job.touched_at = now;
        Ok(())
    }

    /// `dal.add_part_to_uploadjob`.
    pub fn add_part_to_uploadjob(
        &mut self,
        upload: UploadId,
        part_size: u64,
        now: SimTime,
    ) -> CoreResult<UploadJobRow> {
        let job = self
            .uploadjobs
            .get_mut(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))?;
        if job.state != UploadState::InProgress {
            return Err(CoreError::invalid("uploadjob has no multipart id yet"));
        }
        if part_size == 0 {
            return Err(CoreError::invalid("empty upload part"));
        }
        job.part_sizes.push(part_size);
        job.touched_at = now;
        Ok(job.clone())
    }

    /// `dal.touch_uploadjob` — client liveness check on a job.
    pub fn touch_uploadjob(&mut self, upload: UploadId, now: SimTime) -> CoreResult<()> {
        let job = self
            .uploadjobs
            .get_mut(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))?;
        job.touched_at = now;
        Ok(())
    }

    /// `dal.delete_uploadjob` — on commit or cancel.
    pub fn delete_uploadjob(&mut self, upload: UploadId) -> CoreResult<UploadJobRow> {
        self.uploadjobs
            .remove(&upload)
            .ok_or_else(|| CoreError::not_found(format!("uploadjob {upload}")))
    }

    /// The weekly garbage collection: removes jobs untouched for longer
    /// than `max_age` and returns them so the object store can abort the
    /// corresponding multipart uploads.
    pub fn gc_uploadjobs(&mut self, now: SimTime, max_age: SimDuration) -> Vec<UploadJobRow> {
        let mut doomed: Vec<UploadId> = self
            .uploadjobs
            .values()
            .filter(|j| now.since(j.touched_at) > max_age)
            .map(|j| j.upload)
            .collect();
        // The reaped jobs are traced one record each at the same timestamp,
        // so their order must not depend on hash-map iteration order.
        doomed.sort();
        doomed
            .into_iter()
            .filter_map(|id| self.uploadjobs.remove(&id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Shard, UserId, VolumeId) {
        let mut shard = Shard::new(ShardId::new(0));
        let user = UserId::new(1);
        let root = VolumeId::new(100);
        shard.create_user(user, root, SimTime::ZERO).unwrap();
        (shard, user, root)
    }

    #[test]
    fn create_user_makes_root_volume() {
        let (shard, user, root) = setup();
        let vols = shard.list_volumes(user).unwrap();
        assert_eq!(vols.len(), 1);
        assert_eq!(vols[0].volume, root);
        assert_eq!(vols[0].kind, VolumeKind::Root);
        assert_eq!(shard.get_root(user).unwrap().volume, root);
        assert_eq!(shard.get_user_data(user).unwrap().shard, ShardId::new(0));
    }

    #[test]
    fn duplicate_user_is_a_conflict() {
        let (mut shard, user, _) = setup();
        assert!(shard
            .create_user(user, VolumeId::new(200), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn make_node_bumps_generation_and_count() {
        let (mut shard, user, root) = setup();
        let n1 = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a.txt",
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n1.generation, 1);
        let vol = shard.get_volume(root).unwrap();
        assert_eq!(vol.generation, 1);
        assert_eq!(vol.node_count, 1);
    }

    #[test]
    fn make_node_is_idempotent_on_name() {
        let (mut shard, user, root) = setup();
        let n1 = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let n2 = shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n1.node, n2.node, "same name resolves to same node");
        assert_eq!(shard.get_volume(root).unwrap().node_count, 1);
        // Same name but different kind is a conflict.
        assert!(shard
            .make_node(
                user,
                root,
                NodeId::new(3),
                None,
                NodeKind::Directory,
                "a",
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn make_node_validates_parent() {
        let (mut shard, user, root) = setup();
        // Nonexistent parent.
        assert!(shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                Some(NodeId::new(99)),
                NodeKind::File,
                "a",
                SimTime::ZERO
            )
            .is_err());
        // File as parent.
        shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "f",
                SimTime::ZERO,
            )
            .unwrap();
        assert!(shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                Some(NodeId::new(1)),
                NodeKind::File,
                "b",
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn unlink_directory_cascades() {
        let (mut shard, user, root) = setup();
        let dir = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::Directory,
                "d",
                SimTime::ZERO,
            )
            .unwrap();
        let sub = shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                Some(dir.node),
                NodeKind::Directory,
                "sub",
                SimTime::ZERO,
            )
            .unwrap();
        shard
            .make_node(
                user,
                root,
                NodeId::new(3),
                Some(sub.node),
                NodeKind::File,
                "f",
                SimTime::ZERO,
            )
            .unwrap();
        let dead = shard
            .unlink(user, root, dir.node, SimTime::from_secs(5))
            .unwrap();
        assert_eq!(dead.len(), 3);
        assert_eq!(shard.get_volume(root).unwrap().node_count, 0);
        assert!(shard.get_node(root, NodeId::new(3)).is_err());
    }

    #[test]
    fn delta_reports_changes_and_tombstones() {
        let (mut shard, user, root) = setup();
        let n = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let (gen1, delta) = shard.get_delta(root, 0).unwrap();
        assert_eq!(gen1, 1);
        assert_eq!(delta.len(), 1);
        // No changes since gen1.
        let (_, delta) = shard.get_delta(root, gen1).unwrap();
        assert!(delta.is_empty());
        // Unlink produces a tombstone entry.
        shard
            .unlink(user, root, n.node, SimTime::from_secs(1))
            .unwrap();
        let (gen2, delta) = shard.get_delta(root, gen1).unwrap();
        assert_eq!(gen2, 2);
        assert_eq!(delta.len(), 1);
        assert!(!delta[0].is_live);
    }

    #[test]
    fn make_content_replaces_and_reports_old_hash() {
        let (mut shard, user, root) = setup();
        let n = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let h1 = ContentHash::from_content_id(1);
        let h2 = ContentHash::from_content_id(2);
        let (row, old) = shard
            .make_content(user, root, n.node, h1, 100, SimTime::ZERO)
            .unwrap();
        assert_eq!(old, None);
        assert_eq!(row.size, 100);
        let (row, old) = shard
            .make_content(user, root, n.node, h2, 200, SimTime::ZERO)
            .unwrap();
        assert_eq!(old, Some(h1));
        assert_eq!(row.content, Some(h2));
    }

    #[test]
    fn move_rejects_cycles() {
        let (mut shard, user, root) = setup();
        let a = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::Directory,
                "a",
                SimTime::ZERO,
            )
            .unwrap();
        let b = shard
            .make_node(
                user,
                root,
                NodeId::new(2),
                Some(a.node),
                NodeKind::Directory,
                "b",
                SimTime::ZERO,
            )
            .unwrap();
        // a -> under b (its own child) must fail.
        assert!(shard
            .move_node(user, root, a.node, Some(b.node), "a", SimTime::ZERO)
            .is_err());
        // b -> root level is fine.
        let moved = shard
            .move_node(user, root, b.node, None, "b2", SimTime::ZERO)
            .unwrap();
        assert_eq!(moved.parent, None);
        assert_eq!(moved.name, "b2");
    }

    #[test]
    fn delete_volume_cascades_and_is_forbidden_for_root() {
        let (mut shard, user, root) = setup();
        assert!(shard.delete_volume(user, root).is_err());
        let udf = shard
            .create_udf(user, VolumeId::new(200), "Photos", SimTime::ZERO)
            .unwrap();
        shard
            .make_node(
                user,
                udf.volume,
                NodeId::new(1),
                None,
                NodeKind::File,
                "x",
                SimTime::ZERO,
            )
            .unwrap();
        let dead = shard.delete_volume(user, udf.volume).unwrap();
        assert_eq!(dead.len(), 1);
        assert!(shard.get_volume(udf.volume).is_err());
    }

    #[test]
    fn permission_checks_apply() {
        let (mut shard, _user, root) = setup();
        let other = UserId::new(2);
        shard
            .create_user(other, VolumeId::new(300), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            shard.make_node(
                other,
                root,
                NodeId::new(9),
                None,
                NodeKind::File,
                "x",
                SimTime::ZERO
            ),
            Err(CoreError::PermissionDenied(_))
        ));
        assert!(matches!(
            shard.delete_volume(other, root),
            Err(CoreError::PermissionDenied(_))
        ));
    }

    #[test]
    fn uploadjob_lifecycle_and_gc() {
        let (mut shard, user, root) = setup();
        let n = shard
            .make_node(
                user,
                root,
                NodeId::new(1),
                None,
                NodeKind::File,
                "big",
                SimTime::ZERO,
            )
            .unwrap();
        let up = UploadId::new(50);
        let h = ContentHash::from_content_id(9);
        shard
            .make_uploadjob(user, root, n.node, up, h, 10_000_000, SimTime::ZERO)
            .unwrap();
        // Parts before multipart id are rejected.
        assert!(shard
            .add_part_to_uploadjob(up, 5_000_000, SimTime::ZERO)
            .is_err());
        shard
            .set_uploadjob_multipart_id(up, 777, SimTime::ZERO)
            .unwrap();
        assert!(shard
            .set_uploadjob_multipart_id(up, 778, SimTime::ZERO)
            .is_err());
        shard
            .add_part_to_uploadjob(up, 5_000_000, SimTime::ZERO)
            .unwrap();
        let job = shard
            .add_part_to_uploadjob(up, 5_000_000, SimTime::ZERO)
            .unwrap();
        assert!(job.is_complete());
        // GC: a week-old untouched job is reaped, a fresh one is not.
        let week = SimDuration::from_days(7);
        let reaped = shard.gc_uploadjobs(SimTime::from_days(3), week);
        assert!(reaped.is_empty());
        let reaped = shard.gc_uploadjobs(SimTime::from_days(8), week);
        assert_eq!(reaped.len(), 1);
        assert!(shard.get_uploadjob(up).is_err());
    }
}
