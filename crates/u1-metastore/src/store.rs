//! The metadata store cluster: shard routing, the cross-user content index
//! (file-level dedup), shares, and id allocation.
//!
//! Locking discipline — the store is built so that the common path touches
//! exactly one shard lock plus at most one *stripe* of a global table, and
//! no two locks of the same kind are ever held together:
//!
//! * **Shard locks** (`RwLock<Shard>`): at most one is held at a time,
//!   except `list_shares`/`create_share`, which take the recipient's and
//!   then the owner's shard *sequentially* (reads only, never nested).
//! * **`volume_owner`** is striped by volume id: `authorize()` — on the
//!   path of every request — read-locks a single stripe and releases it
//!   before any shard lock is taken.
//! * **`contents`** is a [`ContentIndex`]: striped by hash byte with
//!   per-origin epoch visibility, so commits and unlinks from different
//!   partitions neither contend nor observe each other mid-epoch (see the
//!   module docs of [`crate::contents`]). Stripe locks are leaf locks:
//!   nothing else is acquired while one is held.
//! * **`shares`** stays one table under a single `RwLock` — share grants
//!   are rare (1.8% of users, §6.3), written only during setup-time
//!   `create_share`/`delete_volume`, and read-mostly thereafter. The lock
//!   is always taken *after* any shard/stripe lock has been dropped, never
//!   while holding one.
//!
//! Id allocation is per-shard and strided (shard `s` of `S` hands out
//! `s+1, s+1+S, s+1+2S, …`), so concurrent partitions draw disjoint,
//! interleaving-independent id sequences — the paper's "effectively
//! lockless" user-per-shard model, taken at its word.

use crate::contents::{ContentIndex, SealOutcome};
use crate::model::{ContentRow, ShareRow, UploadJobRow, UserRow, VolumeRow};
use crate::shard::{DeadNode, Shard};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use u1_core::{
    ContentHash, CoreError, CoreResult, ErrorClass, FaultInjector, FxHashMap, NodeId, NodeKind,
    ShardId, SimDuration, SimTime, UploadId, UserId, VolumeId,
};

/// Stripe count for the `volume_owner` routing map.
const OWNER_STRIPES: usize = 64;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shards; production U1 ran 10 (§3.4).
    pub shards: u16,
    /// Upload jobs untouched for this long are garbage collected
    /// (Appendix A: one week).
    pub uploadjob_max_age: SimDuration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 10,
            uploadjob_max_age: SimDuration::from_days(7),
        }
    }
}

/// Result of an operation that may release content references.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Released {
    /// Nodes that died.
    pub dead: Vec<DeadNode>,
    /// Content hashes whose refcount dropped to zero — the caller must
    /// delete these from the object store ("the API server finishes by
    /// deleting the file also from Amazon S3", §3.2).
    pub unreferenced: Vec<ContentHash>,
}

/// Per-shard strided id allocator: shard `s` draws `s+1, s+1+S, s+1+2S, …`
/// so the sequences of different shards are disjoint and independent of
/// cross-shard interleaving.
#[derive(Debug)]
struct StridedAlloc {
    counters: Vec<AtomicU64>,
    stride: u64,
}

impl StridedAlloc {
    fn new(shards: u16) -> Self {
        Self {
            counters: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            stride: shards as u64,
        }
    }

    fn next(&self, shard: ShardId) -> u64 {
        let slot = shard.raw() as usize % self.counters.len();
        let k = self.counters[slot].fetch_add(1, Ordering::Relaxed);
        1 + slot as u64 + k * self.stride
    }
}

/// The sharded metadata store.
pub struct MetaStore {
    config: StoreConfig,
    shards: Vec<RwLock<Shard>>,
    /// Global routing index: volume → owner, striped by volume id. Needed
    /// because requests name volumes, while sharding is by user.
    volume_owner: Vec<RwLock<FxHashMap<VolumeId, UserId>>>,
    /// Cross-user content index (dedup), striped with epoch visibility.
    contents: ContentIndex,
    /// Share grants, indexed both ways.
    shares: RwLock<ShareTable>,
    next_volume: StridedAlloc,
    next_node: StridedAlloc,
    next_upload: StridedAlloc,
    /// Fault-injection plane; `None` (the default) means every shard is
    /// always up.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

#[derive(Debug, Default)]
struct ShareTable {
    by_recipient: FxHashMap<UserId, Vec<ShareRow>>,
    by_volume: FxHashMap<VolumeId, Vec<ShareRow>>,
}

impl MetaStore {
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let shards = (0..config.shards)
            .map(|i| RwLock::new(Shard::new(ShardId::new(i))))
            .collect();
        Self {
            shards,
            volume_owner: (0..OWNER_STRIPES)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            contents: ContentIndex::new(),
            shares: RwLock::new(ShareTable::default()),
            next_volume: StridedAlloc::new(config.shards),
            next_node: StridedAlloc::new(config.shards),
            next_upload: StridedAlloc::new(config.shards),
            faults: RwLock::new(None),
            config,
        }
    }

    /// Installs the run's fault injector; requests routed to a shard inside
    /// one of its unavailability windows then fail with
    /// [`CoreError::unavailable`] (App. A: the metadata cluster degrades
    /// per-shard, not as a whole).
    pub fn set_faults(&self, injector: Arc<FaultInjector>) {
        *self.faults.write() = Some(injector);
    }

    /// Fails if `user`'s shard is inside an unavailability window at the
    /// caller's current virtual time. Checked at the request-routing choke
    /// points, mirroring where U1 routes "operations by user identifier to
    /// the appropriate shard".
    fn check_shard_up(&self, user: UserId) -> CoreResult<()> {
        let down = match self.faults.read().as_ref() {
            None => return Ok(()),
            Some(faults) => {
                let now = u1_core::partition::current_time().unwrap_or(SimTime::ZERO);
                faults.shard_down(self.shard_of(user).raw() as u64, now)
            }
        };
        if down {
            u1_core::fault::set_error_class(Some(ErrorClass::ShardUnavailable));
            return Err(CoreError::unavailable(format!(
                "{} unavailable",
                self.shard_of(user)
            )));
        }
        Ok(())
    }

    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Routes a user to their shard, as U1 does: "the system routes
    /// operations by user identifier to the appropriate shard".
    pub fn shard_of(&self, user: UserId) -> ShardId {
        ShardId::new((user.raw() % self.config.shards as u64) as u16)
    }

    pub fn num_shards(&self) -> u16 {
        self.config.shards
    }

    fn shard(&self, user: UserId) -> &RwLock<Shard> {
        &self.shards[self.shard_of(user).raw() as usize]
    }

    fn alloc_volume(&self, owner: UserId) -> VolumeId {
        VolumeId::new(self.next_volume.next(self.shard_of(owner)))
    }

    fn alloc_node(&self, owner: UserId) -> NodeId {
        NodeId::new(self.next_node.next(self.shard_of(owner)))
    }

    fn alloc_upload(&self, owner: UserId) -> UploadId {
        UploadId::new(self.next_upload.next(self.shard_of(owner)))
    }

    fn owner_stripe(&self, volume: VolumeId) -> &RwLock<FxHashMap<VolumeId, UserId>> {
        &self.volume_owner[volume.raw() as usize % OWNER_STRIPES]
    }

    /// Resolves the owner of `volume` and checks `actor` may touch it:
    /// either as the owner or through a share grant. Returns the owner,
    /// whose shard hosts the volume's rows.
    fn authorize(&self, actor: UserId, volume: VolumeId) -> CoreResult<UserId> {
        let owner = *self
            .owner_stripe(volume)
            .read()
            .get(&volume)
            .ok_or_else(|| CoreError::not_found(format!("volume {volume}")))?;
        // The volume's rows live on the owner's shard; fail here if that
        // shard is inside an unavailability window (the routing tier is a
        // separate, always-up index).
        self.check_shard_up(owner)?;
        if owner == actor {
            return Ok(owner);
        }
        let shares = self.shares.read();
        let granted = shares
            .by_volume
            .get(&volume)
            .is_some_and(|rows| rows.iter().any(|s| s.shared_to == actor));
        if granted {
            Ok(owner)
        } else {
            Err(CoreError::permission_denied(format!(
                "{actor} has no access to {volume}"
            )))
        }
    }

    // ----- users & volumes ----------------------------------------------

    /// Registers a user (first connection), creating their root volume.
    pub fn create_user(&self, user: UserId, now: SimTime) -> CoreResult<UserRow> {
        self.check_shard_up(user)?;
        let root = self.alloc_volume(user);
        let row = self.shard(user).write().create_user(user, root, now)?;
        self.owner_stripe(root).write().insert(root, user);
        Ok(row)
    }

    /// `dal.get_user_data`.
    pub fn get_user_data(&self, user: UserId) -> CoreResult<UserRow> {
        self.check_shard_up(user)?;
        self.shard(user).read().get_user_data(user)
    }

    /// `dal.get_root`.
    pub fn get_root(&self, user: UserId) -> CoreResult<VolumeRow> {
        self.check_shard_up(user)?;
        self.shard(user).read().get_root(user)
    }

    /// `dal.list_volumes` — owned volumes only; combine with
    /// [`MetaStore::list_shares`] for the client-visible volume set.
    pub fn list_volumes(&self, user: UserId) -> CoreResult<Vec<VolumeRow>> {
        self.check_shard_up(user)?;
        self.shard(user).read().list_volumes(user)
    }

    /// `dal.list_shares` — volumes shared *to* this user, with their owners.
    pub fn list_shares(&self, user: UserId) -> CoreResult<Vec<(VolumeRow, UserId)>> {
        self.check_shard_up(user)?;
        self.shard(user).read().get_user_data(user)?;
        let grants: Vec<ShareRow> = self
            .shares
            .read()
            .by_recipient
            .get(&user)
            .cloned()
            .unwrap_or_default();
        let mut out = Vec::with_capacity(grants.len());
        for grant in grants {
            // The share's rows live on the owner's shard — the one
            // multi-shard pattern of the data model.
            if let Ok(vol) = self.shard(grant.shared_by).read().get_volume(grant.volume) {
                out.push((vol, grant.shared_by));
            }
        }
        Ok(out)
    }

    /// Grants `to` access to `volume` (which `owner` must own).
    pub fn create_share(
        &self,
        owner: UserId,
        volume: VolumeId,
        to: UserId,
        now: SimTime,
    ) -> CoreResult<ShareRow> {
        if owner == to {
            return Err(CoreError::invalid("cannot share with oneself"));
        }
        let vol = self.shard(owner).read().get_volume(volume)?;
        if vol.owner != owner {
            return Err(CoreError::permission_denied(format!("volume {volume}")));
        }
        // Recipient must exist.
        self.shard(to).read().get_user_data(to)?;
        let row = ShareRow {
            volume,
            shared_by: owner,
            shared_to: to,
            created_at: now,
        };
        let mut shares = self.shares.write();
        let existing = shares
            .by_volume
            .get(&volume)
            .is_some_and(|rows| rows.iter().any(|s| s.shared_to == to));
        if existing {
            return Err(CoreError::conflict("share already exists"));
        }
        shares.by_recipient.entry(to).or_default().push(row.clone());
        shares
            .by_volume
            .entry(volume)
            .or_default()
            .push(row.clone());
        Ok(row)
    }

    /// `dal.create_udf`.
    pub fn create_udf(&self, user: UserId, name: &str, now: SimTime) -> CoreResult<VolumeRow> {
        self.check_shard_up(user)?;
        let volume = self.alloc_volume(user);
        let row = self
            .shard(user)
            .write()
            .create_udf(user, volume, name, now)?;
        self.owner_stripe(volume).write().insert(volume, user);
        Ok(row)
    }

    /// `dal.delete_volume` — the cascade delete.
    pub fn delete_volume(&self, actor: UserId, volume: VolumeId) -> CoreResult<Released> {
        let owner = self.authorize(actor, volume)?;
        let dead = self.shard(owner).write().delete_volume(owner, volume)?;
        self.owner_stripe(volume).write().remove(&volume);
        // Drop share grants on the deleted volume.
        {
            let mut shares = self.shares.write();
            if let Some(rows) = shares.by_volume.remove(&volume) {
                for row in rows {
                    if let Some(v) = shares.by_recipient.get_mut(&row.shared_to) {
                        v.retain(|s| s.volume != volume);
                    }
                }
            }
        }
        let unreferenced = self.release_contents(&dead);
        Ok(Released { dead, unreferenced })
    }

    // ----- nodes ---------------------------------------------------------

    /// `dal.make_file` / `dal.make_dir`.
    pub fn make_node(
        &self,
        actor: UserId,
        volume: VolumeId,
        parent: Option<NodeId>,
        kind: NodeKind,
        name: &str,
        now: SimTime,
    ) -> CoreResult<crate::model::NodeRow> {
        let owner = self.authorize(actor, volume)?;
        let node = self.alloc_node(owner);
        self.shard(owner)
            .write()
            .make_node(owner, volume, node, parent, kind, name, now)
    }

    /// `dal.get_node`.
    pub fn get_node(
        &self,
        actor: UserId,
        volume: VolumeId,
        node: NodeId,
    ) -> CoreResult<crate::model::NodeRow> {
        let owner = self.authorize(actor, volume)?;
        self.shard(owner).read().get_node(volume, node)
    }

    /// `dal.make_content`: binds uploaded (or deduplicated) content to a
    /// file node and maintains the cross-user content index. The second
    /// return value is the replaced content hash if this update left it
    /// unreferenced (the caller deletes it from the object store).
    pub fn make_content(
        &self,
        actor: UserId,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
        now: SimTime,
    ) -> CoreResult<(crate::model::NodeRow, Option<ContentHash>)> {
        let owner = self.authorize(actor, volume)?;
        let origin = u1_core::partition::current_origin();
        let (row, old) = self
            .shard(owner)
            .write()
            .make_content(owner, volume, node, hash, size, now)?;
        self.contents.incref(hash, size, now, origin);
        let mut released = None;
        if let Some(old_hash) = old {
            if old_hash != hash {
                if self.contents.decref(old_hash, origin) {
                    released = Some(old_hash);
                }
            } else {
                // Same content re-attached: undo the double count.
                self.contents.undo_incref(hash, origin);
            }
        }
        Ok((row, released))
    }

    fn release_contents(&self, dead: &[DeadNode]) -> Vec<ContentHash> {
        let origin = u1_core::partition::current_origin();
        let mut unreferenced = Vec::new();
        for d in dead {
            if let Some(hash) = d.content {
                if self.contents.decref(hash, origin) {
                    unreferenced.push(hash);
                }
            }
        }
        unreferenced
    }

    /// `dal.get_reusable_content` — the dedup probe: returns the content row
    /// if a file with this exact hash and size is already stored (§3.3), as
    /// visible to the calling partition.
    pub fn get_reusable_content(&self, hash: ContentHash, size: u64) -> Option<ContentRow> {
        self.contents
            .probe(hash, u1_core::partition::current_origin())
            .filter(|c| c.size == size)
    }

    /// Whether `hash` is a live content for the calling partition — the
    /// presence check the download path uses in place of consulting the
    /// object store (whose blob set is only reconciled at epoch seals).
    pub fn content_visible(&self, hash: ContentHash) -> bool {
        self.contents
            .probe(hash, u1_core::partition::current_origin())
            .is_some()
    }

    /// Folds all same-epoch content-index deltas into the committed state.
    /// Must be called from a synchronization barrier (the parallel driver's
    /// day boundary). The caller applies the outcome to the object store:
    /// delete `dead`, restore `live`.
    pub fn seal_epoch(&self) -> SealOutcome {
        self.contents.seal()
    }

    /// `dal.unlink_node`.
    pub fn unlink(
        &self,
        actor: UserId,
        volume: VolumeId,
        node: NodeId,
        now: SimTime,
    ) -> CoreResult<Released> {
        let owner = self.authorize(actor, volume)?;
        let dead = self.shard(owner).write().unlink(owner, volume, node, now)?;
        let unreferenced = self.release_contents(&dead);
        Ok(Released { dead, unreferenced })
    }

    /// `dal.move`.
    pub fn move_node(
        &self,
        actor: UserId,
        volume: VolumeId,
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: &str,
        now: SimTime,
    ) -> CoreResult<crate::model::NodeRow> {
        let owner = self.authorize(actor, volume)?;
        self.shard(owner)
            .write()
            .move_node(owner, volume, node, new_parent, new_name, now)
    }

    /// `dal.get_delta`.
    pub fn get_delta(
        &self,
        actor: UserId,
        volume: VolumeId,
        from_generation: u64,
    ) -> CoreResult<(u64, Vec<crate::model::NodeRow>)> {
        let owner = self.authorize(actor, volume)?;
        self.shard(owner).read().get_delta(volume, from_generation)
    }

    /// `dal.get_from_scratch`.
    pub fn get_from_scratch(
        &self,
        actor: UserId,
        volume: VolumeId,
    ) -> CoreResult<(u64, Vec<crate::model::NodeRow>)> {
        let owner = self.authorize(actor, volume)?;
        self.shard(owner).read().get_from_scratch(volume)
    }

    // ----- upload jobs ----------------------------------------------------

    /// `dal.make_uploadjob`.
    pub fn make_uploadjob(
        &self,
        actor: UserId,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        declared_size: u64,
        now: SimTime,
    ) -> CoreResult<UploadJobRow> {
        let owner = self.authorize(actor, volume)?;
        let upload = self.alloc_upload(owner);
        self.shard(owner).write().make_uploadjob(
            actor,
            volume,
            node,
            upload,
            hash,
            declared_size,
            now,
        )
    }

    fn uploadjob_shard(&self, actor: UserId, upload: UploadId) -> CoreResult<&RwLock<Shard>> {
        // Jobs live on the shard of the volume owner; callers hold the job
        // id, so we search the actor's shard first (overwhelmingly the
        // common case), then authorize through the job's volume.
        let own = self.shard(actor);
        if own.read().get_uploadjob(upload).is_ok() {
            return Ok(own);
        }
        for shard in &self.shards {
            let found = shard.read().get_uploadjob(upload).ok();
            if let Some(job) = found {
                self.authorize(actor, job.volume)?;
                return Ok(shard);
            }
        }
        Err(CoreError::not_found(format!("uploadjob {upload}")))
    }

    /// `dal.get_uploadjob`.
    pub fn get_uploadjob(&self, actor: UserId, upload: UploadId) -> CoreResult<UploadJobRow> {
        self.uploadjob_shard(actor, upload)?
            .read()
            .get_uploadjob(upload)
    }

    /// `dal.set_uploadjob_multipart_id`.
    pub fn set_uploadjob_multipart_id(
        &self,
        actor: UserId,
        upload: UploadId,
        multipart_id: u64,
        now: SimTime,
    ) -> CoreResult<()> {
        self.uploadjob_shard(actor, upload)?
            .write()
            .set_uploadjob_multipart_id(upload, multipart_id, now)
    }

    /// `dal.add_part_to_uploadjob`.
    pub fn add_part_to_uploadjob(
        &self,
        actor: UserId,
        upload: UploadId,
        part_size: u64,
        now: SimTime,
    ) -> CoreResult<UploadJobRow> {
        self.uploadjob_shard(actor, upload)?
            .write()
            .add_part_to_uploadjob(upload, part_size, now)
    }

    /// `dal.touch_uploadjob`.
    pub fn touch_uploadjob(&self, actor: UserId, upload: UploadId, now: SimTime) -> CoreResult<()> {
        self.uploadjob_shard(actor, upload)?
            .write()
            .touch_uploadjob(upload, now)
    }

    /// `dal.delete_uploadjob`.
    pub fn delete_uploadjob(&self, actor: UserId, upload: UploadId) -> CoreResult<UploadJobRow> {
        self.uploadjob_shard(actor, upload)?
            .write()
            .delete_uploadjob(upload)
    }

    /// The periodic garbage collection over every shard. Returns the reaped
    /// jobs so the object store can abort their multipart uploads.
    pub fn gc_uploadjobs(&self, now: SimTime) -> Vec<UploadJobRow> {
        let max_age = self.config.uploadjob_max_age;
        let mut reaped = Vec::new();
        for shard in &self.shards {
            reaped.extend(shard.write().gc_uploadjobs(now, max_age));
        }
        reaped
    }

    /// Users holding a share grant on `volume` (push-notification fan-out).
    pub fn share_recipients(&self, volume: VolumeId) -> Vec<UserId> {
        self.shares
            .read()
            .by_volume
            .get(&volume)
            .map(|rows| rows.iter().map(|s| s.shared_to).collect())
            .unwrap_or_default()
    }

    /// The owner of a volume, if it exists.
    pub fn owner_of(&self, volume: VolumeId) -> Option<UserId> {
        self.owner_stripe(volume).read().get(&volume).copied()
    }

    // ----- measurement helpers ---------------------------------------------

    /// The deduplication ratio `dr = 1 - (unique / total)` over currently
    /// referenced contents (§5.3).
    pub fn dedup_ratio(&self) -> f64 {
        let (_, unique, total) = self.contents.fold_stats();
        if total == 0 {
            0.0
        } else {
            1.0 - unique as f64 / total as f64
        }
    }

    /// Number of distinct contents currently referenced (global view:
    /// committed plus all same-epoch deltas).
    pub fn content_count(&self) -> usize {
        self.contents.fold_stats().0
    }

    /// Per-shard user counts — raw material for load-balance sanity checks.
    pub fn users_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().user_count()).collect()
    }

    /// End-of-trace snapshot of every volume: owner, kind, live file and
    /// directory counts. Feeds the §6.3 volume analyses (Figs. 10–11).
    pub fn volume_snapshot(&self) -> Vec<VolumeSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().volume_snapshot());
        }
        {
            let shares = self.shares.read();
            for snap in &mut out {
                snap.shared_to = shares
                    .by_volume
                    .get(&snap.volume)
                    .map(|rows| rows.len() as u64)
                    .unwrap_or(0);
            }
        }
        out.sort_by_key(|v| v.volume);
        out
    }
}

/// One row of [`MetaStore::volume_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct VolumeSnapshot {
    pub volume: VolumeId,
    pub owner: UserId,
    pub kind: u1_core::VolumeKind,
    pub files: u64,
    pub dirs: u64,
    /// Users this volume is shared to (0 for unshared volumes).
    pub shared_to: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MetaStore {
        MetaStore::new(StoreConfig::default())
    }

    fn now() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn routing_is_by_user_id_modulo_shards() {
        let s = store();
        assert_eq!(s.shard_of(UserId::new(0)), ShardId::new(0));
        assert_eq!(s.shard_of(UserId::new(13)), ShardId::new(3));
        assert_eq!(s.num_shards(), 10);
    }

    #[test]
    fn shard_outage_windows_degrade_per_shard_not_cluster_wide() {
        use u1_core::{partition, FaultPlan};
        let s = store();
        let user = UserId::new(1); // shard 1
        s.create_user(user, now()).unwrap();
        let plan = FaultPlan {
            shard_outages: 2,
            shard_outage_len: SimDuration::from_hours(2),
            horizon: SimDuration::from_days(2),
            ..FaultPlan::none()
        };
        let inj = Arc::new(FaultInjector::new(plan, 99));
        let shard = s.shard_of(user).raw() as u64;
        let probe = |f: &dyn Fn(SimTime) -> bool| {
            (0..48 * 60)
                .map(|m| SimTime::from_secs(m * 60))
                .find(|t| f(*t))
                .expect("probe found no matching minute")
        };
        let t_down = probe(&|t| inj.shard_down(shard, t));
        let t_up = probe(&|t| !inj.shard_down(shard, t));
        s.set_faults(Arc::clone(&inj));

        // Inside the window, requests routed to this shard fail unavailable.
        let ctx = partition::PartitionCtx::new(0);
        ctx.set_time(t_down);
        let _g = partition::install(ctx.clone());
        assert!(matches!(
            s.get_user_data(user),
            Err(CoreError::Unavailable(_))
        ));
        assert!(matches!(
            s.list_volumes(user),
            Err(CoreError::Unavailable(_))
        ));
        // The cluster degrades per-shard: some other shard is still up at
        // the same instant (2h windows per shard rarely all overlap; assert
        // at least one of the other nine serves).
        let other_up = (0..10u64)
            .filter(|sh| *sh != shard)
            .any(|sh| !inj.shard_down(sh, t_down));
        assert!(other_up, "every other shard down at once — implausible");
        // Outside the window the same request succeeds.
        ctx.set_time(t_up);
        assert!(s.get_user_data(user).is_ok());
        u1_core::fault::clear_tags();
    }

    #[test]
    fn user_lifecycle_and_volume_listing() {
        let s = store();
        let u = UserId::new(7);
        s.create_user(u, now()).unwrap();
        let vols = s.list_volumes(u).unwrap();
        assert_eq!(vols.len(), 1);
        s.create_udf(u, "Photos", now()).unwrap();
        assert_eq!(s.list_volumes(u).unwrap().len(), 2);
        assert_eq!(s.get_root(u).unwrap().volume, vols[0].volume);
    }

    #[test]
    fn sharing_grants_cross_user_access() {
        let s = store();
        let alice = UserId::new(1);
        let bob = UserId::new(2);
        s.create_user(alice, now()).unwrap();
        s.create_user(bob, now()).unwrap();
        let udf = s.create_udf(alice, "Shared stuff", now()).unwrap();

        // Before the grant, bob is denied.
        assert!(matches!(
            s.make_node(bob, udf.volume, None, NodeKind::File, "x", now()),
            Err(CoreError::PermissionDenied(_))
        ));
        s.create_share(alice, udf.volume, bob, now()).unwrap();
        // Duplicate grant is a conflict.
        assert!(s.create_share(alice, udf.volume, bob, now()).is_err());
        // Now bob can write into alice's volume (rows live on alice's shard).
        let node = s
            .make_node(bob, udf.volume, None, NodeKind::File, "x", now())
            .unwrap();
        assert_eq!(node.volume, udf.volume);
        // And sees it in list_shares.
        let shares = s.list_shares(bob).unwrap();
        assert_eq!(shares.len(), 1);
        assert_eq!(shares[0].1, alice);
        assert_eq!(shares[0].0.volume, udf.volume);
    }

    #[test]
    fn share_validation() {
        let s = store();
        let alice = UserId::new(1);
        s.create_user(alice, now()).unwrap();
        let root = s.get_root(alice).unwrap();
        // Sharing with oneself or with a nonexistent user fails.
        assert!(s.create_share(alice, root.volume, alice, now()).is_err());
        assert!(s
            .create_share(alice, root.volume, UserId::new(99), now())
            .is_err());
    }

    #[test]
    fn dedup_index_counts_references() {
        let s = store();
        let alice = UserId::new(1);
        let bob = UserId::new(2);
        s.create_user(alice, now()).unwrap();
        s.create_user(bob, now()).unwrap();
        let av = s.get_root(alice).unwrap().volume;
        let bv = s.get_root(bob).unwrap().volume;
        let h = ContentHash::from_content_id(42);

        let an = s
            .make_node(alice, av, None, NodeKind::File, "song.mp3", now())
            .unwrap();
        let bn = s
            .make_node(bob, bv, None, NodeKind::File, "copy.mp3", now())
            .unwrap();
        // First upload: content unknown.
        assert!(s.get_reusable_content(h, 1000).is_none());
        s.make_content(alice, av, an.node, h, 1000, now()).unwrap();
        // Dedup probe now hits (same hash AND size).
        assert!(s.get_reusable_content(h, 1000).is_some());
        assert!(s.get_reusable_content(h, 999).is_none());
        s.make_content(bob, bv, bn.node, h, 1000, now()).unwrap();
        // dr = 1 - unique/total = 1 - 1000/2000.
        assert!((s.dedup_ratio() - 0.5).abs() < 1e-9);

        // Alice deletes hers: content still referenced by bob.
        let rel = s.unlink(alice, av, an.node, now()).unwrap();
        assert!(rel.unreferenced.is_empty());
        // Bob deletes too: now unreferenced.
        let rel = s.unlink(bob, bv, bn.node, now()).unwrap();
        assert_eq!(rel.unreferenced, vec![h]);
        assert_eq!(s.content_count(), 0);
    }

    #[test]
    fn update_same_content_does_not_double_count() {
        let s = store();
        let u = UserId::new(1);
        s.create_user(u, now()).unwrap();
        let v = s.get_root(u).unwrap().volume;
        let n = s.make_node(u, v, None, NodeKind::File, "a", now()).unwrap();
        let h = ContentHash::from_content_id(1);
        s.make_content(u, v, n.node, h, 10, now()).unwrap();
        s.make_content(u, v, n.node, h, 10, now()).unwrap();
        let rel = s.unlink(u, v, n.node, now()).unwrap();
        assert_eq!(rel.unreferenced, vec![h], "refcount should be exactly 1");
    }

    #[test]
    fn update_with_new_content_releases_old() {
        let s = store();
        let u = UserId::new(1);
        s.create_user(u, now()).unwrap();
        let v = s.get_root(u).unwrap().volume;
        let n = s.make_node(u, v, None, NodeKind::File, "a", now()).unwrap();
        let h1 = ContentHash::from_content_id(1);
        let h2 = ContentHash::from_content_id(2);
        let (_, rel) = s.make_content(u, v, n.node, h1, 10, now()).unwrap();
        assert_eq!(rel, None);
        let (_, rel) = s.make_content(u, v, n.node, h2, 20, now()).unwrap();
        assert_eq!(rel, Some(h1), "replaced content is reported released");
        // h1 is already unreferenced (refcount handling), so only h2 remains.
        assert_eq!(s.content_count(), 1);
        assert!(s.get_reusable_content(h2, 20).is_some());
        assert!(s.get_reusable_content(h1, 10).is_none());
    }

    #[test]
    fn delete_volume_releases_contents_and_shares() {
        let s = store();
        let alice = UserId::new(1);
        let bob = UserId::new(2);
        s.create_user(alice, now()).unwrap();
        s.create_user(bob, now()).unwrap();
        let udf = s.create_udf(alice, "P", now()).unwrap();
        s.create_share(alice, udf.volume, bob, now()).unwrap();
        let n = s
            .make_node(alice, udf.volume, None, NodeKind::File, "f", now())
            .unwrap();
        let h = ContentHash::from_content_id(5);
        s.make_content(alice, udf.volume, n.node, h, 100, now())
            .unwrap();

        let rel = s.delete_volume(alice, udf.volume).unwrap();
        assert_eq!(rel.dead.len(), 1);
        assert_eq!(rel.unreferenced, vec![h]);
        assert!(s.list_shares(bob).unwrap().is_empty());
        assert!(s.get_delta(alice, udf.volume, 0).is_err());
    }

    #[test]
    fn uploadjob_flow_through_store_and_gc() {
        let s = store();
        let u = UserId::new(1);
        s.create_user(u, now()).unwrap();
        let v = s.get_root(u).unwrap().volume;
        let n = s
            .make_node(u, v, None, NodeKind::File, "big.iso", now())
            .unwrap();
        let h = ContentHash::from_content_id(9);
        let job = s.make_uploadjob(u, v, n.node, h, 10 << 20, now()).unwrap();
        s.set_uploadjob_multipart_id(u, job.upload, 1, now())
            .unwrap();
        s.add_part_to_uploadjob(u, job.upload, 5 << 20, now())
            .unwrap();
        s.touch_uploadjob(u, job.upload, SimTime::from_days(1))
            .unwrap();
        // GC at day 5: touched at day 1, age 4 days < 7, survives.
        assert!(s.gc_uploadjobs(SimTime::from_days(5)).is_empty());
        // GC at day 9: age 8 days > 7, reaped.
        let reaped = s.gc_uploadjobs(SimTime::from_days(9));
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].upload, job.upload);
        assert!(s.get_uploadjob(u, job.upload).is_err());
    }

    #[test]
    fn other_users_cannot_touch_foreign_uploadjobs() {
        let s = store();
        let alice = UserId::new(1);
        let eve = UserId::new(3);
        s.create_user(alice, now()).unwrap();
        s.create_user(eve, now()).unwrap();
        let v = s.get_root(alice).unwrap().volume;
        let n = s
            .make_node(alice, v, None, NodeKind::File, "f", now())
            .unwrap();
        let job = s
            .make_uploadjob(alice, v, n.node, ContentHash::EMPTY, 100, now())
            .unwrap();
        assert!(s.get_uploadjob(eve, job.upload).is_err());
        assert!(s.add_part_to_uploadjob(eve, job.upload, 10, now()).is_err());
    }
}
