//! Table rows of the metadata store.

use serde::{Deserialize, Serialize};
use u1_core::{
    ContentHash, Name, NodeId, NodeKind, ShardId, SimTime, UploadId, UserId, VolumeId, VolumeKind,
};

/// A user account row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRow {
    pub user: UserId,
    pub shard: ShardId,
    /// The predefined root volume created at client install time (id 0 from
    /// the client's perspective; globally unique here).
    pub root_volume: VolumeId,
    pub created_at: SimTime,
}

/// A volume row. The `generation` is the monotone change counter clients
/// diff against with `GetDelta` (§3.4.2: clients compare local state with
/// the server side "on every connection (generation point)").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeRow {
    pub volume: VolumeId,
    pub owner: UserId,
    pub kind: VolumeKind,
    /// Inline-optimized name (volume names are short); the shard keeps the
    /// canonical copy interned in its [`u1_core::NameArena`].
    pub name: Name,
    pub generation: u64,
    pub created_at: SimTime,
    /// Live nodes currently in the volume.
    pub node_count: u64,
}

/// A node row (file or directory). Deleted nodes become tombstones
/// (`is_live = false`) so deltas can report deletions; delete-volume drops
/// rows entirely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeRow {
    pub node: NodeId,
    pub volume: VolumeId,
    pub parent: Option<NodeId>,
    pub kind: NodeKind,
    /// Inline-optimized name; the canonical copy lives in the shard's
    /// [`u1_core::NameArena`], the row is a detached DTO.
    pub name: Name,
    /// Content attached by `make_content`; `None` for directories and files
    /// created but never uploaded.
    pub content: Option<ContentHash>,
    pub size: u64,
    /// Volume generation at which this row last changed.
    pub generation: u64,
    pub is_live: bool,
    pub created_at: SimTime,
    pub changed_at: SimTime,
}

/// Cross-user content index row: one per distinct SHA-1, counting logical
/// links (the basis of the dedup analysis in Fig. 4(a)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentRow {
    pub hash: ContentHash,
    pub size: u64,
    /// Number of live file nodes pointing at this content.
    pub refcount: u64,
    pub first_seen: SimTime,
}

/// A share grant: `shared_by` exposes `volume` to `shared_to` (Table 2's
/// ListShares vocabulary).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShareRow {
    pub volume: VolumeId,
    pub shared_by: UserId,
    pub shared_to: UserId,
    pub created_at: SimTime,
}

/// Lifecycle states of a multipart upload job (Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UploadState {
    /// Created by `make_uploadjob`, no S3 multipart id yet.
    Created,
    /// `set_uploadjob_multipart_id` ran; parts may be added.
    InProgress,
    /// Commit observed; the job row is deleted right after, so this state
    /// is transient.
    Committed,
}

/// Server-side state of a multipart file transfer between the client and
/// the object store (Appendix A). Persisted in the metadata store for the
/// whole life of the upload so interrupted transfers can resume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UploadJobRow {
    pub upload: UploadId,
    pub user: UserId,
    pub volume: VolumeId,
    pub node: NodeId,
    pub hash: ContentHash,
    pub declared_size: u64,
    pub state: UploadState,
    /// The object-store multipart upload id, once requested.
    pub multipart_id: Option<u64>,
    /// Sizes of the parts uploaded so far.
    pub part_sizes: Vec<u64>,
    pub created_at: SimTime,
    /// Last client activity; the GC reaps jobs untouched for a week
    /// (`dal.touch_uploadjob`).
    pub touched_at: SimTime,
}

impl UploadJobRow {
    /// Bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.part_sizes.iter().sum()
    }

    /// Whether every declared byte has arrived.
    pub fn is_complete(&self) -> bool {
        self.bytes_received() >= self.declared_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_job_progress_accounting() {
        let mut job = UploadJobRow {
            upload: UploadId::new(1),
            user: UserId::new(1),
            volume: VolumeId::new(1),
            node: NodeId::new(1),
            hash: ContentHash::EMPTY,
            declared_size: 12 * 1024 * 1024,
            state: UploadState::Created,
            multipart_id: None,
            part_sizes: vec![],
            created_at: SimTime::ZERO,
            touched_at: SimTime::ZERO,
        };
        assert!(!job.is_complete());
        job.part_sizes.push(5 * 1024 * 1024);
        job.part_sizes.push(5 * 1024 * 1024);
        assert_eq!(job.bytes_received(), 10 * 1024 * 1024);
        assert!(!job.is_complete());
        job.part_sizes.push(2 * 1024 * 1024);
        assert!(job.is_complete());
    }
}
