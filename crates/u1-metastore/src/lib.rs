//! The U1 metadata store (§3.4): a user-sharded, in-memory reimplementation
//! of the PostgreSQL cluster behind the DAL RPC surface.
//!
//! The production system kept all metadata in a 20-server PostgreSQL cluster
//! configured as 10 master/replica shards, routing every operation to a shard
//! by **user id** so that "metadata of a user's files and folders reside
//! always in the same shard" and ordinary operations never lock more than one
//! shard. Only shared-folder operations can touch a second shard.
//!
//! This crate reproduces that architecture:
//!
//! * [`model`] — the table rows (users, volumes, nodes, contents, shares,
//!   upload jobs) and volume *generations* that power `GetDelta`,
//! * [`shard`] — one shard: the single-shard DAL operations under one
//!   reader-writer lock (reads are lock-shared, i.e. "lockless" in the
//!   paper's sense of never blocking each other),
//! * [`store`] — the cluster: user→shard routing, the cross-user content
//!   index used for file-level deduplication, share management (the one
//!   multi-shard case), and upload-job garbage collection,
//! * [`latency`] — the calibrated per-RPC-class service-time model that
//!   reproduces the long-tailed distributions of Figs. 12–13.

pub mod contents;
pub mod latency;
pub mod model;
pub mod shard;
pub mod store;

pub use contents::{ContentIndex, SealOutcome};
pub use latency::{LatencyModel, LatencyProfile};
pub use model::{ContentRow, NodeRow, ShareRow, UploadJobRow, UploadState, UserRow, VolumeRow};
pub use store::{MetaStore, StoreConfig};
