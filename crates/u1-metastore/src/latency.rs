//! Service-time model for metadata RPCs.
//!
//! The paper's Figs. 12–13 establish three facts about the production
//! metadata store:
//!
//! 1. service-time medians separate by RPC class — reads are fastest,
//!    writes/updates/deletes sit a few× above them, and the two cascade
//!    RPCs (`delete_volume`, `get_from_scratch`) are "more than one order of
//!    magnitude slower" than the fastest reads;
//! 2. *every* RPC exhibits a long tail: "from 7% to 22% of RPC service
//!    times are very far from the median value" (attributable to background
//!    interference, power management, etc. — Li et al.'s "Tales of the
//!    Tail");
//! 3. cascade cost scales with the amount of cascaded work.
//!
//! We model each RPC's service time as a log-normal body around a per-class
//! median with a Pareto-amplified tail mixed in at a per-RPC tail
//! probability, plus a per-row surcharge for cascades. Parameters live in
//! [`LatencyProfile`] so ablation benches can turn the tail off and show its
//! effect.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use u1_core::rngx;
use u1_core::{RpcClass, RpcKind, SimDuration};

/// Tunable parameters of the service-time model.
#[derive(Debug, Clone)]
pub struct LatencyProfile {
    /// Median service time per class, in seconds.
    pub read_median_s: f64,
    pub write_median_s: f64,
    pub cascade_median_s: f64,
    /// Log-normal sigma of the body (dispersion around the median).
    pub body_sigma: f64,
    /// Probability that a sample lands in the heavy tail. Per the paper this
    /// varies per RPC in [0.07, 0.22]; we derive a per-RPC value in that
    /// range deterministically from the RPC kind.
    pub tail_prob_min: f64,
    pub tail_prob_max: f64,
    /// Pareto exponent of the tail amplifier (smaller ⇒ heavier).
    pub tail_alpha: f64,
    /// Upper clamp on any single service time, seconds.
    pub max_service_s: f64,
    /// Extra seconds per cascaded row (delete_volume / get_from_scratch
    /// touch every node of the volume).
    pub per_row_s: f64,
}

impl Default for LatencyProfile {
    fn default() -> Self {
        Self {
            // Calibrated so the Fig. 12 CDFs span ~1ms..100s with medians
            // read ≈ 3ms, write ≈ 12ms, cascade ≈ 120ms (Fig. 13's spread).
            read_median_s: 0.003,
            write_median_s: 0.012,
            cascade_median_s: 0.120,
            body_sigma: 0.85,
            tail_prob_min: 0.07,
            tail_prob_max: 0.22,
            tail_alpha: 1.15,
            max_service_s: 100.0,
            per_row_s: 0.002,
        }
    }
}

impl LatencyProfile {
    /// A profile with the long tail disabled — the ablation baseline.
    pub fn no_tail(mut self) -> Self {
        self.tail_prob_min = 0.0;
        self.tail_prob_max = 0.0;
        self
    }

    /// Median for a class.
    pub fn median_for(&self, class: RpcClass) -> f64 {
        match class {
            RpcClass::Read => self.read_median_s,
            RpcClass::Write => self.write_median_s,
            RpcClass::Cascade => self.cascade_median_s,
        }
    }
}

/// Stateful sampler. Deterministic given its seed.
#[derive(Debug)]
pub struct LatencyModel {
    profile: LatencyProfile,
    rng: SmallRng,
}

impl LatencyModel {
    pub fn new(profile: LatencyProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    /// The per-RPC tail probability: deterministic within
    /// `[tail_prob_min, tail_prob_max]` so each RPC keeps a stable tail
    /// weight across the run, as in Fig. 12 ("from 7% to 22%").
    pub fn tail_prob(&self, rpc: RpcKind) -> f64 {
        let span = self.profile.tail_prob_max - self.profile.tail_prob_min;
        if span <= 0.0 {
            return self.profile.tail_prob_min.max(0.0);
        }
        let h = rngx::derive_seed(0xC0FFEE, rpc.dal_name(), 0);
        self.profile.tail_prob_min + span * ((h % 10_000) as f64 / 10_000.0)
    }

    /// Samples the service time for one RPC invocation. `cascade_rows` is
    /// the number of rows a cascade RPC touched (0 for non-cascades).
    pub fn sample(&mut self, rpc: RpcKind, cascade_rows: u64) -> SimDuration {
        let median = self.profile.median_for(rpc.class());
        // Log-normal with the requested median: mu = ln(median).
        let body = rngx::sample_lognormal(&mut self.rng, median.ln(), self.profile.body_sigma);
        let mut service = body;
        if rpc.class() == RpcClass::Cascade {
            service += cascade_rows as f64 * self.profile.per_row_s;
        }
        let p_tail = self.tail_prob(rpc);
        if p_tail > 0.0 && self.rng.gen_range(0.0..1.0) < p_tail {
            // Tail event: amplify by a Pareto factor >= 6x.
            let amp = rngx::sample_pareto(&mut self.rng, self.profile.tail_alpha, 6.0);
            service *= amp;
        }
        SimDuration::from_secs_f64(service.min(self.profile.max_service_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    }

    fn sample_many(model: &mut LatencyModel, rpc: RpcKind, n: usize) -> Vec<f64> {
        (0..n).map(|_| model.sample(rpc, 0).as_secs_f64()).collect()
    }

    #[test]
    fn class_medians_are_ordered_read_write_cascade() {
        let mut m = LatencyModel::new(LatencyProfile::default(), 1);
        let r = median(sample_many(&mut m, RpcKind::GetNode, 4000));
        let w = median(sample_many(&mut m, RpcKind::MakeFile, 4000));
        let c = median(sample_many(&mut m, RpcKind::DeleteVolume, 4000));
        assert!(r < w, "read median {r} should be below write {w}");
        assert!(w < c, "write median {w} should be below cascade {c}");
        assert!(
            c / r > 10.0,
            "cascade {c} should be >=10x read {r} (Fig. 13)"
        );
    }

    #[test]
    fn tails_are_heavy_but_bounded() {
        let mut m = LatencyModel::new(LatencyProfile::default(), 2);
        let xs = sample_many(&mut m, RpcKind::GetNode, 20_000);
        let med = median(xs.clone());
        let far = xs.iter().filter(|&&x| x > 10.0 * med).count() as f64 / xs.len() as f64;
        assert!(far > 0.02, "expect a visible tail, got {far}");
        assert!(xs.iter().all(|&x| x <= 100.0), "clamp holds");
    }

    #[test]
    fn per_rpc_tail_prob_spans_the_paper_range() {
        let m = LatencyModel::new(LatencyProfile::default(), 3);
        let mut lo = f64::MAX;
        let mut hi: f64 = 0.0;
        for rpc in RpcKind::ALL {
            let p = m.tail_prob(rpc);
            assert!((0.07..=0.22).contains(&p), "{rpc}: {p}");
            lo = lo.min(p);
            hi = hi.max(p);
        }
        assert!(hi - lo > 0.03, "tail probabilities should differ per RPC");
    }

    #[test]
    fn no_tail_profile_kills_the_tail() {
        let mut m = LatencyModel::new(LatencyProfile::default().no_tail(), 4);
        let xs = sample_many(&mut m, RpcKind::GetNode, 20_000);
        let med = median(xs.clone());
        let far = xs.iter().filter(|&&x| x > 20.0 * med).count() as f64 / xs.len() as f64;
        assert!(far < 0.005, "tail should be gone, got {far}");
    }

    #[test]
    fn cascade_cost_scales_with_rows() {
        let mut m = LatencyModel::new(LatencyProfile::default().no_tail(), 5);
        let small = median(
            (0..2000)
                .map(|_| m.sample(RpcKind::DeleteVolume, 1).as_secs_f64())
                .collect(),
        );
        let big = median(
            (0..2000)
                .map(|_| m.sample(RpcKind::DeleteVolume, 1000).as_secs_f64())
                .collect(),
        );
        assert!(
            big > small + 1.0,
            "1000 rows at 2ms each ≈ +2s, got {small} -> {big}"
        );
    }

    #[test]
    fn determinism_given_seed() {
        let mut a = LatencyModel::new(LatencyProfile::default(), 9);
        let mut b = LatencyModel::new(LatencyProfile::default(), 9);
        for _ in 0..100 {
            assert_eq!(
                a.sample(RpcKind::GetDelta, 0),
                b.sample(RpcKind::GetDelta, 0)
            );
        }
    }
}
