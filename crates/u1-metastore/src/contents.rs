//! The striped, epoch-visibility cross-user content index (file-level
//! dedup, §3.3/§5.3).
//!
//! The legacy index was one `RwLock<HashMap<ContentHash, ContentRow>>` —
//! a write lock on every commit and unlink, i.e. the single hottest point
//! of cross-shard contention in the whole store. This version fixes both
//! the *contention* and the *determinism* problem of running partitions in
//! parallel:
//!
//! * **Striping** — rows are spread over [`STRIPES`] independent locks by
//!   hash byte, so concurrent commits rarely collide.
//! * **Epoch visibility** — mutations made while partitions run
//!   concurrently are buffered as per-`(hash, origin)` deltas. An origin
//!   observes the committed state plus *its own* deltas only; other
//!   origins' same-epoch activity stays invisible until [`ContentIndex::seal`]
//!   folds the deltas at a synchronization barrier (the driver's day
//!   boundary). Visibility therefore depends only on (origin, epoch), never
//!   on thread interleaving — the same seed gives the same dedup decisions
//!   at any worker count.
//!
//! With a single origin (every unit test, live TCP mode, the serial
//! driver's coordinator-free paths) an origin sees all of its own deltas
//! immediately, which is exactly the legacy immediate-visibility semantics.

use crate::model::ContentRow;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use u1_core::{ContentHash, SimTime};

/// Number of index stripes. Power of two, comfortably above any plausible
/// worker count so stripe collisions stay rare.
pub const STRIPES: usize = 64;

/// Buffered same-epoch activity of one origin on one hash.
#[derive(Debug, Clone)]
struct Delta {
    /// Net refcount change (increfs minus decrefs) this epoch.
    delta: i64,
    /// Size recorded at this origin's first incref (sizes are a pure
    /// function of the hash in this model, so any origin's value agrees).
    size: u64,
    /// Time of this origin's first incref this epoch.
    first_seen: SimTime,
    /// The origin's *view* of the refcount hit zero at some point this
    /// epoch — the caller then deleted the blob, so if the hash survives
    /// the fold the blob must be restored.
    view_zeroed: bool,
}

#[derive(Debug, Default)]
struct Stripe {
    /// Rows visible to every origin (folded at the last seal).
    committed: HashMap<ContentHash, ContentRow>,
    /// Same-epoch deltas, visible only to their origin.
    pending: HashMap<(ContentHash, u32), Delta>,
}

impl Stripe {
    /// Refcount as seen by `origin`: committed plus its own delta.
    fn view_refcount(&self, hash: ContentHash, origin: u32) -> i64 {
        let committed = self
            .committed
            .get(&hash)
            .map(|r| r.refcount as i64)
            .unwrap_or(0);
        let delta = self
            .pending
            .get(&(hash, origin))
            .map(|d| d.delta)
            .unwrap_or(0);
        committed + delta
    }
}

/// What a [`ContentIndex::seal`] fold decided about the object store.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SealOutcome {
    /// Hashes whose folded refcount is zero: delete from the object store
    /// (idempotent — an origin may already have deleted them mid-epoch).
    pub dead: Vec<ContentHash>,
    /// `(hash, size)` pairs that survived the fold but whose blob an
    /// origin deleted mid-epoch on a view-local zero: restore them.
    pub live: Vec<(ContentHash, u64)>,
}

/// The striped content index.
#[derive(Debug)]
pub struct ContentIndex {
    stripes: Vec<Mutex<Stripe>>,
}

impl Default for ContentIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentIndex {
    pub fn new() -> Self {
        Self {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
        }
    }

    fn stripe(&self, hash: ContentHash) -> &Mutex<Stripe> {
        &self.stripes[hash.0[0] as usize % STRIPES]
    }

    /// Adds one reference from `origin`.
    pub fn incref(&self, hash: ContentHash, size: u64, now: SimTime, origin: u32) {
        let mut stripe = self.stripe(hash).lock();
        let entry = stripe.pending.entry((hash, origin)).or_insert(Delta {
            delta: 0,
            size,
            first_seen: now,
            view_zeroed: false,
        });
        entry.delta += 1;
    }

    /// Undoes one same-epoch incref (same content re-attached to the same
    /// node: the commit double-counted and takes the count back).
    pub fn undo_incref(&self, hash: ContentHash, origin: u32) {
        let mut stripe = self.stripe(hash).lock();
        if let Some(entry) = stripe.pending.get_mut(&(hash, origin)) {
            entry.delta -= 1;
        }
    }

    /// Drops one reference from `origin`. Returns `true` when the origin's
    /// view of the refcount reached zero — the caller deletes the blob,
    /// exactly like the legacy remove-at-zero path.
    pub fn decref(&self, hash: ContentHash, origin: u32) -> bool {
        let mut stripe = self.stripe(hash).lock();
        let entry = stripe.pending.entry((hash, origin)).or_insert(Delta {
            delta: 0,
            size: 0,
            first_seen: SimTime::ZERO,
            view_zeroed: false,
        });
        entry.delta -= 1;
        // Exactly zero: the last visible reference went away right now. A
        // negative view means an unbalanced release (legacy semantics:
        // decref of an untracked hash is a no-op).
        if stripe.view_refcount(hash, origin) == 0 {
            if let Some(entry) = stripe.pending.get_mut(&(hash, origin)) {
                entry.view_zeroed = true;
            }
            true
        } else {
            false
        }
    }

    /// The dedup probe: the row as seen by `origin`, if its view holds at
    /// least one reference.
    pub fn probe(&self, hash: ContentHash, origin: u32) -> Option<ContentRow> {
        let stripe = self.stripe(hash).lock();
        let refcount = stripe.view_refcount(hash, origin);
        if refcount <= 0 {
            return None;
        }
        let (size, first_seen) = match stripe.committed.get(&hash) {
            Some(row) => (row.size, row.first_seen),
            None => {
                let d = stripe.pending.get(&(hash, origin))?;
                (d.size, d.first_seen)
            }
        };
        Some(ContentRow {
            hash,
            size,
            refcount: refcount as u64,
            first_seen,
        })
    }

    /// Folds every pending delta into the committed state. Called at a
    /// synchronization barrier (no concurrent mutators). The fold is
    /// deterministic: per hash it combines origins by commutative
    /// aggregates (sum of deltas, min of first-seen), so the outcome is
    /// independent of both worker count and arrival order.
    pub fn seal(&self) -> SealOutcome {
        let mut out = SealOutcome::default();
        for stripe in &self.stripes {
            let mut stripe = stripe.lock();
            // Group drained deltas by hash, in deterministic hash order.
            let mut by_hash: BTreeMap<[u8; 20], Vec<Delta>> = BTreeMap::new();
            for ((hash, _origin), delta) in stripe.pending.drain() {
                by_hash.entry(hash.0).or_default().push(delta);
            }
            for (hash_bytes, deltas) in by_hash {
                let hash = ContentHash(hash_bytes);
                let total: i64 = deltas.iter().map(|d| d.delta).sum();
                let zeroed = deltas.iter().any(|d| d.view_zeroed);
                let increfed = deltas.iter().filter(|d| d.delta > 0 || d.size > 0);
                let size = increfed.clone().map(|d| d.size).max().unwrap_or(0);
                let first_seen = increfed
                    .map(|d| d.first_seen)
                    .min()
                    .unwrap_or(SimTime::ZERO);
                let folded = match stripe.committed.get(&hash) {
                    Some(row) => ContentRow {
                        refcount: row.refcount.saturating_add_signed(total),
                        ..row.clone()
                    },
                    None => ContentRow {
                        hash,
                        size,
                        refcount: total.max(0) as u64,
                        first_seen,
                    },
                };
                if folded.refcount == 0 {
                    stripe.committed.remove(&hash);
                    out.dead.push(hash);
                } else {
                    if zeroed {
                        out.live.push((hash, folded.size));
                    }
                    stripe.committed.insert(hash, folded);
                }
            }
        }
        out.dead.sort();
        out.live.sort();
        out
    }

    /// Global-view aggregate over committed rows plus all pending deltas:
    /// `(distinct_contents, unique_bytes, total_bytes)`. Single-origin
    /// callers get exact legacy numbers; mid-epoch multi-origin callers get
    /// the state a seal would commit.
    pub fn fold_stats(&self) -> (usize, u64, u64) {
        let mut count = 0usize;
        let mut unique = 0u64;
        let mut total = 0u64;
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            let mut folded: HashMap<ContentHash, (u64, i64)> = stripe
                .committed
                .iter()
                .map(|(h, r)| (*h, (r.size, r.refcount as i64)))
                .collect();
            for ((hash, _origin), delta) in &stripe.pending {
                let entry = folded.entry(*hash).or_insert((delta.size, 0));
                entry.1 += delta.delta;
                if entry.0 == 0 {
                    entry.0 = delta.size;
                }
            }
            for (size, refcount) in folded.values() {
                if *refcount > 0 {
                    count += 1;
                    unique += size;
                    total += size * (*refcount as u64);
                }
            }
        }
        (count, unique, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u64) -> ContentHash {
        ContentHash::from_content_id(n)
    }

    #[test]
    fn single_origin_sees_its_own_writes_immediately() {
        let idx = ContentIndex::new();
        assert!(idx.probe(h(1), 0).is_none());
        idx.incref(h(1), 100, SimTime::ZERO, 0);
        let row = idx.probe(h(1), 0).unwrap();
        assert_eq!(row.refcount, 1);
        assert_eq!(row.size, 100);
        assert!(idx.decref(h(1), 0), "last ref released");
        assert!(idx.probe(h(1), 0).is_none());
    }

    #[test]
    fn cross_origin_writes_are_invisible_until_seal() {
        let idx = ContentIndex::new();
        idx.incref(h(1), 100, SimTime::ZERO, 0);
        assert!(idx.probe(h(1), 1).is_none(), "other origin blind pre-seal");
        let outcome = idx.seal();
        assert!(outcome.dead.is_empty());
        assert!(outcome.live.is_empty());
        assert_eq!(idx.probe(h(1), 1).unwrap().refcount, 1);
    }

    #[test]
    fn seal_reports_dead_and_restored_hashes() {
        let idx = ContentIndex::new();
        idx.incref(h(1), 50, SimTime::ZERO, 0);
        idx.seal();
        // Origin 0 drops the only committed ref (and would delete the
        // blob), while origin 1 gains one in the same epoch.
        assert!(idx.decref(h(1), 0));
        idx.incref(h(1), 50, SimTime::from_secs(2), 1);
        let outcome = idx.seal();
        assert!(outcome.dead.is_empty());
        assert_eq!(outcome.live, vec![(h(1), 50)], "blob must be restored");
        assert_eq!(idx.probe(h(1), 0).unwrap().refcount, 1);
        // Now the last ref goes away for real.
        assert!(idx.decref(h(1), 1));
        let outcome = idx.seal();
        assert_eq!(outcome.dead, vec![h(1)]);
        assert!(idx.probe(h(1), 1).is_none());
    }

    #[test]
    fn fold_stats_match_a_sealed_view() {
        let idx = ContentIndex::new();
        idx.incref(h(1), 100, SimTime::ZERO, 0);
        idx.incref(h(1), 100, SimTime::ZERO, 1);
        idx.incref(h(2), 30, SimTime::ZERO, 2);
        let (count, unique, total) = idx.fold_stats();
        assert_eq!((count, unique, total), (2, 130, 230));
        idx.seal();
        assert_eq!(idx.fold_stats(), (2, 130, 230));
    }

    #[test]
    fn first_seen_folds_to_the_earliest_origin() {
        let idx = ContentIndex::new();
        idx.incref(h(9), 10, SimTime::from_secs(20), 3);
        idx.incref(h(9), 10, SimTime::from_secs(5), 7);
        idx.seal();
        assert_eq!(
            idx.probe(h(9), 0).unwrap().first_seen,
            SimTime::from_secs(5)
        );
    }
}
