//! Raw `epoll` FFI.
//!
//! The declarations bind symbols from the C library that `std` already
//! links on Linux — no `libc` crate, no build script. Layout note:
//! `struct epoll_event` is declared `__attribute__((packed))` in the kernel
//! UAPI headers **on x86-64 only** (a 2.6-era ABI accident preserved
//! forever); other architectures use natural alignment. The `cfg_attr`
//! below mirrors that exactly — getting it wrong corrupts the `data` field
//! of every second event in a `epoll_wait` batch.

use std::os::raw::c_int;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half — surfaced so half-closed connections are
/// torn down without waiting for a read to return 0.
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

/// `EPOLL_CLOEXEC` (== `O_CLOEXEC`): the epoll fd must not leak into
/// subprocesses the host happens to spawn.
pub const EPOLL_CLOEXEC: c_int = 0o2000000;

#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned cookie, returned verbatim with each event.
    pub data: u64,
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut EpollEvent,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_the_kernel_abi() {
        // 12 bytes packed on x86-64, 16 bytes naturally aligned elsewhere.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
            assert_eq!(std::mem::align_of::<EpollEvent>(), 1);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }
}
