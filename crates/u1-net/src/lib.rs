//! Readiness polling for the wire tier (DESIGN.md §15).
//!
//! The real UbuntuOne API servers were Twisted processes: a single-threaded
//! event loop multiplexing thousands of persistent client connections over
//! `epoll`. This crate vendors exactly the slice of that machinery the
//! serving tier needs — nothing else:
//!
//! * [`Poller`] — a level-triggered `epoll` instance
//!   (`epoll_create1`/`epoll_ctl`/`epoll_wait` via direct FFI; the symbols
//!   come from the libc that `std` already links, so no external crate is
//!   involved),
//! * [`Interest`] — the read/write readiness a registration asks for
//!   (write interest is toggled dynamically for backpressure),
//! * [`Event`] — one readiness notification, carrying the caller's token.
//!
//! Deliberately **not** here: timers, wakers, executors, or any task
//! abstraction. The reactor in `u1-server::tcpserver` owns its loop and
//! calls [`Poller::wait`] with a short timeout; everything above readiness
//! (connection state machines, send queues, admission control) lives with
//! the policy that needs it.
//!
//! Only Linux has an implementation; on other targets every call returns
//! [`std::io::ErrorKind::Unsupported`] so the workspace still builds.

mod poller;
#[cfg(target_os = "linux")]
mod sys;

pub use poller::{Event, Interest, Poller};
