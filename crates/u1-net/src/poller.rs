//! The [`Poller`]: a thin, safe wrapper over one epoll instance.

#[cfg(target_os = "linux")]
use std::os::fd::RawFd;
#[cfg(not(target_os = "linux"))]
pub type RawFd = i32;

/// Readiness a registration subscribes to.
///
/// Connections are registered read-only while their send queue is empty;
/// the reactor flips write interest on when a partial write leaves bytes
/// queued and off again once the queue drains — the write-interest toggle
/// that turns kernel socket backpressure into reactor-visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification.
///
/// `hangup` folds `EPOLLERR | EPOLLHUP | EPOLLRDHUP` together: every one of
/// them means the connection is done for — the U1 session dies with its TCP
/// connection (§3.1.1), so the reactor tears the connection down rather
/// than distinguishing how it died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// A level-triggered epoll instance.
///
/// Level-triggered on purpose: the reactor may stop reading a connection
/// mid-burst (fairness, admission), and level semantics re-arm the
/// notification for free instead of requiring an exhaustive drain per wake
/// (the edge-triggered contract).
#[derive(Debug)]
pub struct Poller {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest, Poller};
    use crate::sys;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    impl Poller {
        /// Creates a fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes a flags word and returns an fd or
            // -1; no pointers are involved.
            let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it before
            // returning. `fd` validity is the caller's contract (the reactor
            // registers sockets it owns).
            cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest of an already registered fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Removes `fd` from the instance. (Closing the fd does this too —
        /// this exists for fds that outlive their registration.)
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = sys::EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `ctl`; pre-2.6.9 kernels required a non-null
            // event pointer for DEL, and passing one is harmless after.
            cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        /// Waits for readiness, appending into `out`. `None` blocks
        /// indefinitely; `Some(d)` waits at most `d` (rounded up to 1ms so a
        /// nonzero timeout never busy-spins as zero). A signal interruption
        /// (`EINTR`) is reported as zero events, not an error.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            const CAPACITY: usize = 256;
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAPACITY];
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => c_int::try_from(d.as_millis().max(1)).unwrap_or(c_int::MAX),
            };
            // SAFETY: `buf` is a valid writable array of CAPACITY events;
            // the kernel writes at most CAPACITY entries and returns the
            // count.
            let n = unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAPACITY as c_int, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            let n = usize::try_from(n).unwrap_or(0);
            for ev in buf.iter().take(n) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & sys::EPOLLIN != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is an fd this Poller exclusively owns.
            unsafe {
                sys::close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest, Poller};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "u1-net polling is only implemented on Linux",
        ))
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }
        pub fn register(&self, _fd: super::RawFd, _t: u64, _i: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn reregister(&self, _fd: super::RawFd, _t: u64, _i: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn deregister(&self, _fd: super::RawFd) -> io::Result<()> {
            unsupported()
        }
        pub fn wait(&self, _out: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            unsupported()
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn readable_event_fires_when_bytes_arrive() {
        let poller = Poller::new().expect("poller");
        let (mut a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        poller
            .register(b.as_raw_fd(), 7, Interest::READ)
            .expect("register");

        let mut events = Vec::new();
        // Nothing buffered yet: a short wait returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        a.write_all(b"ping").expect("write");
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.readable);
    }

    #[test]
    fn write_interest_toggles_and_hangup_is_reported() {
        let poller = Poller::new().expect("poller");
        let (a, mut b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        poller
            .register(b.as_raw_fd(), 1, Interest::READ_WRITE)
            .expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 1 && e.writable),
            "an idle socket is writable"
        );

        // Drop write interest; only readable/hangup can fire now.
        poller
            .reregister(b.as_raw_fd(), 1, Interest::READ)
            .expect("reregister");
        drop(a); // peer closes -> hangup
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        let ev = events.iter().find(|e| e.token == 1).expect("event");
        assert!(ev.hangup || ev.readable, "close surfaces as hangup/EOF");
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).expect("eof read"), 0);
        poller.deregister(b.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn level_triggered_events_rearm_until_drained() {
        let poller = Poller::new().expect("poller");
        let (mut a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        poller
            .register(b.as_raw_fd(), 3, Interest::READ)
            .expect("register");
        a.write_all(b"xyz").expect("write");
        for _ in 0..2 {
            // Not reading the bytes: the event must fire again (level
            // semantics), which is what lets the reactor defer work.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .expect("wait");
            assert!(events.iter().any(|e| e.token == 3 && e.readable));
        }
    }
}
