//! The object store proper.

use crate::multipart::{MultipartError, MultipartUpload};
use crate::tier::Tier;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use u1_core::{ContentHash, FaultInjector, SimTime};

/// Metadata of a stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    pub hash: ContentHash,
    pub size: u64,
    pub stored_at: SimTime,
    pub last_access: SimTime,
    pub tier: Tier,
    /// Number of GETs served for this object.
    pub reads: u64,
}

#[derive(Debug)]
struct StoredObject {
    meta: ObjectMeta,
    /// Present in live mode (real bytes); `None` in measurement mode where
    /// only sizes matter. Either way `meta.size` is authoritative.
    data: Option<Vec<u8>>,
}

/// Aggregate counters, the raw material for storage-cost accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlobStoreStats {
    pub objects: u64,
    pub bytes_stored: u64,
    pub put_ops: u64,
    pub get_ops: u64,
    pub delete_ops: u64,
    pub bytes_uploaded: u64,
    pub bytes_downloaded: u64,
    pub multipart_initiated: u64,
    pub multipart_completed: u64,
    pub multipart_aborted: u64,
    /// Part-puts rejected by the fault injector (0 without a fault plan).
    pub part_put_failures: u64,
}

/// The S3 stand-in. Thread-safe; all methods take `&self`.
#[derive(Debug, Default)]
pub struct BlobStore {
    objects: RwLock<HashMap<ContentHash, StoredObject>>,
    multiparts: RwLock<HashMap<u64, MultipartUpload>>,
    next_multipart: AtomicU64,
    put_ops: AtomicU64,
    get_ops: AtomicU64,
    delete_ops: AtomicU64,
    bytes_uploaded: AtomicU64,
    bytes_downloaded: AtomicU64,
    mp_initiated: AtomicU64,
    mp_completed: AtomicU64,
    mp_aborted: AtomicU64,
    part_put_failures: AtomicU64,
    /// Fault-injection plane; `None` (the default) never fails a part-put.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

impl BlobStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the run's fault injector; part-puts then fail with the
    /// plan's `part_put_p` probability.
    pub fn set_faults(&self, injector: Arc<FaultInjector>) {
        *self.faults.write() = Some(injector);
    }

    /// Whether an object with this content identity exists.
    pub fn contains(&self, hash: ContentHash) -> bool {
        self.objects.read().contains_key(&hash)
    }

    /// Direct PUT of a whole object (used for single-shot small uploads and
    /// for seeding test fixtures). Idempotent: re-putting the same content
    /// is a no-op, which is exactly how content-addressed storage behaves.
    pub fn put(&self, hash: ContentHash, size: u64, data: Option<Vec<u8>>, now: SimTime) {
        self.put_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_uploaded.fetch_add(size, Ordering::Relaxed);
        let mut objects = self.objects.write();
        objects.entry(hash).or_insert_with(|| StoredObject {
            meta: ObjectMeta {
                hash,
                size,
                stored_at: now,
                last_access: now,
                tier: Tier::Hot,
                reads: 0,
            },
            data,
        });
    }

    /// GET: returns metadata and (in live mode) bytes. Records the access
    /// for tiering. Cold-tier reads still succeed — tiering is a cost
    /// model, not an availability model.
    pub fn get(&self, hash: ContentHash, now: SimTime) -> Option<(ObjectMeta, Option<Vec<u8>>)> {
        self.get_ops.fetch_add(1, Ordering::Relaxed);
        let mut objects = self.objects.write();
        let obj = objects.get_mut(&hash)?;
        obj.meta.last_access = now;
        obj.meta.reads += 1;
        obj.meta.tier = Tier::Hot;
        self.bytes_downloaded
            .fetch_add(obj.meta.size, Ordering::Relaxed);
        Some((obj.meta.clone(), obj.data.clone()))
    }

    /// Peeks metadata without counting an access.
    pub fn head(&self, hash: ContentHash) -> Option<ObjectMeta> {
        self.objects.read().get(&hash).map(|o| o.meta.clone())
    }

    /// DELETE. Returns true if the object existed.
    pub fn delete(&self, hash: ContentHash) -> bool {
        self.delete_ops.fetch_add(1, Ordering::Relaxed);
        self.objects.write().remove(&hash).is_some()
    }

    // ----- multipart (Appendix A) ----------------------------------------

    /// Initiates a multipart upload and returns its id (the id the API
    /// server stores into the uploadjob via
    /// `dal.set_uploadjob_multipart_id`).
    pub fn initiate_multipart(&self, now: SimTime) -> u64 {
        self.mp_initiated.fetch_add(1, Ordering::Relaxed);
        let id = self.next_multipart.fetch_add(1, Ordering::Relaxed) + 1;
        self.multiparts
            .write()
            .insert(id, MultipartUpload::new(id, now));
        id
    }

    /// Uploads one part. With a fault injector installed, the put may fail
    /// transiently *before* the part is recorded — the multipart session
    /// stays valid and the caller resumes from the last successful part.
    pub fn upload_part(
        &self,
        multipart_id: u64,
        data_len: u64,
        data: Option<Vec<u8>>,
    ) -> Result<(), MultipartError> {
        if let Some(faults) = self.faults.read().as_ref() {
            if faults.part_put_fails() {
                self.part_put_failures.fetch_add(1, Ordering::Relaxed);
                u1_core::fault::set_error_class(Some(u1_core::fault::ErrorClass::PartPut));
                return Err(MultipartError::PartPutFailed);
            }
        }
        let mut mps = self.multiparts.write();
        let mp = mps
            .get_mut(&multipart_id)
            .ok_or(MultipartError::UnknownUpload)?;
        mp.add_part(data_len, data)
    }

    /// Completes a multipart upload, materializing the object under `hash`.
    pub fn complete_multipart(
        &self,
        multipart_id: u64,
        hash: ContentHash,
        now: SimTime,
    ) -> Result<ObjectMeta, MultipartError> {
        let mp = self
            .multiparts
            .write()
            .remove(&multipart_id)
            .ok_or(MultipartError::UnknownUpload)?;
        if mp.parts() == 0 {
            // Restore: completing an empty upload is invalid.
            self.multiparts.write().insert(multipart_id, mp);
            return Err(MultipartError::NoParts);
        }
        self.mp_completed.fetch_add(1, Ordering::Relaxed);
        let (size, data) = mp.into_object();
        self.bytes_uploaded.fetch_add(size, Ordering::Relaxed);
        self.put_ops.fetch_add(1, Ordering::Relaxed);
        let mut objects = self.objects.write();
        let obj = objects.entry(hash).or_insert_with(|| StoredObject {
            meta: ObjectMeta {
                hash,
                size,
                stored_at: now,
                last_access: now,
                tier: Tier::Hot,
                reads: 0,
            },
            data,
        });
        Ok(obj.meta.clone())
    }

    /// Aborts a multipart upload, discarding its parts (driven by client
    /// cancellation or the weekly uploadjob GC).
    pub fn abort_multipart(&self, multipart_id: u64) -> Result<(), MultipartError> {
        self.multiparts
            .write()
            .remove(&multipart_id)
            .map(|_| {
                self.mp_aborted.fetch_add(1, Ordering::Relaxed);
            })
            .ok_or(MultipartError::UnknownUpload)
    }

    /// Parts received so far for an in-flight multipart upload.
    pub fn multipart_progress(&self, multipart_id: u64) -> Option<(usize, u64)> {
        self.multiparts
            .read()
            .get(&multipart_id)
            .map(|mp| (mp.parts(), mp.bytes()))
    }

    // ----- accounting ------------------------------------------------------

    pub fn stats(&self) -> BlobStoreStats {
        let objects = self.objects.read();
        BlobStoreStats {
            objects: objects.len() as u64,
            bytes_stored: objects.values().map(|o| o.meta.size).sum(),
            put_ops: self.put_ops.load(Ordering::Relaxed),
            get_ops: self.get_ops.load(Ordering::Relaxed),
            delete_ops: self.delete_ops.load(Ordering::Relaxed),
            bytes_uploaded: self.bytes_uploaded.load(Ordering::Relaxed),
            bytes_downloaded: self.bytes_downloaded.load(Ordering::Relaxed),
            multipart_initiated: self.mp_initiated.load(Ordering::Relaxed),
            multipart_completed: self.mp_completed.load(Ordering::Relaxed),
            multipart_aborted: self.mp_aborted.load(Ordering::Relaxed),
            part_put_failures: self.part_put_failures.load(Ordering::Relaxed),
        }
    }

    /// Applies `f` to every object's metadata (tier sweeps, reports).
    pub fn for_each_meta_mut(&self, mut f: impl FnMut(&mut ObjectMeta)) {
        for obj in self.objects.write().values_mut() {
            f(&mut obj.meta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u64) -> ContentHash {
        ContentHash::from_content_id(i)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let s = BlobStore::new();
        s.put(h(1), 100, Some(vec![7u8; 100]), SimTime::ZERO);
        assert!(s.contains(h(1)));
        let (meta, data) = s.get(h(1), SimTime::from_secs(5)).unwrap();
        assert_eq!(meta.size, 100);
        assert_eq!(meta.reads, 1);
        assert_eq!(data.unwrap().len(), 100);
        assert!(s.delete(h(1)));
        assert!(!s.delete(h(1)));
        assert!(s.get(h(1), SimTime::ZERO).is_none());
    }

    #[test]
    fn put_is_idempotent_per_content() {
        let s = BlobStore::new();
        s.put(h(1), 100, None, SimTime::ZERO);
        s.put(h(1), 100, None, SimTime::from_secs(1));
        let stats = s.stats();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.bytes_stored, 100);
        // Both PUTs count as traffic though — the dedup *saving* comes from
        // not issuing the second PUT at all.
        assert_eq!(stats.bytes_uploaded, 200);
    }

    #[test]
    fn multipart_happy_path() {
        let s = BlobStore::new();
        let id = s.initiate_multipart(SimTime::ZERO);
        s.upload_part(id, 5 << 20, None).unwrap();
        s.upload_part(id, 5 << 20, None).unwrap();
        s.upload_part(id, 1 << 20, None).unwrap();
        let meta = s
            .complete_multipart(id, h(9), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(meta.size, 11 << 20);
        assert!(s.contains(h(9)));
        let stats = s.stats();
        assert_eq!(stats.multipart_initiated, 1);
        assert_eq!(stats.multipart_completed, 1);
        // Completed upload's id is gone.
        assert!(s.upload_part(id, 1, None).is_err());
    }

    #[test]
    fn multipart_abort_discards_parts() {
        let s = BlobStore::new();
        let id = s.initiate_multipart(SimTime::ZERO);
        s.upload_part(id, 1000, None).unwrap();
        assert_eq!(s.multipart_progress(id), Some((1, 1000)));
        s.abort_multipart(id).unwrap();
        assert_eq!(s.multipart_progress(id), None);
        assert!(s.abort_multipart(id).is_err());
        assert_eq!(s.stats().multipart_aborted, 1);
    }

    #[test]
    fn completing_empty_or_unknown_multipart_fails() {
        let s = BlobStore::new();
        assert_eq!(
            s.complete_multipart(404, h(1), SimTime::ZERO),
            Err(MultipartError::UnknownUpload)
        );
        let id = s.initiate_multipart(SimTime::ZERO);
        assert_eq!(
            s.complete_multipart(id, h(1), SimTime::ZERO),
            Err(MultipartError::NoParts)
        );
        // Still resumable after the failed complete.
        s.upload_part(id, 10, None).unwrap();
        assert!(s.complete_multipart(id, h(1), SimTime::ZERO).is_ok());
    }

    #[test]
    fn injected_part_put_failures_leave_upload_resumable() {
        use u1_core::FaultPlan;
        let s = BlobStore::new();
        let plan = FaultPlan {
            part_put_p: 0.5,
            ..FaultPlan::none()
        };
        s.set_faults(Arc::new(FaultInjector::new(plan, 3)));
        let id = s.initiate_multipart(SimTime::ZERO);
        let mut ok = 0u64;
        let mut failed = 0u64;
        for _ in 0..64 {
            match s.upload_part(id, 100, None) {
                Ok(()) => ok += 1,
                Err(MultipartError::PartPutFailed) => failed += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(ok > 0 && failed > 0, "ok={ok} failed={failed}");
        // Failed puts recorded nothing; the session stays resumable with
        // exactly the successful parts.
        assert_eq!(s.multipart_progress(id), Some((ok as usize, ok * 100)));
        assert_eq!(s.stats().part_put_failures, failed);
        assert!(s.complete_multipart(id, h(77), SimTime::ZERO).is_ok());
    }

    #[test]
    fn live_mode_multipart_carries_bytes() {
        let s = BlobStore::new();
        let id = s.initiate_multipart(SimTime::ZERO);
        s.upload_part(id, 3, Some(vec![1, 2, 3])).unwrap();
        s.upload_part(id, 2, Some(vec![4, 5])).unwrap();
        s.complete_multipart(id, h(2), SimTime::ZERO).unwrap();
        let (_, data) = s.get(h(2), SimTime::ZERO).unwrap();
        assert_eq!(data.unwrap(), vec![1, 2, 3, 4, 5]);
    }
}
