//! Warm/cold storage tiering — the §9 improvement the paper suggests:
//! "U1 may benefit from cold/warm storage services (e.g., Amazon Glacier,
//! f4) to limit the costs related to most inactive users", grounded in the
//! §5.2 observation that ~9% of files sat unused for more than a day before
//! deletion.
//!
//! The model is a cost model, not an availability model: objects demote to
//! Warm and then Cold as they go unaccessed, each tier with its own $/GB
//! rate, and any GET promotes back to Hot. The ablation bench compares the
//! monthly storage bill with and without tiering.

use crate::store::BlobStore;
use u1_core::{SimDuration, SimTime};

/// Storage temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    Hot,
    Warm,
    Cold,
}

/// Demotion thresholds and per-tier monthly prices.
#[derive(Debug, Clone)]
pub struct TierPolicy {
    /// Unaccessed for this long ⇒ demote Hot → Warm.
    pub warm_after: SimDuration,
    /// Unaccessed for this long ⇒ demote Warm → Cold.
    pub cold_after: SimDuration,
    /// $/GB/month per tier. Defaults approximate 2014 S3 standard vs
    /// reduced-redundancy vs Glacier pricing.
    pub hot_price: f64,
    pub warm_price: f64,
    pub cold_price: f64,
}

impl Default for TierPolicy {
    fn default() -> Self {
        Self {
            warm_after: SimDuration::from_days(7),
            cold_after: SimDuration::from_days(21),
            hot_price: 0.030,
            warm_price: 0.024,
            cold_price: 0.010,
        }
    }
}

/// Outcome of one tier sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TierSweepReport {
    pub hot_objects: u64,
    pub warm_objects: u64,
    pub cold_objects: u64,
    pub hot_bytes: u64,
    pub warm_bytes: u64,
    pub cold_bytes: u64,
    pub demoted_to_warm: u64,
    pub demoted_to_cold: u64,
}

impl TierSweepReport {
    /// Monthly storage bill under `policy`.
    pub fn monthly_cost(&self, policy: &TierPolicy) -> f64 {
        const GB: f64 = 1_000_000_000.0;
        self.hot_bytes as f64 / GB * policy.hot_price
            + self.warm_bytes as f64 / GB * policy.warm_price
            + self.cold_bytes as f64 / GB * policy.cold_price
    }

    /// The bill if everything stayed Hot — the no-tiering baseline.
    pub fn monthly_cost_flat(&self, policy: &TierPolicy) -> f64 {
        const GB: f64 = 1_000_000_000.0;
        (self.hot_bytes + self.warm_bytes + self.cold_bytes) as f64 / GB * policy.hot_price
    }
}

/// Runs one demotion sweep over the store.
pub fn tier_sweep(store: &BlobStore, policy: &TierPolicy, now: SimTime) -> TierSweepReport {
    let mut report = TierSweepReport::default();
    store.for_each_meta_mut(|meta| {
        let idle = now.since(meta.last_access);
        let new_tier = if idle > policy.cold_after {
            Tier::Cold
        } else if idle > policy.warm_after {
            Tier::Warm
        } else {
            meta.tier
        };
        if new_tier > meta.tier {
            match new_tier {
                Tier::Warm => report.demoted_to_warm += 1,
                Tier::Cold => report.demoted_to_cold += 1,
                Tier::Hot => {}
            }
            meta.tier = new_tier;
        }
        match meta.tier {
            Tier::Hot => {
                report.hot_objects += 1;
                report.hot_bytes += meta.size;
            }
            Tier::Warm => {
                report.warm_objects += 1;
                report.warm_bytes += meta.size;
            }
            Tier::Cold => {
                report.cold_objects += 1;
                report.cold_bytes += meta.size;
            }
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use u1_core::ContentHash;

    fn h(i: u64) -> ContentHash {
        ContentHash::from_content_id(i)
    }

    #[test]
    fn objects_demote_with_idleness_and_promote_on_access() {
        let store = BlobStore::new();
        let policy = TierPolicy::default();
        store.put(h(1), 1_000, None, SimTime::ZERO);
        store.put(h(2), 2_000, None, SimTime::ZERO);

        // Day 10: both idle > 7d ⇒ warm.
        let report = tier_sweep(&store, &policy, SimTime::from_days(10));
        assert_eq!(report.warm_objects, 2);
        assert_eq!(report.demoted_to_warm, 2);

        // Access object 1 at day 20; sweep at day 25: 1 is hot again
        // (accessed 5d ago), 2 idle 25d ⇒ cold.
        store.get(h(1), SimTime::from_days(20));
        let report = tier_sweep(&store, &policy, SimTime::from_days(25));
        assert_eq!(report.hot_objects, 1);
        assert_eq!(report.cold_objects, 1);
        assert_eq!(report.hot_bytes, 1_000);
        assert_eq!(report.cold_bytes, 2_000);
    }

    #[test]
    fn tiering_reduces_the_bill() {
        let store = BlobStore::new();
        let policy = TierPolicy::default();
        for i in 0..100 {
            store.put(h(i), 1_000_000_000, None, SimTime::ZERO); // 1GB each
        }
        let report = tier_sweep(&store, &policy, SimTime::from_days(30));
        assert_eq!(report.cold_objects, 100);
        let tiered = report.monthly_cost(&policy);
        let flat = report.monthly_cost_flat(&policy);
        assert!(
            tiered < flat * 0.5,
            "cold storage should cut cost: {tiered} vs {flat}"
        );
    }

    #[test]
    fn fresh_objects_stay_hot() {
        let store = BlobStore::new();
        store.put(h(1), 10, None, SimTime::from_days(29));
        let report = tier_sweep(&store, &TierPolicy::default(), SimTime::from_days(30));
        assert_eq!(report.hot_objects, 1);
        assert_eq!(report.demoted_to_warm, 0);
    }
}
