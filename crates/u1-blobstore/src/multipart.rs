//! Multipart upload sessions (the S3 API surface of Appendix A).

use u1_core::SimTime;

/// The part size the U1 API servers used when forwarding client data to S3
/// (Appendix A: "the API server uploads to Amazon S3 the chunks of the file
/// transferred by the user (5MB)").
pub const PART_SIZE: u64 = 5 * 1024 * 1024;

/// Errors from the multipart API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultipartError {
    /// No such multipart upload id (never initiated, or already
    /// completed/aborted).
    UnknownUpload,
    /// Completing an upload that received no parts.
    NoParts,
    /// A zero-byte part.
    EmptyPart,
    /// The part-put failed transiently (injected fault). The upload itself
    /// stays alive: the part was not recorded, and re-sending it resumes
    /// from the last part that did arrive — the behavior uploadjobs exist
    /// for (§3).
    PartPutFailed,
}

impl std::fmt::Display for MultipartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultipartError::UnknownUpload => write!(f, "unknown multipart upload"),
            MultipartError::NoParts => write!(f, "multipart upload has no parts"),
            MultipartError::EmptyPart => write!(f, "empty part"),
            MultipartError::PartPutFailed => write!(f, "part put failed transiently"),
        }
    }
}

impl std::error::Error for MultipartError {}

/// An in-flight multipart upload.
#[derive(Debug)]
pub struct MultipartUpload {
    pub id: u64,
    pub initiated_at: SimTime,
    part_sizes: Vec<u64>,
    /// Concatenated bytes in live mode; `None` once any size-only part
    /// arrives (measurement mode).
    data: Option<Vec<u8>>,
}

impl MultipartUpload {
    pub fn new(id: u64, now: SimTime) -> Self {
        Self {
            id,
            initiated_at: now,
            part_sizes: Vec::new(),
            data: Some(Vec::new()),
        }
    }

    /// Appends a part. `data` carries real bytes in live mode.
    pub fn add_part(&mut self, len: u64, data: Option<Vec<u8>>) -> Result<(), MultipartError> {
        if len == 0 {
            return Err(MultipartError::EmptyPart);
        }
        self.part_sizes.push(len);
        match (self.data.as_mut(), data) {
            (Some(buf), Some(bytes)) => {
                debug_assert_eq!(bytes.len() as u64, len);
                buf.extend_from_slice(&bytes);
            }
            // Any size-only part degrades the whole upload to size-only.
            _ => self.data = None,
        }
        Ok(())
    }

    pub fn parts(&self) -> usize {
        self.part_sizes.len()
    }

    pub fn bytes(&self) -> u64 {
        self.part_sizes.iter().sum()
    }

    /// Consumes the upload into (size, bytes-if-live).
    pub fn into_object(self) -> (u64, Option<Vec<u8>>) {
        (self.part_sizes.iter().sum(), self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_parts_and_bytes() {
        let mut mp = MultipartUpload::new(1, SimTime::ZERO);
        mp.add_part(3, Some(vec![1, 2, 3])).unwrap();
        mp.add_part(2, Some(vec![4, 5])).unwrap();
        assert_eq!(mp.parts(), 2);
        assert_eq!(mp.bytes(), 5);
        let (size, data) = mp.into_object();
        assert_eq!(size, 5);
        assert_eq!(data.unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn mixing_size_only_degrades_to_size_only() {
        let mut mp = MultipartUpload::new(1, SimTime::ZERO);
        mp.add_part(3, Some(vec![1, 2, 3])).unwrap();
        mp.add_part(10, None).unwrap();
        mp.add_part(2, Some(vec![9, 9])).unwrap();
        let (size, data) = mp.into_object();
        assert_eq!(size, 15);
        assert!(data.is_none());
    }

    #[test]
    fn rejects_empty_parts() {
        let mut mp = MultipartUpload::new(1, SimTime::ZERO);
        assert_eq!(mp.add_part(0, None), Err(MultipartError::EmptyPart));
    }
}
