//! An S3-like object store standing in for Amazon S3 (us-east), where U1
//! kept all file contents (§3.2, §3.4).
//!
//! U1 interacted with S3 through exactly two surfaces, both reproduced here:
//!
//! * the **multipart upload API** (Appendix A): initiate → upload 5MB parts
//!   → complete/abort, driven by the server-side `uploadjob` state machine,
//! * plain GET/DELETE of whole objects keyed by content identity.
//!
//! Objects are keyed by the content's SHA-1, which is what makes the
//! file-level cross-user deduplication of §3.3 work: a dedup hit in the
//! metadata store means the object is already here.
//!
//! The [`tier`] module adds the warm/cold storage tiering the paper's §9
//! proposes as an improvement (citing Amazon Glacier and Facebook's f4) —
//! used by the ablation benches to quantify the suggestion.

pub mod multipart;
pub mod store;
pub mod tier;

pub use multipart::{MultipartError, MultipartUpload, PART_SIZE};
pub use store::{BlobStore, BlobStoreStats, ObjectMeta};
pub use tier::{Tier, TierPolicy, TierSweepReport};
