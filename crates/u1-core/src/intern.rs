//! Compact interning primitives for the memory-bounded scale path.
//!
//! The paper-scale month (1.29M users, Table 3) dies by a thousand small
//! heap allocations: a `String` per metastore row, a `String` per trace
//! record, a `Box` per node. This module provides the replacements:
//!
//! * [`Name`] — a 24-byte inline string (heap fallback past 22 bytes) for
//!   DTO rows handed across crate boundaries. Derefs to `str`, so existing
//!   call sites keep compiling.
//! * [`Ext`] — a fixed 17-byte, eagerly *sanitized* file extension (the
//!   trace serializer's charset: first 16 ASCII alphanumerics, lowercased),
//!   `Copy`, for the hot trace-record path.
//! * [`NameArena`] / [`NameId`] — a deduplicating string arena storing all
//!   names in one contiguous buffer, addressed by a `u32` id. Used by the
//!   metastore shards so node/volume rows carry 4-byte ids instead of
//!   owned strings.
//! * [`IdArena`] — a dense `u32` index over arbitrary (sparse, strided)
//!   entity ids, mapping each to a slab slot.
//!
//! Every `usize → u32` conversion at an arena boundary is checked
//! ([`to_u32`]): arena exhaustion is a cold `None`, never a truncating
//! cast (lint U1L002) and never a panic.

use crate::fxhash::FxHashMap;
use serde::{Serialize, SerializeKey, Value};
use std::borrow::Borrow;
use std::fmt;
use std::hash::Hash;
use std::ops::Deref;

/// Checked `usize → u32` for arena indices. `None` means the arena is full
/// (more than `u32::MAX` entries) — callers surface that as a resource
/// error instead of truncating.
#[inline]
pub fn to_u32(n: usize) -> Option<u32> {
    u32::try_from(n).ok()
}

// ---------------------------------------------------------------------------
// Name: inline-or-heap string
// ---------------------------------------------------------------------------

/// Max bytes stored inline. 22 + len byte + discriminant keeps the whole
/// enum at 24 bytes — the same size as an (empty!) `String` header, but
/// with no allocation for the overwhelmingly common short names
/// (`f1234567.jpg`, `Ubuntu One`, `dir42`).
const NAME_INLINE: usize = 22;

/// A small-string-optimized owned name. Short names live inline; longer
/// ones (rename chains like `r12_r7_f99.mp3` can grow unboundedly) fall
/// back to one `Box<str>`. Semantically a `str`: equality, ordering,
/// hashing and display all delegate to the text.
#[derive(Clone)]
pub enum Name {
    /// ≤ `NAME_INLINE` (22) bytes, stored in place.
    Inline { len: u8, buf: [u8; NAME_INLINE] },
    /// Longer names, boxed once.
    Heap(Box<str>),
}

impl Name {
    pub const EMPTY: Name = Name::Inline {
        len: 0,
        buf: [0; NAME_INLINE],
    };

    pub fn new(s: &str) -> Self {
        if s.len() <= NAME_INLINE {
            let mut buf = [0u8; NAME_INLINE];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            Name::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            Name::Heap(s.into())
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            // Construction copied from a valid &str prefix, so the bytes
            // are valid UTF-8; the checked form keeps this panic-free even
            // if they were not.
            Name::Inline { len, buf } => {
                std::str::from_utf8(&buf[..*len as usize]).unwrap_or_default()
            }
            Name::Heap(s) => s,
        }
    }

    /// True when the text fits inline (no heap allocation happened).
    pub fn is_inline(&self) -> bool {
        matches!(self, Name::Inline { .. })
    }
}

impl Default for Name {
    fn default() -> Self {
        Name::EMPTY
    }
}

impl Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        if s.len() <= NAME_INLINE {
            Name::new(&s)
        } else {
            Name::Heap(s.into_boxed_str())
        }
    }
}

impl From<&Name> for String {
    fn from(n: &Name) -> Self {
        n.as_str().to_string()
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for Name {}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl Serialize for Name {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl SerializeKey for Name {
    fn to_key(&self) -> String {
        self.as_str().to_string()
    }
}

impl serde::Deserialize for Name {}

// ---------------------------------------------------------------------------
// Ext: fixed-size sanitized extension
// ---------------------------------------------------------------------------

/// Max extension bytes the trace format keeps (`csvline` charset).
const EXT_MAX: usize = 16;

/// A file extension in the trace serializer's canonical form: at most
/// `EXT_MAX` (16) bytes, ASCII alphanumerics only, lowercased. Sanitization
/// happens *once*, at construction, instead of on every serialized line —
/// and the type is `Copy` (17 bytes), so `Payload::Storage` carries no
/// heap string.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ext {
    len: u8,
    buf: [u8; EXT_MAX],
}

impl Ext {
    pub const EMPTY: Ext = Ext {
        len: 0,
        buf: [0; EXT_MAX],
    };

    /// Sanitizes `raw` exactly like the trace serializer: keep the first
    /// `EXT_MAX` ASCII alphanumerics (lowercased), drop everything else.
    /// Idempotent, so parsing a serialized extension back through `new`
    /// reproduces it byte-for-byte.
    pub fn new(raw: &str) -> Self {
        let mut buf = [0u8; EXT_MAX];
        let mut len = 0usize;
        for c in raw.chars() {
            if len == EXT_MAX {
                break;
            }
            if c.is_ascii_alphanumeric() {
                buf[len] = c.to_ascii_lowercase() as u8;
                len += 1;
            }
        }
        Ext {
            len: len as u8,
            buf,
        }
    }

    pub fn as_str(&self) -> &str {
        // ASCII by construction; the checked form keeps this panic-free.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or_default()
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for Ext {
    fn default() -> Self {
        Ext::EMPTY
    }
}

impl Deref for Ext {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Ext {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Ext {
    fn from(s: &str) -> Self {
        Ext::new(s)
    }
}

impl From<&String> for Ext {
    fn from(s: &String) -> Self {
        Ext::new(s)
    }
}

impl PartialEq<str> for Ext {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Ext {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for Ext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Ext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl Serialize for Ext {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl SerializeKey for Ext {
    fn to_key(&self) -> String {
        self.as_str().to_string()
    }
}

impl serde::Deserialize for Ext {}

// ---------------------------------------------------------------------------
// NameArena: deduplicating string arena
// ---------------------------------------------------------------------------

/// Index of an interned string in a [`NameArena`]. 4 bytes — the whole
/// point: rows store this instead of a 24-byte `String` header plus its
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NameId(u32);

impl NameId {
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Span of one interned string inside the arena buffer.
#[derive(Clone, Copy)]
struct Span {
    start: u32,
    len: u32,
}

/// A deduplicating string interner: all text lives in ONE contiguous
/// buffer, each distinct string gets one [`NameId`], and equal strings
/// always intern to the same id (so name equality on the metastore hot
/// paths is a `u32` compare, not a memcmp).
///
/// Interned strings are never freed individually — the arena lives as long
/// as its owner (a metastore shard) and grows monotonically with the set of
/// *distinct* names, which dedup keeps far below the row count.
#[derive(Default)]
pub struct NameArena {
    buf: String,
    spans: Vec<Span>,
    /// FxHash of the string → candidate ids (collision chains are resolved
    /// by comparing the actual text).
    index: FxHashMap<u64, Vec<NameId>>,
}

impl NameArena {
    pub fn new() -> Self {
        Self::default()
    }

    fn hash_str(s: &str) -> u64 {
        use std::hash::{BuildHasher, Hasher};
        let mut h = crate::fxhash::FxBuildHasher.build_hasher();
        h.write(s.as_bytes());
        h.finish()
    }

    /// Interns `s`, returning its id (existing or new). `None` only when an
    /// arena limit would be exceeded (≥ 2³² distinct strings or ≥ 4 GiB of
    /// text) — checked, never truncated.
    pub fn intern(&mut self, s: &str) -> Option<NameId> {
        let h = Self::hash_str(s);
        if let Some(ids) = self.index.get(&h) {
            for &id in ids {
                if self.resolve(id) == s {
                    return Some(id);
                }
            }
        }
        let id = NameId(to_u32(self.spans.len())?);
        let start = to_u32(self.buf.len())?;
        let len = to_u32(s.len())?;
        // The span end must also fit in u32.
        to_u32(self.buf.len() + s.len())?;
        self.buf.push_str(s);
        self.spans.push(Span { start, len });
        self.index.entry(h).or_default().push(id);
        Some(id)
    }

    /// The id `s` is interned under, if any — a non-inserting probe (the
    /// make-node idempotency check: a name that was never interned cannot
    /// name a live node).
    pub fn lookup(&self, s: &str) -> Option<NameId> {
        let ids = self.index.get(&Self::hash_str(s))?;
        ids.iter().copied().find(|&id| self.resolve(id) == s)
    }

    /// The text behind `id`. Ids from a different arena index arbitrary
    /// text or (out of range) the empty string — callers keep ids and
    /// arenas paired.
    pub fn resolve(&self, id: NameId) -> &str {
        match self.spans.get(id.0 as usize) {
            Some(span) => {
                let start = span.start as usize;
                let end = start + span.len as usize;
                self.buf.get(start..end).unwrap_or_default()
            }
            None => "",
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total text bytes held (the dedup'd footprint).
    pub fn text_bytes(&self) -> usize {
        self.buf.len()
    }
}

impl fmt::Debug for NameArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameArena")
            .field("strings", &self.spans.len())
            .field("text_bytes", &self.buf.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// IdArena: dense u32 index over sparse entity ids
// ---------------------------------------------------------------------------

/// Maps sparse entity ids (strided `UserId`s, attacker ids at 10⁷, …) to
/// dense `u32` slab slots, append-only. The slab itself lives next to the
/// arena as a plain `Vec<Slot>` indexed by the returned `u32`.
#[derive(Default)]
pub struct IdArena<K: Hash + Eq + Copy> {
    index: FxHashMap<K, u32>,
    keys: Vec<K>,
}

impl<K: Hash + Eq + Copy> IdArena<K> {
    pub fn new() -> Self {
        Self {
            index: FxHashMap::default(),
            keys: Vec::new(),
        }
    }

    /// Dense slot for `key`, allocating the next one on first sight.
    /// `None` when the arena is full (≥ 2³² keys) — checked, never
    /// truncated.
    pub fn intern(&mut self, key: K) -> Option<u32> {
        if let Some(&slot) = self.index.get(&key) {
            return Some(slot);
        }
        let slot = to_u32(self.keys.len())?;
        self.index.insert(key, slot);
        self.keys.push(key);
        Some(slot)
    }

    /// Dense slot for `key`, if it was ever interned.
    pub fn get(&self, key: K) -> Option<u32> {
        self.index.get(&key).copied()
    }

    /// The key occupying `slot`.
    pub fn key_of(&self, slot: u32) -> Option<K> {
        self.keys.get(slot as usize).copied()
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl<K: Hash + Eq + Copy + fmt::Debug> fmt::Debug for IdArena<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdArena")
            .field("len", &self.keys.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_inlines_short_and_boxes_long() {
        assert_eq!(std::mem::size_of::<Name>(), 24);
        let short = Name::new("f1234567.jpg");
        assert!(short.is_inline());
        assert_eq!(short.as_str(), "f1234567.jpg");
        assert_eq!(short, *"f1234567.jpg");
        let exactly = Name::new("0123456789abcdefghijkl"); // 22 bytes
        assert!(exactly.is_inline());
        assert_eq!(exactly.as_str().len(), 22);
        let long = Name::new("r3_r2_r1_f12345678.docx");
        assert!(!long.is_inline());
        assert_eq!(long.as_str(), "r3_r2_r1_f12345678.docx");
        assert_eq!(Name::default().as_str(), "");
        // Deref: existing `&row.name` call sites expecting `&str` coerce.
        fn takes_str(s: &str) -> usize {
            s.len()
        }
        assert_eq!(takes_str(&short), 12);
        assert_eq!(format!("x{long}"), "xr3_r2_r1_f12345678.docx");
    }

    #[test]
    fn name_equality_ordering_hashing_follow_the_text() {
        use std::collections::HashSet;
        let a = Name::new("aaa");
        let b = Name::from("aaa".to_string());
        assert_eq!(a, b);
        assert!(Name::new("a") < Name::new("b"));
        let mut set = HashSet::new();
        set.insert(Name::new("dup"));
        assert!(!set.insert(Name::from("dup")));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn ext_sanitizes_exactly_like_the_trace_serializer() {
        assert_eq!(std::mem::size_of::<Ext>(), 17);
        for (raw, want) in [
            ("", ""),
            ("≈∅", ""),
            ("häßlich", "hlich"),
            ("TARGZ", "targz"),
            ("verylongextension", "verylongextensio"),
            ("a.b-c_d", "abcd"),
            ("J,P\nG", "jpg"),
            ("mp3", "mp3"),
        ] {
            let e = Ext::new(raw);
            assert_eq!(e.as_str(), want, "raw {raw:?}");
            // Idempotent: re-sanitizing the canonical form is the identity.
            assert_eq!(Ext::new(e.as_str()), e);
        }
        assert!(Ext::new("").is_empty());
        assert_eq!(Ext::new("txt"), *"txt");
    }

    #[test]
    fn name_arena_dedups_and_round_trips() {
        let mut arena = NameArena::new();
        let a = arena.intern("f1.jpg").unwrap();
        let b = arena.intern("f2.mp3").unwrap();
        let a2 = arena.intern("f1.jpg").unwrap();
        assert_eq!(a, a2, "equal strings intern to the same id");
        assert_ne!(a, b);
        assert_eq!(arena.resolve(a), "f1.jpg");
        assert_eq!(arena.resolve(b), "f2.mp3");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.text_bytes(), "f1.jpg".len() + "f2.mp3".len());
        assert_eq!(arena.lookup("f1.jpg"), Some(a));
        assert_eq!(arena.lookup("missing"), None);
        // Empty string interns fine.
        let e = arena.intern("").unwrap();
        assert_eq!(arena.resolve(e), "");
        assert_eq!(arena.lookup(""), Some(e));
    }

    #[test]
    fn name_arena_survives_many_distinct_names() {
        let mut arena = NameArena::new();
        let ids: Vec<NameId> = (0..10_000)
            .map(|i| arena.intern(&format!("f{i}.dat")).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(arena.resolve(*id), format!("f{i}.dat"));
        }
        assert_eq!(arena.len(), 10_000);
    }

    #[test]
    fn id_arena_assigns_dense_slots() {
        let mut arena: IdArena<u64> = IdArena::new();
        // Sparse, strided, out-of-order ids — like shard-strided UserIds.
        let slots: Vec<u32> = [1u64, 11, 21, 10_000_001, 11]
            .iter()
            .map(|&k| arena.intern(k).unwrap())
            .collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 1]);
        assert_eq!(arena.get(21), Some(2));
        assert_eq!(arena.get(99), None);
        assert_eq!(arena.key_of(3), Some(10_000_001));
        assert_eq!(arena.key_of(9), None);
        assert_eq!(arena.len(), 4);
    }

    #[test]
    fn checked_conversions_reject_overflow() {
        assert_eq!(to_u32(0), Some(0));
        assert_eq!(to_u32(u32::MAX as usize), Some(u32::MAX));
        #[cfg(target_pointer_width = "64")]
        assert_eq!(to_u32(u32::MAX as usize + 1), None);
    }
}
