//! Error vocabulary shared across the workspace.

use std::fmt;

/// Errors produced by core utilities and re-used by higher layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An identifier referenced an entity that does not exist.
    NotFound(String),
    /// An operation conflicted with existing state (duplicate id, name clash).
    Conflict(String),
    /// Input failed validation (malformed hash, bad size, empty name...).
    Invalid(String),
    /// The caller lacks permission for the target entity.
    PermissionDenied(String),
    /// A subsystem refused work because it is shutting down or overloaded.
    Unavailable(String),
}

impl CoreError {
    pub fn not_found(what: impl Into<String>) -> Self {
        CoreError::NotFound(what.into())
    }
    pub fn conflict(what: impl Into<String>) -> Self {
        CoreError::Conflict(what.into())
    }
    pub fn invalid(what: impl Into<String>) -> Self {
        CoreError::Invalid(what.into())
    }
    pub fn permission_denied(what: impl Into<String>) -> Self {
        CoreError::PermissionDenied(what.into())
    }
    pub fn unavailable(what: impl Into<String>) -> Self {
        CoreError::Unavailable(what.into())
    }

    /// Short machine-readable code used in trace log lines.
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::NotFound(_) => "not_found",
            CoreError::Conflict(_) => "conflict",
            CoreError::Invalid(_) => "invalid",
            CoreError::PermissionDenied(_) => "denied",
            CoreError::Unavailable(_) => "unavailable",
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotFound(s) => write!(f, "not found: {s}"),
            CoreError::Conflict(s) => write!(f, "conflict: {s}"),
            CoreError::Invalid(s) => write!(f, "invalid: {s}"),
            CoreError::PermissionDenied(s) => write!(f, "permission denied: {s}"),
            CoreError::Unavailable(s) => write!(f, "unavailable: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_display() {
        let e = CoreError::not_found("node n3");
        assert_eq!(e.code(), "not_found");
        assert_eq!(e.to_string(), "not found: node n3");
        assert_eq!(CoreError::conflict("x").code(), "conflict");
        assert_eq!(CoreError::invalid("x").code(), "invalid");
        assert_eq!(CoreError::permission_denied("x").code(), "denied");
        assert_eq!(CoreError::unavailable("x").code(), "unavailable");
    }
}
