//! A small, dependency-free SHA-1 implementation (FIPS 180-1).
//!
//! The U1 desktop client hashes every file with SHA-1 before uploading so the
//! back-end can perform file-level cross-user deduplication (§3.3 of the
//! paper). SHA-1 is cryptographically broken for collision resistance, but we
//! reproduce the system as it was; the hash is used here purely as a content
//! identity, exactly as U1 used it.

use crate::id::ContentHash;

/// Streaming SHA-1 hasher.
///
/// ```
/// use u1_core::sha1::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of a byte slice.
    pub fn digest(data: &[u8]) -> ContentHash {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the 160-bit digest.
    pub fn finalize(mut self) -> ContentHash {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would count the length bytes into `len`, but `bit_len` is
        // already captured, so writing directly into the buffer is fine.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        ContentHash::new(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha1::digest(data).to_hex()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_odd_boundaries() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = Sha1::digest(&data);
        for split in [1usize, 7, 63, 64, 65, 127, 500, 999] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Known-good via reference implementation behavior: identical input,
        // different lengths near 55/56/64 bytes must produce distinct digests
        // and be internally consistent when re-hashed.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0x5au8; len];
            assert!(seen.insert(Sha1::digest(&data)), "collision at len {len}");
        }
    }
}
