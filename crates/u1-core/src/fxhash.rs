//! A fast, deterministic, non-cryptographic hasher for hot-path maps and
//! sets keyed by small values (ids, hashes, enums).
//!
//! The analytics engine spends a large share of the summary/user passes in
//! `HashSet<u64>` membership checks; SipHash (std's default) is overkill for
//! trusted, workload-generated keys. This is the classic "Fx" construction
//! used by rustc: rotate, xor, multiply by a fixed odd seed. It is seeded by
//! a compile-time constant, so iteration order — while never relied upon by
//! any analysis (see DESIGN.md §10) — is identical across runs and hosts.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The multiplier from rustc's FxHash: a random odd constant close to
/// 2^64 / φ, spreading bits well under wrapping multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// [`Hasher`] implementing the Fx construction.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Length matters for prefix-free hashing of short tails.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add_to_hash(i as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.add_to_hash(i as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_to_hash(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add_to_hash(i as usize as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s from a fixed state.
#[derive(Debug, Clone, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave_like_std() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            assert!(set.insert(i * 7));
        }
        for i in 0..10_000u64 {
            assert!(set.contains(&(i * 7)));
            assert!(!set.insert(i * 7));
        }
        assert_eq!(set.len(), 10_000);

        let mut map: FxHashMap<(u64, u8), u64> = FxHashMap::default();
        for i in 0..1_000u64 {
            *map.entry((i % 100, (i % 3) as u8)).or_default() += 1;
        }
        assert_eq!(map.values().sum::<u64>(), 1_000);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let hash_of = |x: u64| {
            let mut h = FxBuildHasher.build_hasher();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash_of(42), hash_of(42));
        assert_ne!(hash_of(42), hash_of(43));
        // Sequential keys must not collide in the low bits the table uses.
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1_000u64 {
            low.insert(hash_of(i) >> 48);
        }
        assert!(low.len() > 500, "top bits too clustered: {}", low.len());
    }

    #[test]
    fn byte_slices_hash_prefix_free() {
        let hash_bytes = |b: &[u8]| {
            let mut h = FxBuildHasher.build_hasher();
            h.write(b);
            h.finish()
        };
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abc\0"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefg"));
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
    }
}
