//! The file-type taxonomy of §5.3 of the paper.
//!
//! The authors classified the 55 most popular file extensions into 7
//! categories — Pics, Code, Docs, Audio/Video, Application/Binary and
//! Compressed (plus an implicit Other) — and studied the number-of-files vs
//! storage-share trade-off per category (Fig. 4(c)).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's file categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FileCategory {
    Pics,
    Code,
    Docs,
    AudioVideo,
    Binary,
    Compressed,
    Other,
}

impl FileCategory {
    /// All categories, in a stable presentation order.
    pub const ALL: [FileCategory; 7] = [
        FileCategory::Pics,
        FileCategory::Code,
        FileCategory::Docs,
        FileCategory::AudioVideo,
        FileCategory::Binary,
        FileCategory::Compressed,
        FileCategory::Other,
    ];

    /// Classifies a file extension (without the leading dot, case-insensitive).
    pub fn of_extension(ext: &str) -> FileCategory {
        let lower = ext.to_ascii_lowercase();
        match lower.as_str() {
            // Pics: .jpg, .png, .gif, etc.
            "jpg" | "jpeg" | "png" | "gif" | "bmp" | "tiff" | "svg" | "ico" | "raw" | "xcf" => {
                FileCategory::Pics
            }
            // Code: .php, .c, .js, etc.
            "php" | "c" | "h" | "cpp" | "hpp" | "js" | "py" | "java" | "rb" | "pl" | "sh"
            | "css" | "html" | "htm" | "xml" | "json" | "rs" | "go" | "sql" | "patch" => {
                FileCategory::Code
            }
            // Docs: .pdf, .txt, .doc, etc.
            "pdf" | "txt" | "doc" | "docx" | "odt" | "xls" | "xlsx" | "ods" | "ppt" | "pptx"
            | "odp" | "tex" | "md" | "rtf" | "csv" => FileCategory::Docs,
            // Audio/Video: .mp3, .wav, .ogg, etc.
            "mp3" | "wav" | "ogg" | "flac" | "m4a" | "wma" | "mp4" | "avi" | "mkv" | "mov"
            | "webm" | "flv" => FileCategory::AudioVideo,
            // Application/Binary: .o, .msf, .jar, etc.
            "o" | "msf" | "jar" | "so" | "dll" | "exe" | "bin" | "deb" | "rpm" | "iso" | "img"
            | "pyc" | "class" | "db" | "sqlite" => FileCategory::Binary,
            // Compressed: .gz, .zip, etc.
            "gz" | "zip" | "bz2" | "xz" | "7z" | "rar" | "tar" | "tgz" => FileCategory::Compressed,
            _ => FileCategory::Other,
        }
    }

    /// Classifies a file name by its final extension.
    pub fn of_filename(name: &str) -> FileCategory {
        match name.rsplit_once('.') {
            Some((stem, ext)) if !stem.is_empty() && !ext.is_empty() => Self::of_extension(ext),
            _ => FileCategory::Other,
        }
    }

    /// Whether files in this category are typically already compressed and so
    /// gain little from the client's transfer compression (§5.3: "compressing
    /// files does not provide much benefits in many cases").
    pub fn is_incompressible(self) -> bool {
        matches!(
            self,
            FileCategory::Compressed | FileCategory::AudioVideo | FileCategory::Pics
        )
    }

    /// Stable label used in reports and trace lines.
    pub fn label(self) -> &'static str {
        match self {
            FileCategory::Pics => "pics",
            FileCategory::Code => "code",
            FileCategory::Docs => "docs",
            FileCategory::AudioVideo => "audio_video",
            FileCategory::Binary => "binary",
            FileCategory::Compressed => "compressed",
            FileCategory::Other => "other",
        }
    }

    /// Parses a label produced by [`FileCategory::label`].
    pub fn from_label(s: &str) -> Option<FileCategory> {
        Self::ALL.into_iter().find(|c| c.label() == s)
    }
}

impl fmt::Display for FileCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Extensions the workload generator draws from, mirroring the "55 most
/// popular extensions" the paper classified, with the six Fig. 4(b)
/// exemplars (`jpg mp3 pdf doc java zip`) present.
pub const POPULAR_EXTENSIONS: &[&str] = &[
    // pics
    "jpg", "png", "gif", "bmp", "svg", "ico", "tiff", "xcf", // code
    "php", "c", "h", "cpp", "js", "py", "java", "rb", "css", "html", "xml", "json", "sh", "sql",
    // docs
    "pdf", "txt", "doc", "docx", "odt", "xls", "ppt", "tex", "md", "csv", // audio/video
    "mp3", "wav", "ogg", "flac", "m4a", "mp4", "avi", "mkv", "mov", // binary
    "o", "jar", "so", "exe", "bin", "deb", "iso", "pyc", "db", // compressed
    "gz", "zip", "bz2", "7z", "rar", "tar",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4b_exemplars_classify_as_in_the_paper() {
        assert_eq!(FileCategory::of_extension("jpg"), FileCategory::Pics);
        assert_eq!(FileCategory::of_extension("mp3"), FileCategory::AudioVideo);
        assert_eq!(FileCategory::of_extension("pdf"), FileCategory::Docs);
        assert_eq!(FileCategory::of_extension("doc"), FileCategory::Docs);
        assert_eq!(FileCategory::of_extension("java"), FileCategory::Code);
        assert_eq!(FileCategory::of_extension("zip"), FileCategory::Compressed);
    }

    #[test]
    fn classification_is_case_insensitive() {
        assert_eq!(FileCategory::of_extension("JPG"), FileCategory::Pics);
        assert_eq!(FileCategory::of_extension("Mp3"), FileCategory::AudioVideo);
    }

    #[test]
    fn filename_classification_handles_edge_cases() {
        assert_eq!(
            FileCategory::of_filename("a.tar.gz"),
            FileCategory::Compressed
        );
        assert_eq!(FileCategory::of_filename("noext"), FileCategory::Other);
        assert_eq!(FileCategory::of_filename(".bashrc"), FileCategory::Other);
        assert_eq!(
            FileCategory::of_filename("trailingdot."),
            FileCategory::Other
        );
        assert_eq!(
            FileCategory::of_filename("song.mp3"),
            FileCategory::AudioVideo
        );
    }

    #[test]
    fn label_round_trips() {
        for c in FileCategory::ALL {
            assert_eq!(FileCategory::from_label(c.label()), Some(c));
        }
        assert_eq!(FileCategory::from_label("nope"), None);
    }

    #[test]
    fn incompressibility_matches_section_5_3() {
        assert!(FileCategory::Compressed.is_incompressible());
        assert!(FileCategory::AudioVideo.is_incompressible());
        assert!(!FileCategory::Docs.is_incompressible());
        assert!(!FileCategory::Code.is_incompressible());
    }

    #[test]
    fn popular_extensions_all_classify_non_other() {
        for ext in POPULAR_EXTENSIONS {
            assert_ne!(
                FileCategory::of_extension(ext),
                FileCategory::Other,
                "{ext} should be categorized"
            );
        }
    }
}
