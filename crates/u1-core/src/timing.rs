//! Lightweight phase accounting for the parallel paths.
//!
//! The multi-core burn-down (DESIGN.md §13) needs to answer "where did the
//! wall-clock go?" without perturbing the thing being measured. This module
//! provides:
//!
//! * [`Phase`] — the closed set of phases the driver, the parallel logfile
//!   reader and the chunked analytics engine account time against,
//! * [`PhaseTimers`] — a bank of cache-line-padded atomic nanosecond
//!   counters, shared by reference across worker threads (relaxed ordering:
//!   counters are only read after the workers have been joined),
//! * [`PhaseNanos`] — a plain serializable snapshot of the bank, embedded in
//!   `DriverReport` and in both committed bench JSONs,
//! * [`Measured`] — a transparent wrapper that *excludes* wall-clock
//!   measurements from a report's `PartialEq`, so determinism asserts
//!   (`report@1worker == report@4workers`, golden literal reports) keep
//!   working while the measurements ride along,
//! * [`CachePadded`] — a 64-byte-aligned wrapper for hot atomics so striped
//!   counters touched by different workers do not false-share a line.
//!
//! Everything here measures with [`std::time::Instant`] (monotonic); no
//! wall-clock (`SystemTime`) or OS entropy is involved, so the nondet-flow
//! lint (U1L008) stays quiet and — more importantly — nothing measured here
//! can feed back into simulation state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::Serialize;

/// Phases the parallel paths account time against.
///
/// The driver uses the first five; the parallel logfile reader uses
/// [`Phase::Parse`] and [`Phase::Sort`]; the chunked analytics engine uses
/// [`Phase::Fold`] and [`Phase::Merge`]; the wire tier's reactor thread
/// (DESIGN.md §15) splits its loop across the four `Net*` phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Worker threads advancing shard simulations (`run_until`).
    WorkerRun,
    /// Worker threads parked at a day barrier waiting for stragglers plus
    /// the coordinator section.
    BarrierPark,
    /// Draining `BufferedSink` day buffers (per-origin, on worker threads).
    DayFlush,
    /// Sealing the content-index epoch at a day boundary (coordinator).
    Seal,
    /// The coordinator section itself (maintenance, GC, attack waves).
    Coordinator,
    /// Parsing logfile bytes into trace records.
    Parse,
    /// The final stable sort merging per-range parse output.
    Sort,
    /// Feeding records through fold partials (chunk bodies).
    Fold,
    /// Merging fold partials back together (tree reduction).
    Merge,
    /// Reactor: accepting connections and running admission control.
    NetAccept,
    /// Reactor: nonblocking socket reads and frame decoding.
    NetRead,
    /// Reactor: dispatching decoded requests into backend handlers.
    NetServe,
    /// Reactor: draining per-connection send queues to sockets.
    NetWrite,
}

/// Number of distinct [`Phase`] values (size of a [`PhaseTimers`] bank).
pub const PHASE_COUNT: usize = 13;

impl Phase {
    #[inline]
    fn index(self) -> usize {
        match self {
            Phase::WorkerRun => 0,
            Phase::BarrierPark => 1,
            Phase::DayFlush => 2,
            Phase::Seal => 3,
            Phase::Coordinator => 4,
            Phase::Parse => 5,
            Phase::Sort => 6,
            Phase::Fold => 7,
            Phase::Merge => 8,
            Phase::NetAccept => 9,
            Phase::NetRead => 10,
            Phase::NetServe => 11,
            Phase::NetWrite => 12,
        }
    }
}

/// Pads the wrapped value out to its own cache line (64 bytes on every
/// target we build for) so adjacent hot atomics written by different
/// threads do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps `value` with cache-line alignment.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A bank of per-phase nanosecond counters, one cache line each.
///
/// Shared by reference (`&PhaseTimers`) across scoped worker threads.
/// All operations are `Relaxed`: the bank is an accumulator, not a
/// synchronization primitive — readers snapshot it only after the writers
/// have been joined (or accept a racy-but-monotonic in-flight read).
#[derive(Debug, Default)]
pub struct PhaseTimers {
    banks: [CachePadded<AtomicU64>; PHASE_COUNT],
}

impl PhaseTimers {
    /// A fresh bank with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `nanos` to `phase`'s counter.
    #[inline]
    pub fn add(&self, phase: Phase, nanos: u64) {
        self.banks[phase.index()]
            .0
            .fetch_add(nanos, Ordering::Relaxed);
    }

    /// Runs `f`, charging its elapsed time to `phase`.
    #[inline]
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, saturating_nanos(start));
        out
    }

    /// Current value of one phase counter.
    pub fn get(&self, phase: Phase) -> u64 {
        self.banks[phase.index()].0.load(Ordering::Relaxed)
    }

    /// Snapshots the whole bank into a serializable [`PhaseNanos`].
    pub fn snapshot(&self) -> PhaseNanos {
        PhaseNanos {
            worker_run_nanos: self.get(Phase::WorkerRun),
            barrier_park_nanos: self.get(Phase::BarrierPark),
            day_flush_nanos: self.get(Phase::DayFlush),
            seal_nanos: self.get(Phase::Seal),
            coordinator_nanos: self.get(Phase::Coordinator),
            parse_nanos: self.get(Phase::Parse),
            sort_nanos: self.get(Phase::Sort),
            fold_nanos: self.get(Phase::Fold),
            merge_nanos: self.get(Phase::Merge),
            net_accept_nanos: self.get(Phase::NetAccept),
            net_read_nanos: self.get(Phase::NetRead),
            net_serve_nanos: self.get(Phase::NetServe),
            net_write_nanos: self.get(Phase::NetWrite),
        }
    }
}

/// Elapsed nanoseconds since `start`, clamped into `u64`.
///
/// `u64::MAX` nanoseconds is ~584 years, so the clamp is theoretical; it
/// exists so the truncating-cast lint (U1L002) has nothing to flag.
#[inline]
pub fn saturating_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A serializable snapshot of a [`PhaseTimers`] bank.
///
/// Counters are cumulative across the whole run (summed over all workers,
/// so a phase that ran on 4 threads for 1s of wall time reports ~4s of
/// thread time — divide by the thread count for per-core occupancy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PhaseNanos {
    /// Thread-nanos spent advancing shard simulations.
    pub worker_run_nanos: u64,
    /// Thread-nanos workers spent parked at day barriers.
    pub barrier_park_nanos: u64,
    /// Thread-nanos draining `BufferedSink` day buffers.
    pub day_flush_nanos: u64,
    /// Nanos sealing content-index epochs (coordinator thread).
    pub seal_nanos: u64,
    /// Nanos in the coordinator section (maintenance/GC/attacks).
    pub coordinator_nanos: u64,
    /// Thread-nanos parsing logfile bytes into records.
    pub parse_nanos: u64,
    /// Nanos in the final merge sort of parsed records.
    pub sort_nanos: u64,
    /// Thread-nanos feeding records through fold partials.
    pub fold_nanos: u64,
    /// Thread-nanos merging fold partials (tree reduction).
    pub merge_nanos: u64,
    /// Reactor nanos accepting connections (admission control included).
    pub net_accept_nanos: u64,
    /// Reactor nanos in nonblocking reads and frame decoding.
    pub net_read_nanos: u64,
    /// Reactor nanos dispatching requests into backend handlers.
    pub net_serve_nanos: u64,
    /// Reactor nanos draining send queues to sockets.
    pub net_write_nanos: u64,
}

impl PhaseNanos {
    /// True when every counter is zero (timing was not collected).
    pub fn is_zero(&self) -> bool {
        *self == PhaseNanos::default()
    }
}

/// A wall-clock measurement riding along an otherwise deterministic value.
///
/// Two runs with the same seed produce identical reports but *different*
/// timings; wrapping the timing in `Measured` makes every `Measured` value
/// compare equal, so report-equality asserts (golden literals, worker-count
/// invariance) ignore it while serialization still carries it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measured<T>(pub T);

// Transparent: a `Measured<T>` serializes exactly as its inner `T` (the
// vendored serde stub cannot derive for generic types).
impl<T: Serialize> Serialize for Measured<T> {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl<T> PartialEq for Measured<T> {
    #[inline]
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl<T> std::ops::Deref for Measured<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for Measured<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_accumulate_per_phase() {
        let t = PhaseTimers::new();
        t.add(Phase::Parse, 5);
        t.add(Phase::Parse, 7);
        t.add(Phase::Merge, 11);
        assert_eq!(t.get(Phase::Parse), 12);
        assert_eq!(t.get(Phase::Merge), 11);
        assert_eq!(t.get(Phase::Fold), 0);
        let snap = t.snapshot();
        assert_eq!(snap.parse_nanos, 12);
        assert_eq!(snap.merge_nanos, 11);
        assert!(!snap.is_zero());
        assert!(PhaseNanos::default().is_zero());
    }

    #[test]
    fn time_charges_the_closure_to_the_phase() {
        let t = PhaseTimers::new();
        let out = t.time(Phase::Fold, || 41 + 1);
        assert_eq!(out, 42);
        // Elapsed time is nonnegative by construction; the counter may be 0
        // on a coarse clock, so only assert the other phases stayed zero.
        assert_eq!(t.get(Phase::Merge), 0);
    }

    #[test]
    fn measured_is_invisible_to_equality() {
        #[derive(PartialEq, Debug)]
        struct Report {
            ops: u64,
            timing: Measured<PhaseNanos>,
        }
        let mut a = Report {
            ops: 3,
            timing: Measured(PhaseNanos::default()),
        };
        let b = Report {
            ops: 3,
            timing: Measured(PhaseNanos {
                parse_nanos: 999,
                ..PhaseNanos::default()
            }),
        };
        assert_eq!(a, b);
        a.ops = 4;
        assert_ne!(a, b);
    }

    #[test]
    fn cache_padded_is_line_aligned() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        let banks: [CachePadded<AtomicU64>; 2] = Default::default();
        let a = &banks[0] as *const _ as usize;
        let b = &banks[1] as *const _ as usize;
        assert!(b - a >= 64);
    }
}
