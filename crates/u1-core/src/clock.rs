//! Virtual and real time.
//!
//! The paper analyzes one month of production activity. Reproducing the
//! analyses does not require waiting a month: every measured quantity is a
//! function of event *timestamps*. All timestamps in this workspace are
//! [`SimTime`] values (microseconds since the start of the trace window), and
//! components obtain them from a [`Clock`] — either a [`RealClock`] (live TCP
//! mode, examples and integration tests) or a [`SimClock`] that the
//! discrete-event driver advances explicitly (measurement mode).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time: microseconds since the trace window start.
///
/// The paper's trace window opens on 2014-01-11 00:00 UTC; helper methods
/// that need calendar structure (hour of day, day of week) assume the window
/// starts at midnight on a **Saturday**, which is what 2014-01-11 was.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in microseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        Self(s * MICROS_PER_SEC)
    }
    pub const fn from_hours(h: u64) -> Self {
        Self::from_secs(h * 3_600)
    }
    pub const fn from_days(d: u64) -> Self {
        Self::from_hours(d * 24)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Hour-of-day in `[0, 24)`, assuming the window starts at midnight.
    pub fn hour_of_day(self) -> u32 {
        ((self.0 / MICROS_PER_SEC / 3_600) % 24) as u32
    }

    /// Whole days since the window start.
    pub const fn day_index(self) -> u64 {
        self.0 / MICROS_PER_SEC / 86_400
    }

    /// Day of week, `0 = Monday .. 6 = Sunday`. The paper's window opened on
    /// Saturday 2014-01-11.
    pub fn day_of_week(self) -> u32 {
        const WINDOW_START_DOW: u64 = 5; // Saturday, with Monday = 0.
        ((self.day_index() + WINDOW_START_DOW) % 7) as u32
    }

    /// True on Saturday/Sunday.
    pub fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// Saturating subtraction yielding a duration.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Index of the bin of width `bin` this instant falls into.
    pub fn bin_index(self, bin: SimDuration) -> u64 {
        debug_assert!(bin.0 > 0);
        self.0 / bin.0
    }

    /// Formats as `dayD hh:mm:ss` (trace-relative), used in log lines.
    pub fn format_trace(self) -> String {
        let s = self.as_secs();
        format!(
            "d{:02} {:02}:{:02}:{:02}.{:06}",
            self.day_index(),
            (s / 3600) % 24,
            (s / 60) % 60,
            s % 60,
            self.0 % MICROS_PER_SEC
        )
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        Self(s * MICROS_PER_SEC)
    }
    pub const fn from_mins(m: u64) -> Self {
        Self::from_secs(m * 60)
    }
    pub const fn from_hours(h: u64) -> Self {
        Self::from_secs(h * 3_600)
    }
    pub const fn from_days(d: u64) -> Self {
        Self::from_hours(d * 24)
    }

    /// Converts a (possibly fractional) number of seconds, saturating at zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return Self::ZERO;
        }
        Self((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs < 1.0 {
            write!(f, "{:.3}ms", secs * 1000.0)
        } else if secs < 120.0 {
            write!(f, "{secs:.2}s")
        } else if secs < 2.0 * 3600.0 {
            write!(f, "{:.1}min", secs / 60.0)
        } else if secs < 48.0 * 3600.0 {
            write!(f, "{:.1}h", secs / 3600.0)
        } else {
            write!(f, "{:.1}d", secs / 86400.0)
        }
    }
}

/// Source of the current simulated time.
///
/// Implementations must be cheap and thread-safe: API server processes,
/// client threads and the trace logger all consult the clock on every event.
pub trait Clock: Send + Sync + 'static {
    /// The current instant.
    fn now(&self) -> SimTime;
}

/// Wall-clock-backed clock: `now()` is the elapsed real time since creation.
/// Used in live TCP mode.
#[derive(Debug)]
pub struct RealClock {
    start: Instant,
}

impl RealClock {
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }
}

/// Virtual clock advanced explicitly by the discrete-event driver.
///
/// Cloning shares the underlying instant, so every component handed a clone
/// observes the same timeline.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock already positioned at `t`.
    pub fn at(t: SimTime) -> Self {
        let c = Self::new();
        c.set(t);
        c
    }

    /// Moves the clock forward to `t`. Moving backwards is a bug in the
    /// event driver and panics in debug builds; in release the clock clamps
    /// to be monotone.
    pub fn set(&self, t: SimTime) {
        let prev = self.now.swap(t.0, Ordering::SeqCst);
        debug_assert!(prev <= t.0, "SimClock moved backwards: {prev} -> {}", t.0);
        if prev > t.0 {
            self.now.store(prev, Ordering::SeqCst);
        }
    }

    /// Advances by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        SimTime(self.now.fetch_add(d.0, Ordering::SeqCst) + d.0)
    }
}

impl Clock for SimClock {
    /// When a [`crate::partition::PartitionCtx`] is installed on the calling
    /// thread, that partition's own time cell wins: parallel driver workers
    /// sit at different virtual instants without racing on the shared cell.
    fn now(&self) -> SimTime {
        crate::partition::current_time().unwrap_or_else(|| SimTime(self.now.load(Ordering::SeqCst)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_calendar_helpers() {
        let t = SimTime::from_hours(25); // day 1, 01:00
        assert_eq!(t.hour_of_day(), 1);
        assert_eq!(t.day_index(), 1);
        // Window opens Saturday: day 0 = Sat(5), day 1 = Sun(6), day 2 = Mon(0).
        assert_eq!(SimTime::from_days(0).day_of_week(), 5);
        assert_eq!(SimTime::from_days(1).day_of_week(), 6);
        assert_eq!(SimTime::from_days(2).day_of_week(), 0);
        assert!(SimTime::from_days(0).is_weekend());
        assert!(!SimTime::from_days(2).is_weekend());
    }

    #[test]
    fn durations_compose() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!((t - SimTime::from_secs(5)).as_secs(), 10);
        // Saturating: earlier - later = 0.
        assert_eq!((SimTime::from_secs(1) - SimTime::from_secs(5)).0, 0);
    }

    #[test]
    fn duration_from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    fn sim_clock_is_shared_between_clones() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(SimDuration::from_secs(3));
        assert_eq!(c2.now().as_secs(), 3);
        c2.set(SimTime::from_secs(10));
        assert_eq!(c.now().as_secs(), 10);
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn bin_index_buckets_correctly() {
        let bin = SimDuration::from_hours(1);
        assert_eq!(SimTime::from_secs(10).bin_index(bin), 0);
        assert_eq!(SimTime::from_secs(3_600).bin_index(bin), 1);
        assert_eq!(SimTime::from_secs(7_199).bin_index(bin), 1);
    }

    #[test]
    fn duration_display_is_humane() {
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(30).to_string(), "30.00s");
        assert_eq!(SimDuration::from_mins(30).to_string(), "30.0min");
        assert_eq!(SimDuration::from_hours(10).to_string(), "10.0h");
        assert_eq!(SimDuration::from_days(3).to_string(), "3.0d");
    }
}
