//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the reproduction (workload generator,
//! latency models, failure injection) derives its RNG from a single
//! experiment seed, so every figure in EXPERIMENTS.md is regenerable
//! bit-for-bit. Sub-streams are derived by hashing `(seed, label, index)`
//! through SplitMix64, which keeps streams independent without coordination.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — the standard seed-expansion function.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a 64-bit sub-seed from a root seed, a textual label and an index.
pub fn derive_seed(root: u64, label: &str, index: u64) -> u64 {
    let mut state = root ^ 0xA076_1D64_78BD_642F;
    for &b in label.as_bytes() {
        state ^= b as u64;
        splitmix64(&mut state);
    }
    state ^= index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    splitmix64(&mut state)
}

/// Builds a fast non-cryptographic RNG for the given sub-stream.
pub fn sub_rng(root: u64, label: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(root, label, index))
}

/// Samples an exponential inter-arrival time with the given mean.
pub fn sample_exp(rng: &mut impl Rng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Samples a Pareto (power-law tail) variate: `P(X >= x) = (theta/x)^alpha`
/// for `x >= theta`. This is the distribution family the paper fits to user
/// inter-operation times in Fig. 9 (`alpha` in (1,2)).
pub fn sample_pareto(rng: &mut impl Rng, alpha: f64, theta: f64) -> f64 {
    debug_assert!(alpha > 0.0 && theta > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    theta / u.powf(1.0 / alpha)
}

/// Samples a log-normal variate parameterized by the mean/stddev of the
/// underlying normal (`mu`, `sigma`). Used for file sizes and service times.
pub fn sample_lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * sample_standard_normal(rng)).exp()
}

/// Standard normal via Box–Muller.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a Zipf-distributed rank in `[1, n]` with exponent `s`, using
/// rejection-inversion (Hörmann & Derflinger). Used for content popularity
/// (Fig. 4(a): a few contents account for very many duplicates).
pub fn sample_zipf(rng: &mut impl Rng, n: u64, s: f64) -> u64 {
    debug_assert!(n >= 1);
    if n == 1 {
        return 1;
    }
    // For s near 1 the harmonic integral changes form; handle generally.
    let h = |x: f64| -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            (1.0 + x).ln()
        } else {
            ((1.0 + x).powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    };
    let h_inv = |y: f64| -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            y.exp() - 1.0
        } else {
            (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s)) - 1.0
        }
    };
    let h_x1 = h(1.5) - 1.0;
    let h_n = h(n as f64 + 0.5);
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        let y = h_x1 + u * (h_n - h_x1);
        let x = h_inv(y);
        let k = (x + 0.5).floor().max(1.0).min(n as f64) as u64;
        // Acceptance test.
        let hk = h(k as f64 + 0.5) - h(k as f64 - 0.5);
        if rng.gen_range(0.0..1.0) * hk <= (k as f64).powf(-s) {
            return k;
        }
    }
}

/// Weighted choice over `(item, weight)` pairs. Panics if weights are all
/// zero or the slice is empty.
pub fn weighted_choice<'a, T>(rng: &mut impl Rng, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| *w).sum();
    assert!(total > 0.0, "weighted_choice: zero total weight");
    let mut target = rng.gen_range(0.0..total);
    for (item, w) in items {
        if target < *w {
            return item;
        }
        target -= w;
    }
    &items.last().expect("weighted_choice: empty slice").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(42, "users", 1), derive_seed(42, "users", 1));
        assert_ne!(derive_seed(42, "users", 1), derive_seed(42, "users", 2));
        assert_ne!(derive_seed(42, "users", 1), derive_seed(42, "files", 1));
        assert_ne!(derive_seed(42, "users", 1), derive_seed(43, "users", 1));
    }

    #[test]
    fn exp_has_roughly_the_requested_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| sample_exp(&mut rng, 10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn pareto_respects_theta_and_tail() {
        let mut rng = SmallRng::seed_from_u64(2);
        let alpha = 1.5;
        let theta = 40.0;
        let samples: Vec<f64> = (0..50_000)
            .map(|_| sample_pareto(&mut rng, alpha, theta))
            .collect();
        assert!(samples.iter().all(|&x| x >= theta));
        // Empirical CCDF at 2*theta should be near 2^-alpha.
        let frac =
            samples.iter().filter(|&&x| x >= 2.0 * theta).count() as f64 / samples.len() as f64;
        assert!((frac - 0.5f64.powf(alpha)).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..40_000 {
            let k = sample_zipf(&mut rng, 10, 1.2);
            assert!((1..=10).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
    }

    #[test]
    fn zipf_handles_n_equals_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(sample_zipf(&mut rng, 1, 1.1), 1);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_lognormal(&mut rng, 0.0, 1.0))
            .collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal mean {mean} <= median {median}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(6);
        let items = [("a", 0.0), ("b", 1.0), ("c", 3.0)];
        let mut b = 0;
        let mut c = 0;
        for _ in 0..10_000 {
            match *weighted_choice(&mut rng, &items) {
                "a" => panic!("zero-weight item chosen"),
                "b" => b += 1,
                _ => c += 1,
            }
        }
        let ratio = c as f64 / b as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }
}
