//! The U1 API operations (Table 2) and DAL RPC vocabulary (Tables 2 & 4).
//!
//! These enums are the shared language of the whole workspace: the protocol
//! crate encodes them on the wire, the server translates API operations into
//! RPC calls, the trace crate logs both, and the analytics crate aggregates
//! them back into the paper's figures.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A client-visible API operation of the U1 storage protocol (Table 2),
/// plus the session bookkeeping events the trace distinguishes (§4: request
/// types `storage`/`storage_done`, `rpc`, `session`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ApiOpKind {
    /// Establish a session from an OAuth token.
    Authenticate,
    /// List all volumes of a user (start of session).
    ListVolumes,
    /// List volumes of type shared.
    ListShares,
    /// Upload file contents (PutContent).
    Upload,
    /// Download file contents (GetContent).
    Download,
    /// Create a file node entry ("touch", precedes an upload).
    MakeFile,
    /// Create a directory node.
    MakeDir,
    /// Delete a file or directory from a volume.
    Unlink,
    /// Move a node between directories.
    Move,
    /// Create a user-defined volume.
    CreateUdf,
    /// Delete a volume and the contained nodes.
    DeleteVolume,
    /// Get differences between server and local volume (generations).
    GetDelta,
    /// Full state transfer when generations can't be used.
    RescanFromScratch,
    /// Capability negotiation at session start.
    QuerySetCaps,
    /// Session opened (trace bookkeeping; not a Table-2 op).
    OpenSession,
    /// Session closed (trace bookkeeping).
    CloseSession,
}

impl ApiOpKind {
    /// All operations, in the order Fig. 7(a) presents them (plus the
    /// extras that appear in Fig. 8).
    pub const ALL: [ApiOpKind; 16] = [
        ApiOpKind::Move,
        ApiOpKind::GetDelta,
        ApiOpKind::Unlink,
        ApiOpKind::DeleteVolume,
        ApiOpKind::CreateUdf,
        ApiOpKind::ListVolumes,
        ApiOpKind::ListShares,
        ApiOpKind::MakeFile,
        ApiOpKind::MakeDir,
        ApiOpKind::Upload,
        ApiOpKind::Download,
        ApiOpKind::OpenSession,
        ApiOpKind::CloseSession,
        ApiOpKind::Authenticate,
        ApiOpKind::RescanFromScratch,
        ApiOpKind::QuerySetCaps,
    ];

    /// Whether this is a data-management operation: an operation a user
    /// must be *active* (not merely online) to issue (§6.1). The paper
    /// counts uploads, downloads and namespace changes as data management;
    /// session start-up chatter is not.
    pub fn is_data_management(self) -> bool {
        matches!(
            self,
            ApiOpKind::Upload
                | ApiOpKind::Download
                | ApiOpKind::MakeFile
                | ApiOpKind::MakeDir
                | ApiOpKind::Unlink
                | ApiOpKind::Move
                | ApiOpKind::CreateUdf
                | ApiOpKind::DeleteVolume
        )
    }

    /// Whether the operation moves file contents to/from the data store
    /// (§3.1.2's "data management operations" that reach Amazon S3).
    pub fn is_transfer(self) -> bool {
        matches!(self, ApiOpKind::Upload | ApiOpKind::Download)
    }

    /// Stable lowercase label used in trace CSV lines.
    pub fn label(self) -> &'static str {
        match self {
            ApiOpKind::Authenticate => "auth",
            ApiOpKind::ListVolumes => "list_volumes",
            ApiOpKind::ListShares => "list_shares",
            ApiOpKind::Upload => "upload",
            ApiOpKind::Download => "download",
            ApiOpKind::MakeFile => "make_file",
            ApiOpKind::MakeDir => "make_dir",
            ApiOpKind::Unlink => "unlink",
            ApiOpKind::Move => "move",
            ApiOpKind::CreateUdf => "create_udf",
            ApiOpKind::DeleteVolume => "delete_volume",
            ApiOpKind::GetDelta => "get_delta",
            ApiOpKind::RescanFromScratch => "rescan_from_scratch",
            ApiOpKind::QuerySetCaps => "query_set_caps",
            ApiOpKind::OpenSession => "open_session",
            ApiOpKind::CloseSession => "close_session",
        }
    }

    /// Parses a label produced by [`ApiOpKind::label`].
    pub fn from_label(s: &str) -> Option<ApiOpKind> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Human name as printed in the paper's figures.
    pub fn display_name(self) -> &'static str {
        match self {
            ApiOpKind::Authenticate => "Authenticate",
            ApiOpKind::ListVolumes => "List Vol.",
            ApiOpKind::ListShares => "List Shares",
            ApiOpKind::Upload => "Upload",
            ApiOpKind::Download => "Download",
            ApiOpKind::MakeFile => "Make (file)",
            ApiOpKind::MakeDir => "Make (dir)",
            ApiOpKind::Unlink => "Unlink",
            ApiOpKind::Move => "Move",
            ApiOpKind::CreateUdf => "Create UDF",
            ApiOpKind::DeleteVolume => "Del. Vol.",
            ApiOpKind::GetDelta => "Get Delta",
            ApiOpKind::RescanFromScratch => "RescanFromScratch",
            ApiOpKind::QuerySetCaps => "QuerySetCaps",
            ApiOpKind::OpenSession => "Open Session",
            ApiOpKind::CloseSession => "Close Session",
        }
    }
}

impl fmt::Display for ApiOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A DAL (data-access-layer) RPC against the metadata store. The union of
/// the `Related RPC` column of Table 2 and the upload RPCs of Table 4, plus
/// the authentication RPC of Fig. 12(c).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RpcKind {
    // Table 2: file-system management.
    ListVolumes,
    ListShares,
    MakeDir,
    MakeFile,
    UnlinkNode,
    Move,
    CreateUdf,
    DeleteVolume,
    GetDelta,
    GetVolumeId,
    // Fig. 12(c): other read-only RPCs.
    GetUserIdFromToken,
    GetFromScratch,
    GetNode,
    GetRoot,
    GetUserData,
    // Table 4: upload management.
    AddPartToUploadJob,
    DeleteUploadJob,
    GetReusableContent,
    GetUploadJob,
    MakeContent,
    MakeUploadJob,
    SetUploadJobMultipartId,
    TouchUploadJob,
}

/// The three RPC cost classes of Fig. 13.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RpcClass {
    /// Lockless parallel reads against a shard pair.
    Read,
    /// Writes/updates/deletes of single rows.
    Write,
    /// Operations that fan out to other operations (delete_volume,
    /// get_from_scratch) — "more than one order of magnitude slower".
    Cascade,
}

impl RpcKind {
    pub const ALL: [RpcKind; 23] = [
        RpcKind::ListVolumes,
        RpcKind::ListShares,
        RpcKind::MakeDir,
        RpcKind::MakeFile,
        RpcKind::UnlinkNode,
        RpcKind::Move,
        RpcKind::CreateUdf,
        RpcKind::DeleteVolume,
        RpcKind::GetDelta,
        RpcKind::GetVolumeId,
        RpcKind::GetUserIdFromToken,
        RpcKind::GetFromScratch,
        RpcKind::GetNode,
        RpcKind::GetRoot,
        RpcKind::GetUserData,
        RpcKind::AddPartToUploadJob,
        RpcKind::DeleteUploadJob,
        RpcKind::GetReusableContent,
        RpcKind::GetUploadJob,
        RpcKind::MakeContent,
        RpcKind::MakeUploadJob,
        RpcKind::SetUploadJobMultipartId,
        RpcKind::TouchUploadJob,
    ];

    /// The DAL name as it appears in the paper's tables (`dal.*`,
    /// `auth.*`).
    pub fn dal_name(self) -> &'static str {
        match self {
            RpcKind::ListVolumes => "dal.list_volumes",
            RpcKind::ListShares => "dal.list_shares",
            RpcKind::MakeDir => "dal.make_dir",
            RpcKind::MakeFile => "dal.make_file",
            RpcKind::UnlinkNode => "dal.unlink_node",
            RpcKind::Move => "dal.move",
            RpcKind::CreateUdf => "dal.create_udf",
            RpcKind::DeleteVolume => "dal.delete_volume",
            RpcKind::GetDelta => "dal.get_delta",
            RpcKind::GetVolumeId => "dal.get_volume_id",
            RpcKind::GetUserIdFromToken => "auth.get_user_id_from_token",
            RpcKind::GetFromScratch => "dal.get_from_scratch",
            RpcKind::GetNode => "dal.get_node",
            RpcKind::GetRoot => "dal.get_root",
            RpcKind::GetUserData => "dal.get_user_data",
            RpcKind::AddPartToUploadJob => "dal.add_part_to_uploadjob",
            RpcKind::DeleteUploadJob => "dal.delete_uploadjob",
            RpcKind::GetReusableContent => "dal.get_reusable_content",
            RpcKind::GetUploadJob => "dal.get_uploadjob",
            RpcKind::MakeContent => "dal.make_content",
            RpcKind::MakeUploadJob => "dal.make_uploadjob",
            RpcKind::SetUploadJobMultipartId => "dal.set_uploadjob_multipart_id",
            RpcKind::TouchUploadJob => "dal.touch_uploadjob",
        }
    }

    /// Parses a [`RpcKind::dal_name`].
    pub fn from_dal_name(s: &str) -> Option<RpcKind> {
        Self::ALL.into_iter().find(|k| k.dal_name() == s)
    }

    /// The Fig. 13 cost class of this RPC.
    pub fn class(self) -> RpcClass {
        match self {
            RpcKind::ListVolumes
            | RpcKind::ListShares
            | RpcKind::GetDelta
            | RpcKind::GetVolumeId
            | RpcKind::GetUserIdFromToken
            | RpcKind::GetNode
            | RpcKind::GetRoot
            | RpcKind::GetUserData
            | RpcKind::GetReusableContent
            | RpcKind::GetUploadJob => RpcClass::Read,
            RpcKind::MakeDir
            | RpcKind::MakeFile
            | RpcKind::UnlinkNode
            | RpcKind::Move
            | RpcKind::CreateUdf
            | RpcKind::AddPartToUploadJob
            | RpcKind::DeleteUploadJob
            | RpcKind::MakeContent
            | RpcKind::MakeUploadJob
            | RpcKind::SetUploadJobMultipartId
            | RpcKind::TouchUploadJob => RpcClass::Write,
            RpcKind::DeleteVolume | RpcKind::GetFromScratch => RpcClass::Cascade,
        }
    }

    /// The Fig. 12 panel this RPC is plotted in.
    pub fn figure12_panel(self) -> &'static str {
        match self {
            RpcKind::AddPartToUploadJob
            | RpcKind::DeleteUploadJob
            | RpcKind::GetReusableContent
            | RpcKind::GetUploadJob
            | RpcKind::MakeContent
            | RpcKind::MakeUploadJob
            | RpcKind::SetUploadJobMultipartId
            | RpcKind::TouchUploadJob => "upload",
            RpcKind::GetUserIdFromToken
            | RpcKind::GetFromScratch
            | RpcKind::GetNode
            | RpcKind::GetRoot
            | RpcKind::GetUserData => "other",
            _ => "fs",
        }
    }
}

impl RpcClass {
    pub fn label(self) -> &'static str {
        match self {
            RpcClass::Read => "read",
            RpcClass::Write => "write",
            RpcClass::Cascade => "cascade",
        }
    }
}

impl fmt::Display for RpcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.dal_name())
    }
}

impl fmt::Display for RpcClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rpc_names_match_paper() {
        assert_eq!(RpcKind::ListVolumes.dal_name(), "dal.list_volumes");
        assert_eq!(RpcKind::UnlinkNode.dal_name(), "dal.unlink_node");
        assert_eq!(
            RpcKind::GetUserIdFromToken.dal_name(),
            "auth.get_user_id_from_token"
        );
        assert_eq!(
            RpcKind::SetUploadJobMultipartId.dal_name(),
            "dal.set_uploadjob_multipart_id"
        );
    }

    #[test]
    fn cascade_class_contains_exactly_the_paper_pair() {
        let cascades: Vec<RpcKind> = RpcKind::ALL
            .into_iter()
            .filter(|k| k.class() == RpcClass::Cascade)
            .collect();
        assert_eq!(
            cascades,
            vec![RpcKind::DeleteVolume, RpcKind::GetFromScratch]
        );
    }

    #[test]
    fn op_labels_round_trip() {
        for op in ApiOpKind::ALL {
            assert_eq!(ApiOpKind::from_label(op.label()), Some(op), "{op:?}");
        }
        assert_eq!(ApiOpKind::from_label("bogus"), None);
    }

    #[test]
    fn rpc_names_round_trip() {
        for k in RpcKind::ALL {
            assert_eq!(RpcKind::from_dal_name(k.dal_name()), Some(k));
        }
    }

    #[test]
    fn data_management_classification() {
        assert!(ApiOpKind::Upload.is_data_management());
        assert!(ApiOpKind::Unlink.is_data_management());
        assert!(!ApiOpKind::ListVolumes.is_data_management());
        assert!(!ApiOpKind::GetDelta.is_data_management());
        assert!(!ApiOpKind::OpenSession.is_data_management());
        assert!(ApiOpKind::Upload.is_transfer());
        assert!(!ApiOpKind::MakeFile.is_transfer());
    }

    #[test]
    fn figure12_panels_partition_all_rpcs() {
        let mut fs = 0;
        let mut up = 0;
        let mut other = 0;
        for k in RpcKind::ALL {
            match k.figure12_panel() {
                "fs" => fs += 1,
                "upload" => up += 1,
                "other" => other += 1,
                _ => unreachable!(),
            }
        }
        assert_eq!(up, 8, "Table 4 lists 8 upload RPCs");
        assert_eq!(other, 5, "Fig. 12(c) plots 5 RPCs");
        assert_eq!(fs + up + other, RpcKind::ALL.len());
    }
}
