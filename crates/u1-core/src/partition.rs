//! Thread-local partition context for the parallel workload driver.
//!
//! The driver partitions the client population by metastore shard and runs
//! each partition on a worker thread. Determinism across worker counts
//! requires that every source of state a partition consumes is keyed by the
//! *partition* (called its **origin**), never by the thread or by global
//! arrival order. This module carries that origin — plus the partition's
//! virtual time and its monotone per-origin counters — as a thread-local
//! context that a worker installs while it runs a partition:
//!
//! - `SimClock::now()` prefers the context's time cell, so concurrent
//!   partitions can sit at different virtual instants without racing on the
//!   shared clock cell.
//! - `TraceRecord::new` stamps records with `(origin, seq)` so a canonical
//!   sort order exists even when two partitions log at the same instant.
//! - `SessionTable::open` derives origin-tagged session ids, keeping id
//!   assignment independent of cross-partition interleaving.
//!
//! When no context is installed everything falls back to origin 0 with the
//! legacy global counters — single-threaded callers (unit tests, live TCP
//! mode) behave exactly as before.

use crate::clock::SimTime;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-partition state installed on a worker thread while it runs that
/// partition. One context per partition per run; it persists across days so
/// the counters stay monotone for the whole window.
#[derive(Debug)]
pub struct PartitionCtx {
    origin: u32,
    /// Current virtual time of this partition, in µs.
    time: AtomicU64,
    /// Monotone per-origin trace-record sequence.
    trace_seq: AtomicU64,
    /// Monotone per-origin session-id sequence.
    session_seq: AtomicU64,
}

impl PartitionCtx {
    pub fn new(origin: u32) -> Arc<Self> {
        Arc::new(Self {
            origin,
            time: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
            session_seq: AtomicU64::new(0),
        })
    }

    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// Moves this partition's clock. Only the owning worker writes it, so
    /// `Relaxed` suffices.
    pub fn set_time(&self, t: SimTime) {
        self.time.store(t.as_micros(), Ordering::Relaxed);
    }

    pub fn time(&self) -> SimTime {
        SimTime::from_micros(self.time.load(Ordering::Relaxed))
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<PartitionCtx>>> = const { RefCell::new(None) };
}

/// Installs `ctx` on this thread, returning a guard that restores the
/// previous context (usually `None`) on drop.
pub fn install(ctx: Arc<PartitionCtx>) -> CtxGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    CtxGuard { prev }
}

/// RAII guard from [`install`].
pub struct CtxGuard {
    prev: Option<Arc<PartitionCtx>>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

fn with_current<T>(f: impl FnOnce(&PartitionCtx) -> T) -> Option<T> {
    CURRENT.with(|c| c.borrow().as_deref().map(f))
}

/// Origin of the partition running on this thread; 0 when none is installed.
pub fn current_origin() -> u32 {
    with_current(|ctx| ctx.origin).unwrap_or(0)
}

/// This partition's virtual time, if a context is installed.
pub fn current_time() -> Option<SimTime> {
    with_current(PartitionCtx::time)
}

/// Next `(origin, seq)` stamp for a trace record; `None` without a context
/// (callers then use the legacy `(0, 0)` stamp).
pub fn next_trace_stamp() -> Option<(u32, u64)> {
    with_current(|ctx| {
        (
            ctx.origin,
            ctx.trace_seq.fetch_add(1, Ordering::Relaxed) + 1,
        )
    })
}

/// Next origin-tagged raw session id; `None` without a context (callers then
/// fall back to their own global counter). The origin lives in the high bits
/// so ids from different partitions never collide.
pub fn next_session_id() -> Option<u64> {
    with_current(|ctx| {
        let seq = ctx.session_seq.fetch_add(1, Ordering::Relaxed) + 1;
        ((ctx.origin as u64 + 1) << 40) | seq
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_a_context() {
        assert_eq!(current_origin(), 0);
        assert_eq!(current_time(), None);
        assert_eq!(next_trace_stamp(), None);
        assert_eq!(next_session_id(), None);
    }

    #[test]
    fn installed_context_supplies_origin_time_and_counters() {
        let ctx = PartitionCtx::new(3);
        ctx.set_time(SimTime::from_secs(42));
        let _g = install(ctx.clone());
        assert_eq!(current_origin(), 3);
        assert_eq!(current_time(), Some(SimTime::from_secs(42)));
        assert_eq!(next_trace_stamp(), Some((3, 1)));
        assert_eq!(next_trace_stamp(), Some((3, 2)));
        let s1 = next_session_id().unwrap();
        let s2 = next_session_id().unwrap();
        assert_ne!(s1, s2);
        assert_eq!(s1 >> 40, 4, "origin + 1 in the high bits");
    }

    #[test]
    fn guard_restores_previous_context() {
        {
            let _outer = install(PartitionCtx::new(1));
            {
                let _inner = install(PartitionCtx::new(2));
                assert_eq!(current_origin(), 2);
            }
            assert_eq!(current_origin(), 1);
        }
        assert_eq!(current_origin(), 0);
    }

    #[test]
    fn contexts_are_per_thread() {
        let _g = install(PartitionCtx::new(7));
        let other = std::thread::spawn(current_origin).join().unwrap();
        assert_eq!(other, 0);
        assert_eq!(current_origin(), 7);
    }
}
