//! Byte quantities and the file-size categories of Fig. 2(b).

use serde::{Deserialize, Serialize};
use std::fmt;

pub const KIB: u64 = 1 << 10;
pub const MIB: u64 = 1 << 20;
pub const GIB: u64 = 1 << 30;
pub const TIB: u64 = 1 << 40;

/// A byte count with humane formatting.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    pub const fn new(bytes: u64) -> Self {
        Self(bytes)
    }
    pub const fn kib(k: u64) -> Self {
        Self(k * KIB)
    }
    pub const fn mib(m: u64) -> Self {
        Self(m * MIB)
    }
    pub const fn gib(g: u64) -> Self {
        Self(g * GIB)
    }
    pub const fn as_u64(self) -> u64 {
        self.0
    }
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 < KIB {
            write!(f, "{}B", self.0)
        } else if self.0 < MIB {
            write!(f, "{:.1}KiB", b / KIB as f64)
        } else if self.0 < GIB {
            write!(f, "{:.1}MiB", b / MIB as f64)
        } else if self.0 < TIB {
            write!(f, "{:.2}GiB", b / GIB as f64)
        } else {
            write!(f, "{:.2}TiB", b / TIB as f64)
        }
    }
}

/// The five file-size buckets of Fig. 2(b): `x<0.5`, `0.5<x<1`, `1<x<5`,
/// `5<x<25`, `25<x` (MBytes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum SizeCategory {
    /// < 0.5 MB
    Tiny,
    /// 0.5–1 MB
    Small,
    /// 1–5 MB
    Medium,
    /// 5–25 MB
    Large,
    /// > 25 MB
    Huge,
}

impl SizeCategory {
    pub const ALL: [SizeCategory; 5] = [
        SizeCategory::Tiny,
        SizeCategory::Small,
        SizeCategory::Medium,
        SizeCategory::Large,
        SizeCategory::Huge,
    ];

    /// Buckets a file size. The paper uses decimal megabytes.
    pub fn of(size: ByteSize) -> SizeCategory {
        const MB: u64 = 1_000_000;
        let b = size.0;
        if b < MB / 2 {
            SizeCategory::Tiny
        } else if b < MB {
            SizeCategory::Small
        } else if b < 5 * MB {
            SizeCategory::Medium
        } else if b < 25 * MB {
            SizeCategory::Large
        } else {
            SizeCategory::Huge
        }
    }

    /// Axis label used by the Fig. 2(b) reproduction.
    pub fn label(self) -> &'static str {
        match self {
            SizeCategory::Tiny => "x<0.5",
            SizeCategory::Small => "0.5<x<1",
            SizeCategory::Medium => "1<x<5",
            SizeCategory::Large => "5<x<25",
            SizeCategory::Huge => "25<x",
        }
    }
}

impl fmt::Display for SizeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_categories_match_fig2b_edges() {
        assert_eq!(SizeCategory::of(ByteSize(0)), SizeCategory::Tiny);
        assert_eq!(SizeCategory::of(ByteSize(499_999)), SizeCategory::Tiny);
        assert_eq!(SizeCategory::of(ByteSize(500_000)), SizeCategory::Small);
        assert_eq!(SizeCategory::of(ByteSize(999_999)), SizeCategory::Small);
        assert_eq!(SizeCategory::of(ByteSize(1_000_000)), SizeCategory::Medium);
        assert_eq!(SizeCategory::of(ByteSize(4_999_999)), SizeCategory::Medium);
        assert_eq!(SizeCategory::of(ByteSize(5_000_000)), SizeCategory::Large);
        assert_eq!(SizeCategory::of(ByteSize(24_999_999)), SizeCategory::Large);
        assert_eq!(SizeCategory::of(ByteSize(25_000_000)), SizeCategory::Huge);
    }

    #[test]
    fn byte_size_formats() {
        assert_eq!(ByteSize(512).to_string(), "512B");
        assert_eq!(ByteSize::kib(2).to_string(), "2.0KiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3.0MiB");
        assert_eq!(ByteSize::gib(1).to_string(), "1.00GiB");
        assert_eq!(ByteSize(2 * TIB).to_string(), "2.00TiB");
    }

    #[test]
    fn byte_size_sums() {
        let total: ByteSize = [ByteSize(1), ByteSize(2), ByteSize(3)].into_iter().sum();
        assert_eq!(total, ByteSize(6));
        let mut b = ByteSize(1);
        b += ByteSize(9);
        assert_eq!(b + ByteSize(10), ByteSize(20));
    }
}
