//! Deterministic, seed-driven fault-injection plane.
//!
//! The paper's back-end is defined as much by its failure handling as by its
//! happy path: server-side uploadjobs exist precisely to resume interrupted
//! S3 multipart uploads (§3), week-old jobs are garbage-collected, the
//! 10-shard metadata cluster degrades per-shard (App. A), and §5 analyzes
//! RPC error behavior under stress. This module gives the reproduction a
//! fault surface that exercises those mechanisms **without giving up
//! determinism**: a [`FaultPlan`] describes per-component Bernoulli rates
//! and outage windows, and a [`FaultInjector`] turns the plan into concrete
//! yes/no decisions that are a pure function of `(seed, component,
//! partition origin, per-origin draw index)` — so an identical seed and plan
//! produce an identical fault schedule, and therefore an identical trace, at
//! any worker count.
//!
//! # Determinism argument
//!
//! Two decision mechanisms are used, both worker-count-invariant:
//!
//! * **Outage windows** (shard and auth-service unavailability) are
//!   precomputed from `derive_seed(seed, label, shard)` alone. A lookup is a
//!   pure function of `(shard, virtual time)` — it does not matter which
//!   thread asks, or in which order.
//! * **Bernoulli rolls** (RPC timeouts, blob part-put failures, notification
//!   drops, client crashes) draw from a per-*origin* RNG bank, exactly like
//!   the latency model's `LatencyBank`: each partition of the parallel
//!   driver is pinned to one origin, processes its events in a deterministic
//!   order regardless of which worker thread it lands on, and therefore
//!   consumes its own RNG stream in a deterministic order.
//!
//! With [`FaultPlan::none()`] every probability is zero and every window
//! count is zero: no RNG is ever constructed, no decision ever fires, and
//! the golden trace stays bit-identical to a build without this module.
//!
//! # Trace tagging
//!
//! Fault runs are analyzed through the same one-pass streaming engine as
//! normal runs, so the evidence has to be *in the trace*. Two thread-local
//! tags — an attempt counter and an [`ErrorClass`] — are stamped onto every
//! `TraceRecord` at creation time (see `u1-trace`). Retry loops bump the
//! attempt tag around each re-issue; injection sites set the error class
//! before surfacing a failure. Both default to "first try, no error", which
//! serializes to nothing, keeping fault-free traces byte-identical.

use crate::clock::{SimDuration, SimTime};
use crate::fxhash::FxHashMap;
use crate::partition;
use crate::rngx;
use rand::rngs::SmallRng;
use rand::Rng;
use std::cell::Cell;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Classification of a failed (or fault-affected) operation, carried on
/// trace records so the analytics engine can compute per-class error rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[repr(u8)]
pub enum ErrorClass {
    /// A DAL RPC exceeded its timeout budget (injected on the API→DAL path).
    Timeout = 1,
    /// The metadata shard owning the entity was inside an unavailability
    /// window (App. A: the 10-shard cluster degrades per-shard).
    ShardUnavailable = 2,
    /// A blob-store multipart part-put failed (§3: the uploadjob mechanism
    /// exists to resume exactly this).
    PartPut = 3,
    /// The auth service was inside an outage window and the token cache
    /// could not answer either.
    AuthOutage = 4,
    /// Any other error surfaced while a fault plan was active.
    Other = 5,
}

impl ErrorClass {
    /// All classes, for exhaustive analytics iteration.
    pub const ALL: [ErrorClass; 5] = [
        ErrorClass::Timeout,
        ErrorClass::ShardUnavailable,
        ErrorClass::PartPut,
        ErrorClass::AuthOutage,
        ErrorClass::Other,
    ];

    /// Stable label used in the CSV trace encoding and analytics output.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Timeout => "timeout",
            ErrorClass::ShardUnavailable => "shard_unavailable",
            ErrorClass::PartPut => "part_put",
            ErrorClass::AuthOutage => "auth_outage",
            ErrorClass::Other => "other",
        }
    }

    /// Inverse of [`ErrorClass::label`]; `None` for unknown labels.
    pub fn from_label(s: &str) -> Option<ErrorClass> {
        ErrorClass::ALL.into_iter().find(|c| c.label() == s)
    }
}

// ---------------------------------------------------------------------------
// Thread-local fault tags (attempt counter + error class).
//
// These are independent of `PartitionCtx` so that single-threaded unit tests
// can exercise tagging without installing a partition context. They are set
// and cleared strictly within one client operation on one thread, so a
// `Cell` suffices.
// ---------------------------------------------------------------------------

thread_local! {
    static ATTEMPT: Cell<u32> = const { Cell::new(1) };
    static ERROR_CLASS: Cell<Option<ErrorClass>> = const { Cell::new(None) };
}

/// Current attempt number stamped onto new trace records (1 = first try).
pub fn current_attempt() -> u32 {
    ATTEMPT.with(Cell::get)
}

/// Sets the attempt tag; retry loops call this before each re-issue and
/// reset it (to 1) when the operation resolves.
pub fn set_attempt(n: u32) {
    ATTEMPT.with(|a| a.set(n.max(1)));
}

/// Current error-class tag stamped onto new trace records.
pub fn current_error_class() -> Option<ErrorClass> {
    ERROR_CLASS.with(Cell::get)
}

/// Sets (or clears) the error-class tag. Injection sites set it just before
/// surfacing a failure; the driver clears both tags between operations.
pub fn set_error_class(class: Option<ErrorClass>) {
    ERROR_CLASS.with(|c| c.set(class));
}

/// Resets both tags to their defaults (attempt 1, no error class).
pub fn clear_tags() {
    set_attempt(1);
    set_error_class(None);
}

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// Bounded exponential backoff: `delay(attempt) = min(base·2^(attempt-1),
/// cap)`, with at most `max_attempts` total attempts. Deterministic (no
/// jitter) so retry schedules replay exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Upper bound on any single backoff delay.
    pub cap: SimDuration,
}

impl RetryPolicy {
    /// Default server-side policy for the API→DAL path: 3 attempts,
    /// 100 ms base, 2 s cap.
    pub fn dal_default() -> Self {
        Self {
            max_attempts: 3,
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(2),
        }
    }

    /// Default client-side policy used by the workload driver: 3 attempts,
    /// 500 ms base, 8 s cap.
    pub fn client_default() -> Self {
        Self {
            max_attempts: 3,
            base: SimDuration::from_millis(500),
            cap: SimDuration::from_secs(8),
        }
    }

    /// Backoff delay before issuing attempt `attempt + 1` (i.e. after the
    /// failure of `attempt`, 1-based). Saturates at `cap`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let base = self.base.as_micros();
        let shift = attempt.saturating_sub(1).min(20);
        let delay = base.saturating_mul(1u64 << shift);
        SimDuration::from_micros(delay.min(self.cap.as_micros()))
    }
}

/// Per-component fault schedule for one run. All rates are per-decision
/// Bernoulli probabilities; outages are fixed-length windows scheduled
/// uniformly over `horizon` from the plan seed.
///
/// [`FaultPlan::none()`] (the default) disables everything: the golden trace
/// and `DriverReport` of a fault-free run are bit-identical to a build that
/// predates fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that one API→DAL RPC attempt times out.
    pub rpc_timeout_p: f64,
    /// Probability that one blob-store multipart part-put fails.
    pub part_put_p: f64,
    /// Probability that one notification fan-out delivery is dropped.
    pub notify_drop_p: f64,
    /// Probability that a client "crashes" mid-upload, abandoning its
    /// uploadjob (resumed on its next session, or GC'd after a week).
    pub client_crash_p: f64,
    /// Number of unavailability windows per metadata shard.
    pub shard_outages: u32,
    /// Length of each shard unavailability window.
    pub shard_outage_len: SimDuration,
    /// Number of auth-service outage windows.
    pub auth_outages: u32,
    /// Length of each auth-service outage window.
    pub auth_outage_len: SimDuration,
    /// Horizon over which outage windows are scheduled (normally the run's
    /// simulated duration).
    pub horizon: SimDuration,
    /// Server-side retry policy on the API→DAL path.
    pub rpc_retry: RetryPolicy,
    /// Client-side retry policy used by the workload driver.
    pub client_retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty plan: no faults, no windows, nothing fires.
    pub fn none() -> Self {
        Self {
            rpc_timeout_p: 0.0,
            part_put_p: 0.0,
            notify_drop_p: 0.0,
            client_crash_p: 0.0,
            shard_outages: 0,
            shard_outage_len: SimDuration::ZERO,
            auth_outages: 0,
            auth_outage_len: SimDuration::ZERO,
            horizon: SimDuration::ZERO,
            rpc_retry: RetryPolicy::dal_default(),
            client_retry: RetryPolicy::client_default(),
        }
    }

    /// True when no fault can ever fire (every rate zero, every window
    /// count zero). Injection sites early-return on this.
    pub fn is_none(&self) -> bool {
        self.rpc_timeout_p <= 0.0
            && self.part_put_p <= 0.0
            && self.notify_drop_p <= 0.0
            && self.client_crash_p <= 0.0
            && self.shard_outages == 0
            && self.auth_outages == 0
    }

    /// A mild everything-on preset: ~1% shard downtime, 0.2% RPC timeouts,
    /// 1% part-put failures, 2% notification drops, 1% client crashes, one
    /// 20-minute auth outage.
    pub fn light(horizon: SimDuration) -> Self {
        let mut plan = FaultPlan::none();
        plan.horizon = horizon;
        plan.rpc_timeout_p = 0.002;
        plan.part_put_p = 0.01;
        plan.notify_drop_p = 0.02;
        plan.client_crash_p = 0.01;
        plan.shard_outages = 4;
        plan.shard_outage_len = SimDuration::from_micros(horizon.as_micros() / 100 / 4);
        plan.auth_outages = 1;
        plan.auth_outage_len = SimDuration::from_mins(20);
        plan
    }

    /// Parses a `key=value,key=value` spec (the `--faults` CLI syntax), or
    /// the preset names `none` / `light`.
    ///
    /// Keys: `rpc`, `part`, `notify`, `crash` (Bernoulli probabilities) and
    /// `shard`, `auth` (total downtime as a fraction of `horizon`, realized
    /// as 4 resp. 2 equal windows).
    pub fn parse(spec: &str, horizon: SimDuration) -> Result<FaultPlan, String> {
        match spec {
            "none" => return Ok(FaultPlan::none()),
            "light" => return Ok(FaultPlan::light(horizon)),
            _ => {}
        }
        let mut plan = FaultPlan::none();
        plan.horizon = horizon;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let v: f64 = value
                .parse()
                .map_err(|_| format!("fault spec `{part}`: `{value}` is not a number"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("fault spec `{part}`: {v} outside [0,1]"));
            }
            match key {
                "rpc" => plan.rpc_timeout_p = v,
                "part" => plan.part_put_p = v,
                "notify" => plan.notify_drop_p = v,
                "crash" => plan.client_crash_p = v,
                "shard" => {
                    plan.shard_outages = if v > 0.0 { 4 } else { 0 };
                    plan.shard_outage_len =
                        SimDuration::from_micros((horizon.as_micros() as f64 * v / 4.0) as u64);
                }
                "auth" => {
                    plan.auth_outages = if v > 0.0 { 2 } else { 0 };
                    plan.auth_outage_len =
                        SimDuration::from_micros((horizon.as_micros() as f64 * v / 2.0) as u64);
                }
                _ => return Err(format!("unknown fault key `{key}`")),
            }
        }
        Ok(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

/// One per-origin RNG stream per component, mirroring the latency model's
/// bank: origin `o` draws from `derive_seed(seed, label, o)`, so decisions
/// depend only on the partition and its draw order — never on the thread.
struct Bank {
    label: &'static str,
    seed: u64,
    rngs: RwLock<FxHashMap<u32, Arc<Mutex<SmallRng>>>>,
}

/// Locks a mutex, tolerating poisoning (a poisoned RNG is still a valid
/// RNG; determinism only needs the draw order, which poisoning preserves).
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Bank {
    fn new(label: &'static str, seed: u64) -> Self {
        Self {
            label,
            seed,
            rngs: RwLock::new(FxHashMap::default()),
        }
    }

    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let origin = partition::current_origin();
        let rng = {
            let map = match self.rngs.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            map.get(&origin).cloned()
        };
        let rng = match rng {
            Some(r) => r,
            None => {
                let mut map = match self.rngs.write() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                Arc::clone(map.entry(origin).or_insert_with(|| {
                    Arc::new(Mutex::new(rngx::sub_rng(
                        self.seed,
                        self.label,
                        origin as u64,
                    )))
                }))
            }
        };
        let sample: f64 = lock_tolerant(&rng).gen_range(0.0..1.0);
        sample < p
    }
}

/// Turns a [`FaultPlan`] into concrete, deterministic fault decisions.
///
/// Sorted `(start, end)` outage windows for one component.
type Windows = Vec<(SimTime, SimTime)>;

/// Constructed once per run (the backend builds one from its config seed and
/// the driver builds an independent one for client-side crash rolls). All
/// methods are cheap no-ops when the plan [is none](FaultPlan::is_none).
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    rpc: Bank,
    part: Bank,
    notify: Bank,
    crash: Bank,
    /// Outage windows per shard, computed lazily (shard count is not known
    /// here) from `derive_seed(seed, "fault-shard-window", shard)`.
    shard_windows: RwLock<FxHashMap<u64, Arc<Windows>>>,
    /// Auth-service outage windows, computed eagerly.
    auth_windows: Vec<(SimTime, SimTime)>,
}

/// Schedules `count` windows of `len` uniformly over `horizon` from one RNG
/// stream, returned sorted by start time.
fn schedule_windows(
    rng: &mut SmallRng,
    count: u32,
    len: SimDuration,
    horizon: SimDuration,
) -> Vec<(SimTime, SimTime)> {
    let len_us = len.as_micros();
    let span = horizon.as_micros().saturating_sub(len_us);
    let mut windows: Vec<(SimTime, SimTime)> = (0..count)
        .map(|_| {
            let start = if span == 0 { 0 } else { rng.gen_range(0..span) };
            (
                SimTime::from_micros(start),
                SimTime::from_micros(start.saturating_add(len_us)),
            )
        })
        .collect();
    windows.sort_unstable();
    windows
}

fn in_windows(windows: &[(SimTime, SimTime)], t: SimTime) -> bool {
    windows.iter().any(|&(start, end)| t >= start && t < end)
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let auth_windows = if plan.auth_outages > 0 && plan.auth_outage_len > SimDuration::ZERO {
            let mut rng = rngx::sub_rng(seed, "fault-auth-window", 0);
            schedule_windows(
                &mut rng,
                plan.auth_outages,
                plan.auth_outage_len,
                plan.horizon,
            )
        } else {
            Vec::new()
        };
        Self {
            rpc: Bank::new("fault-rpc", seed),
            part: Bank::new("fault-part", seed),
            notify: Bank::new("fault-notify", seed),
            crash: Bank::new("fault-crash", seed),
            shard_windows: RwLock::new(FxHashMap::default()),
            auth_windows,
            plan,
            seed,
        }
    }

    /// An injector that never fires (the [`FaultPlan::none()`] plan).
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::none(), 0)
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when no fault can ever fire.
    pub fn is_none(&self) -> bool {
        self.plan.is_none()
    }

    /// Should this API→DAL RPC attempt time out?
    pub fn rpc_timeout(&self) -> bool {
        self.rpc.roll(self.plan.rpc_timeout_p)
    }

    /// Should this blob-store part-put fail?
    pub fn part_put_fails(&self) -> bool {
        self.part.roll(self.plan.part_put_p)
    }

    /// Should this notification delivery be dropped?
    pub fn notify_dropped(&self) -> bool {
        self.notify.roll(self.plan.notify_drop_p)
    }

    /// Should the client crash before sending its next upload part?
    pub fn client_crashes(&self) -> bool {
        self.crash.roll(self.plan.client_crash_p)
    }

    /// Is metadata shard `shard` inside an unavailability window at `t`?
    /// Pure function of `(seed, shard, t)` — worker-count invariant.
    pub fn shard_down(&self, shard: u64, t: SimTime) -> bool {
        if self.plan.shard_outages == 0 || self.plan.shard_outage_len == SimDuration::ZERO {
            return false;
        }
        let cached = {
            let map = match self.shard_windows.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            map.get(&shard).cloned()
        };
        let windows = match cached {
            Some(w) => w,
            None => {
                let mut rng = rngx::sub_rng(self.seed, "fault-shard-window", shard);
                let w = Arc::new(schedule_windows(
                    &mut rng,
                    self.plan.shard_outages,
                    self.plan.shard_outage_len,
                    self.plan.horizon,
                ));
                let mut map = match self.shard_windows.write() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                Arc::clone(map.entry(shard).or_insert(w))
            }
        };
        in_windows(&windows, t)
    }

    /// Is the auth service inside an outage window at `t`?
    pub fn auth_down(&self, t: SimTime) -> bool {
        in_windows(&self.auth_windows, t)
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Client-side circuit breaker
// ---------------------------------------------------------------------------

/// Client-side per-shard circuit breaker, owned by one driver partition (so
/// it needs no synchronization and stays deterministic).
///
/// Closed → open after `threshold` consecutive failures; while open,
/// [`CircuitBreaker::allows`] fast-fails requests until `cooldown` has
/// elapsed, then lets one probe through (half-open). A success closes the
/// breaker; a failure re-opens it for another cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimDuration,
    consecutive_failures: u32,
    open_until: Option<SimTime>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: SimDuration) -> Self {
        Self {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            open_until: None,
        }
    }

    /// Default driver policy: open after 5 consecutive failures, 60 s
    /// cooldown.
    pub fn driver_default() -> Self {
        CircuitBreaker::new(5, SimDuration::from_secs(60))
    }

    /// May a request be issued at `now`? `false` means fast-fail without
    /// touching the backend.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.open_until {
            Some(until) if now < until => false,
            // Cooldown elapsed: half-open, let one probe through.
            Some(_) => {
                self.open_until = None;
                true
            }
            None => true,
        }
    }

    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.open_until = None;
    }

    pub fn record_failure(&mut self, now: SimTime) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.threshold {
            self.open_until = Some(now + self.cooldown);
            // Re-arm: a half-open probe failure re-opens immediately.
            self.consecutive_failures = self.threshold;
        }
    }

    pub fn is_open(&self, now: SimTime) -> bool {
        matches!(self.open_until, Some(until) if now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(inj.is_none());
        for _ in 0..100 {
            assert!(!inj.rpc_timeout());
            assert!(!inj.part_put_fails());
            assert!(!inj.notify_dropped());
            assert!(!inj.client_crashes());
        }
        assert!(!inj.shard_down(3, SimTime::from_secs(10)));
        assert!(!inj.auth_down(SimTime::from_secs(10)));
        // No RNG bank was ever materialized.
        assert!(inj.rpc.rngs.read().expect("lock").is_empty());
    }

    #[test]
    fn rolls_are_deterministic_per_origin() {
        let plan = FaultPlan {
            rpc_timeout_p: 0.5,
            horizon: SimDuration::from_days(1),
            ..FaultPlan::none()
        };
        let a = FaultInjector::new(plan.clone(), 42);
        let b = FaultInjector::new(plan, 42);
        let seq_a: Vec<bool> = (0..64).map(|_| a.rpc_timeout()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.rpc_timeout()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x) && seq_a.iter().any(|&x| !x));
    }

    #[test]
    fn origins_draw_independent_streams() {
        let plan = FaultPlan {
            part_put_p: 0.5,
            horizon: SimDuration::from_days(1),
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan, 7);
        let base: Vec<bool> = (0..64).map(|_| inj.part_put_fails()).collect();
        let ctx = partition::PartitionCtx::new(3);
        let _g = partition::install(ctx);
        let other: Vec<bool> = (0..64).map(|_| inj.part_put_fails()).collect();
        assert_ne!(base, other, "distinct origins must not share a stream");
    }

    #[test]
    fn shard_windows_cover_requested_downtime() {
        let horizon = SimDuration::from_days(3);
        let plan = FaultPlan {
            shard_outages: 4,
            shard_outage_len: SimDuration::from_mins(30),
            horizon,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan, 11);
        // Sample minute-by-minute; expect roughly 4*30min of downtime (less
        // if windows overlap), and determinism across injectors.
        let down_minutes = (0..horizon.as_secs() / 60)
            .filter(|m| inj.shard_down(2, SimTime::from_secs(m * 60)))
            .count();
        assert!(down_minutes > 0 && down_minutes <= 120, "{down_minutes}");
        let inj2 = FaultInjector::new(inj.plan().clone(), 11);
        for m in 0..horizon.as_secs() / 60 {
            let t = SimTime::from_secs(m * 60);
            assert_eq!(inj.shard_down(2, t), inj2.shard_down(2, t));
        }
        // Different shards get different schedules.
        let other_shard: Vec<bool> = (0..horizon.as_secs() / 60)
            .map(|m| inj.shard_down(5, SimTime::from_secs(m * 60)))
            .collect();
        let this_shard: Vec<bool> = (0..horizon.as_secs() / 60)
            .map(|m| inj.shard_down(2, SimTime::from_secs(m * 60)))
            .collect();
        assert_ne!(other_shard, this_shard);
    }

    #[test]
    fn auth_windows_schedule_once() {
        let plan = FaultPlan {
            auth_outages: 2,
            auth_outage_len: SimDuration::from_mins(10),
            horizon: SimDuration::from_days(1),
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan, 5);
        let down_minutes = (0..24 * 60)
            .filter(|m| inj.auth_down(SimTime::from_secs(m * 60)))
            .count();
        assert!(down_minutes > 0 && down_minutes <= 20, "{down_minutes}");
    }

    #[test]
    fn retry_policy_backs_off_exponentially_with_cap() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_millis(350),
        };
        assert_eq!(p.backoff(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff(2), SimDuration::from_millis(200));
        assert_eq!(p.backoff(3), SimDuration::from_millis(350));
        assert_eq!(p.backoff(30), SimDuration::from_millis(350));
    }

    #[test]
    fn circuit_breaker_opens_cools_down_and_probes() {
        let mut cb = CircuitBreaker::new(3, SimDuration::from_secs(60));
        let t0 = SimTime::from_secs(1000);
        assert!(cb.allows(t0));
        cb.record_failure(t0);
        cb.record_failure(t0);
        assert!(cb.allows(t0), "below threshold stays closed");
        cb.record_failure(t0);
        assert!(cb.is_open(t0));
        assert!(!cb.allows(SimTime::from_secs(1030)), "open during cooldown");
        assert!(cb.allows(SimTime::from_secs(1061)), "half-open probe");
        cb.record_failure(SimTime::from_secs(1061));
        assert!(
            cb.is_open(SimTime::from_secs(1062)),
            "probe failure re-opens"
        );
        assert!(cb.allows(SimTime::from_secs(1122)));
        cb.record_success();
        assert!(!cb.is_open(SimTime::from_secs(1122)));
        assert!(cb.allows(SimTime::from_secs(1123)));
    }

    #[test]
    fn plan_parse_round_trips_keys() {
        let horizon = SimDuration::from_days(3);
        let plan = FaultPlan::parse("shard=0.01,rpc=0.002,part=0.01,crash=0.005", horizon)
            .expect("valid spec");
        assert_eq!(plan.shard_outages, 4);
        assert_eq!(
            plan.shard_outage_len.as_micros(),
            horizon.as_micros() / 100 / 4
        );
        assert!((plan.rpc_timeout_p - 0.002).abs() < 1e-12);
        assert!((plan.part_put_p - 0.01).abs() < 1e-12);
        assert!((plan.client_crash_p - 0.005).abs() < 1e-12);
        assert!(!plan.is_none());
        assert!(FaultPlan::parse("none", horizon).expect("preset").is_none());
        assert!(!FaultPlan::parse("light", horizon)
            .expect("preset")
            .is_none());
        assert!(FaultPlan::parse("bogus=1", horizon).is_err());
        assert!(FaultPlan::parse("rpc=2.0", horizon).is_err());
        assert!(FaultPlan::parse("rpc", horizon).is_err());
    }

    #[test]
    fn tags_default_and_reset() {
        clear_tags();
        assert_eq!(current_attempt(), 1);
        assert_eq!(current_error_class(), None);
        set_attempt(3);
        set_error_class(Some(ErrorClass::Timeout));
        assert_eq!(current_attempt(), 3);
        assert_eq!(current_error_class(), Some(ErrorClass::Timeout));
        clear_tags();
        assert_eq!(current_attempt(), 1);
        assert_eq!(current_error_class(), None);
        assert_eq!(ErrorClass::from_label("timeout"), Some(ErrorClass::Timeout));
        assert_eq!(ErrorClass::from_label("nope"), None);
    }
}
