//! Strongly-typed identifiers for the U1 protocol entities (§3.1.1).
//!
//! The real system used back-end-generated UUIDs for nodes and contents. We
//! keep ids as compact integers (`u64` / 160-bit hashes) because the
//! reproduction routinely simulates tens of millions of events; the types
//! below make it impossible to confuse, say, a volume id with a node id.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! impl_u64_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw integer id.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer id.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

impl_u64_id!(
    /// A user account. The paper traced 1,294,794 distinct users.
    UserId,
    "u"
);
impl_u64_id!(
    /// A volume: a container of nodes (§3.1.1). Volume 0 is the root volume
    /// created at client install time; others are user-defined folders (UDFs)
    /// or shares.
    VolumeId,
    "v"
);
impl_u64_id!(
    /// A node: a file or directory inside a volume.
    NodeId,
    "n"
);
impl_u64_id!(
    /// A storage-protocol session. One session per connected desktop client;
    /// sessions end when the TCP connection drops (§3.1.1).
    SessionId,
    "s"
);
impl_u64_id!(
    /// A server-side multipart upload job (Appendix A).
    UploadId,
    "j"
);

/// A shard of the metadata store. The production cluster had 10 shards of
/// 2 servers each (§3.4); operations are routed to shards by user id.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct ShardId(pub u16);

impl ShardId {
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A physical machine in the Canonical datacenter. API/RPC processes ran on
/// 6 machines named after fruit (the paper shows `whitecurrant`).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct MachineId(pub u16);

impl MachineId {
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The fruit machine names used in trace logfile names, mirroring the
    /// paper's `production-whitecurrant-23-20140128` example.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 12] = [
            "whitecurrant",
            "blackcurrant",
            "gooseberry",
            "boysenberry",
            "cloudberry",
            "elderberry",
            "huckleberry",
            "loganberry",
            "mulberry",
            "salmonberry",
            "serviceberry",
            "thimbleberry",
        ];
        NAMES[self.0 as usize % NAMES.len()]
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An API/RPC server process. Unique within a machine (§4): "the identifier
/// of the process is unique within a machine".
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct ProcessId(pub u16);

impl ProcessId {
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The SHA-1 digest of a file's contents. U1 desktop clients send this hash
/// before uploading so the server can deduplicate at file granularity (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContentHash(pub [u8; 20]);

impl ContentHash {
    /// The hash of the empty file.
    pub const EMPTY: ContentHash = ContentHash([
        0xda, 0x39, 0xa3, 0xee, 0x5e, 0x6b, 0x4b, 0x0d, 0x32, 0x55, 0xbf, 0xef, 0x95, 0x60, 0x18,
        0x90, 0xaf, 0xd8, 0x07, 0x09,
    ]);

    pub const fn new(raw: [u8; 20]) -> Self {
        Self(raw)
    }

    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Builds a synthetic hash from a 64-bit content identity. The workload
    /// generator models content popularity with integer ids; expanding them
    /// through SHA-1 keeps hashes uniformly distributed and collision-free at
    /// simulation scale while exercising the same dedup lookup paths.
    pub fn from_content_id(id: u64) -> Self {
        crate::sha1::Sha1::digest(&id.to_be_bytes())
    }

    /// Hex encoding, as it appears in trace log lines.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(40);
        let _ = self.write_hex(&mut s);
        s
    }

    /// Writes the 40-char hex form into `out` without allocating — the
    /// per-record trace serialization path uses this on every transfer line.
    pub fn write_hex<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut buf = [0u8; 40];
        for (i, b) in self.0.iter().enumerate() {
            buf[i * 2] = HEX[(b >> 4) as usize];
            buf[i * 2 + 1] = HEX[(b & 0xf) as usize];
        }
        // The buffer is built from the hex alphabet above, so it is ASCII.
        out.write_str(std::str::from_utf8(&buf).unwrap_or("-"))
    }

    /// Parses the 40-char hex form produced by [`ContentHash::to_hex`].
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 40 || !s.is_ascii() {
            return None;
        }
        let mut raw = [0u8; 20];
        let bytes = s.as_bytes();
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            raw[i] = ((hi << 4) | lo) as u8;
        }
        Some(Self(raw))
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sha1:{}", self.to_hex())
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Whether a node is a file or a directory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    File,
    Directory,
}

impl NodeKind {
    pub fn is_file(self) -> bool {
        matches!(self, NodeKind::File)
    }
    pub fn is_dir(self) -> bool {
        matches!(self, NodeKind::Directory)
    }
}

/// The three volume kinds of §3.1.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum VolumeKind {
    /// The predefined `~/Ubuntu One` volume with id 0.
    Root,
    /// A user-defined folder (UDF).
    UserDefined,
    /// A sub-volume of another user to which this user has access.
    Shared,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(UserId::new(7).to_string(), "u7");
        assert_eq!(VolumeId::new(0).to_string(), "v0");
        assert_eq!(NodeId::new(12).to_string(), "n12");
        assert_eq!(SessionId::new(3).to_string(), "s3");
        assert_eq!(UploadId::new(9).to_string(), "j9");
        assert_eq!(ShardId::new(4).to_string(), "shard4");
    }

    #[test]
    fn machine_names_are_stable_and_cycle() {
        assert_eq!(MachineId::new(0).name(), "whitecurrant");
        assert_eq!(MachineId::new(12).name(), "whitecurrant");
        assert_ne!(MachineId::new(1).name(), MachineId::new(2).name());
    }

    #[test]
    fn content_hash_hex_round_trip() {
        let h = ContentHash::from_content_id(0xdead_beef);
        let hex = h.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(ContentHash::from_hex(&hex), Some(h));
    }

    #[test]
    fn content_hash_rejects_bad_hex() {
        assert_eq!(ContentHash::from_hex(""), None);
        assert_eq!(ContentHash::from_hex("zz"), None);
        let mut s = "0".repeat(40);
        s.replace_range(0..1, "g");
        assert_eq!(ContentHash::from_hex(&s), None);
    }

    #[test]
    fn empty_hash_matches_sha1_of_nothing() {
        assert_eq!(crate::sha1::Sha1::digest(b""), ContentHash::EMPTY);
    }

    #[test]
    fn distinct_content_ids_yield_distinct_hashes() {
        let a = ContentHash::from_content_id(1);
        let b = ContentHash::from_content_id(2);
        assert_ne!(a, b);
    }
}
