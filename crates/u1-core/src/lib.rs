//! Core vocabulary for `ubuntuone-rs`, a reproduction of the UbuntuOne (U1)
//! Personal Cloud back-end described in *"Dissecting UbuntuOne: Autopsy of a
//! Global-scale Personal Cloud Back-end"* (Gracia-Tinedo et al., IMC 2015).
//!
//! This crate holds the types shared by every other crate in the workspace:
//!
//! * strongly-typed identifiers for the protocol entities of §3.1.1 of the
//!   paper (users, volumes, nodes, sessions, contents),
//! * a pure-Rust SHA-1 implementation (U1 clients identify file contents by
//!   SHA-1 prior to upload, enabling file-level cross-user deduplication),
//! * a virtual/real [`clock`] abstraction so that the month-long measurement
//!   of the paper can be reproduced in virtual time on a laptop,
//! * the file-type taxonomy of §5.3 (categories and extensions),
//! * the file-size categories used by Fig. 2(b),
//! * deterministic RNG plumbing used across the workload generator.

pub mod clock;
pub mod error;
pub mod fault;
pub mod fxhash;
pub mod id;
pub mod intern;
pub mod op;
pub mod partition;
pub mod rngx;
pub mod sha1;
pub mod size;
pub mod taxonomy;
pub mod timing;

pub use clock::{Clock, RealClock, SimClock, SimDuration, SimTime};
pub use error::{CoreError, CoreResult};
pub use fault::{CircuitBreaker, ErrorClass, FaultInjector, FaultPlan, RetryPolicy};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use id::{
    ContentHash, MachineId, NodeId, NodeKind, ProcessId, SessionId, ShardId, UploadId, UserId,
    VolumeId, VolumeKind,
};
pub use intern::{Ext, IdArena, Name, NameArena, NameId};
pub use op::{ApiOpKind, RpcClass, RpcKind};
pub use partition::PartitionCtx;
pub use sha1::Sha1;
pub use size::{ByteSize, SizeCategory};
pub use taxonomy::FileCategory;
pub use timing::{CachePadded, Measured, Phase, PhaseNanos, PhaseTimers};
