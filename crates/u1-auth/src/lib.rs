//! The Canonical authentication service (§3.4.1) and the per-API-server
//! token cache.
//!
//! The real service was OAuth-based and shared with other Canonical
//! services: on first contact a client exchanges credentials for a token;
//! later connections present the token, the API server asks the auth
//! service to resolve it to a user id, and caches the token for the session
//! "to avoid overloading the authentication service". The paper measures
//! that 2.76% of authentication requests from API servers failed (§7.3).

use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use u1_core::{CoreError, CoreResult, SimDuration, SimTime, UserId};

/// Per-partition-origin RNG streams (see [`u1_core::partition`]).
///
/// Transient-failure rolls must come from a stream owned by the calling
/// driver partition: with one shared stream, the interleaving of concurrent
/// partitions would decide which request eats which roll, and results would
/// depend on worker count. Origin 0 (threads without a partition context)
/// keeps the legacy seed bit-for-bit; other origins derive their stream
/// from it.
struct OriginRngs {
    seed: u64,
    streams: RwLock<HashMap<u32, Arc<Mutex<SmallRng>>>>,
}

impl OriginRngs {
    fn new(seed: u64) -> Self {
        Self {
            seed,
            streams: RwLock::new(HashMap::new()),
        }
    }

    fn current(&self) -> Arc<Mutex<SmallRng>> {
        let origin = u1_core::partition::current_origin();
        if let Some(rng) = self.streams.read().get(&origin) {
            return Arc::clone(rng);
        }
        let mut streams = self.streams.write();
        Arc::clone(streams.entry(origin).or_insert_with(|| {
            let seed = if origin == 0 {
                self.seed
            } else {
                u1_core::rngx::derive_seed(self.seed, "auth-origin", origin as u64)
            };
            Arc::new(Mutex::new(SmallRng::seed_from_u64(seed)))
        }))
    }
}

/// An OAuth-style bearer token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub [u8; 16]);

impl Token {
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    pub fn from_bytes(raw: &[u8]) -> Option<Token> {
        let arr: [u8; 16] = raw.try_into().ok()?;
        Some(Token(arr))
    }
}

/// Configuration of the auth service model.
#[derive(Debug, Clone)]
pub struct AuthConfig {
    /// Fraction of validation requests that fail transiently — the paper
    /// observed 2.76% (§7.3). Failed requests are retried by clients.
    pub transient_failure_rate: f64,
    /// Token lifetime; `None` disables expiry (U1 tokens "usually do not
    /// expire automatically").
    pub token_ttl: Option<SimDuration>,
}

impl Default for AuthConfig {
    fn default() -> Self {
        Self {
            transient_failure_rate: 0.0276,
            token_ttl: None,
        }
    }
}

/// Counters mirroring Fig. 15's request series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuthStats {
    pub issued: u64,
    pub validations: u64,
    pub transient_failures: u64,
    pub rejections: u64,
}

struct TokenEntry {
    user: UserId,
    issued_at: SimTime,
}

/// The authentication service: issues and validates tokens.
pub struct AuthService {
    config: AuthConfig,
    tokens: RwLock<HashMap<Token, TokenEntry>>,
    by_user: RwLock<HashMap<UserId, Token>>,
    rng: OriginRngs,
    issued: AtomicU64,
    validations: AtomicU64,
    transient_failures: AtomicU64,
    rejections: AtomicU64,
}

impl AuthService {
    pub fn new(config: AuthConfig, seed: u64) -> Self {
        Self {
            config,
            tokens: RwLock::new(HashMap::new()),
            by_user: RwLock::new(HashMap::new()),
            rng: OriginRngs::new(seed),
            issued: AtomicU64::new(0),
            validations: AtomicU64::new(0),
            transient_failures: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }

    /// First-contact flow: exchanges (already verified) credentials for a
    /// token bound to a user id. Re-registering returns the existing token,
    /// as the desktop client stores it locally after the first login.
    pub fn register(&self, user: UserId, now: SimTime) -> Token {
        if let Some(tok) = self.by_user.read().get(&user) {
            return *tok;
        }
        let mut raw = [0u8; 16];
        self.rng.current().lock().fill(&mut raw);
        let token = Token(raw);
        self.issued.fetch_add(1, Ordering::Relaxed);
        self.tokens.write().insert(
            token,
            TokenEntry {
                user,
                issued_at: now,
            },
        );
        self.by_user.write().insert(user, token);
        token
    }

    /// `auth.get_user_id_from_token`: resolves a token, possibly failing
    /// transiently (the modeled 2.76%). Transient failures are retriable;
    /// rejections (unknown/expired token) are not.
    pub fn get_user_id_from_token(&self, token: Token, now: SimTime) -> CoreResult<UserId> {
        self.validations.fetch_add(1, Ordering::Relaxed);
        if self.config.transient_failure_rate > 0.0 {
            let roll: f64 = self.rng.current().lock().gen_range(0.0..1.0);
            if roll < self.config.transient_failure_rate {
                self.transient_failures.fetch_add(1, Ordering::Relaxed);
                return Err(CoreError::unavailable("auth service timeout"));
            }
        }
        let tokens = self.tokens.read();
        let Some(entry) = tokens.get(&token) else {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::permission_denied("unknown token"));
        };
        if let Some(ttl) = self.config.token_ttl {
            if now.since(entry.issued_at) > ttl {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                return Err(CoreError::permission_denied("expired token"));
            }
        }
        Ok(entry.user)
    }

    /// Revokes a user's token (the manual DDoS countermeasure of §5.4:
    /// engineers "deleted fraudulent users"). Returns the revoked token so
    /// callers can invalidate downstream caches — the API tier's
    /// memcached-style token cache must drop the entry too, or the banned
    /// user would keep authenticating until the cache TTL ran out.
    pub fn revoke_user(&self, user: UserId) -> Option<Token> {
        let token = self.by_user.write().remove(&user)?;
        self.tokens.write().remove(&token);
        Some(token)
    }

    pub fn stats(&self) -> AuthStats {
        AuthStats {
            issued: self.issued.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            transient_failures: self.transient_failures.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(rate: f64) -> AuthService {
        AuthService::new(
            AuthConfig {
                transient_failure_rate: rate,
                token_ttl: None,
            },
            7,
        )
    }

    #[test]
    fn register_is_idempotent_and_tokens_resolve() {
        let s = svc(0.0);
        let u = UserId::new(5);
        let t1 = s.register(u, SimTime::ZERO);
        let t2 = s.register(u, SimTime::from_secs(10));
        assert_eq!(t1, t2);
        assert_eq!(s.get_user_id_from_token(t1, SimTime::ZERO).unwrap(), u);
        assert_eq!(s.stats().issued, 1);
    }

    #[test]
    fn unknown_token_is_rejected() {
        let s = svc(0.0);
        let bogus = Token([9u8; 16]);
        assert!(matches!(
            s.get_user_id_from_token(bogus, SimTime::ZERO),
            Err(CoreError::PermissionDenied(_))
        ));
        assert_eq!(s.stats().rejections, 1);
    }

    #[test]
    fn transient_failure_rate_is_respected() {
        let s = svc(0.25);
        let t = s.register(UserId::new(1), SimTime::ZERO);
        let mut failures = 0;
        for _ in 0..4000 {
            if matches!(
                s.get_user_id_from_token(t, SimTime::ZERO),
                Err(CoreError::Unavailable(_))
            ) {
                failures += 1;
            }
        }
        let rate = failures as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
        assert_eq!(s.stats().transient_failures, failures);
    }

    #[test]
    fn ttl_expires_tokens() {
        let s = AuthService::new(
            AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: Some(SimDuration::from_hours(1)),
            },
            1,
        );
        let t = s.register(UserId::new(1), SimTime::ZERO);
        assert!(s
            .get_user_id_from_token(t, SimTime::from_secs(30 * 60))
            .is_ok());
        assert!(s.get_user_id_from_token(t, SimTime::from_hours(2)).is_err());
    }

    #[test]
    fn revocation_cuts_access() {
        let s = svc(0.0);
        let u = UserId::new(3);
        let t = s.register(u, SimTime::ZERO);
        assert_eq!(s.revoke_user(u), Some(t));
        assert_eq!(s.revoke_user(u), None);
        assert!(s.get_user_id_from_token(t, SimTime::ZERO).is_err());
    }

    #[test]
    fn distinct_users_get_distinct_tokens() {
        let s = svc(0.0);
        let t1 = s.register(UserId::new(1), SimTime::ZERO);
        let t2 = s.register(UserId::new(2), SimTime::ZERO);
        assert_ne!(t1, t2);
    }

    #[test]
    fn token_bytes_round_trip() {
        let t = Token([3u8; 16]);
        assert_eq!(Token::from_bytes(t.as_bytes()), Some(t));
        assert_eq!(Token::from_bytes(&[1, 2, 3]), None);
    }
}
