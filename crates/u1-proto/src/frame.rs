//! Length-prefixed framing.
//!
//! Every message travels in one frame. Bytes on the wire:
//!
//! ```text
//! +---------------------+--------------------------------+
//! | length: u32, BE     | body: exactly `length` bytes   |
//! | (4 bytes)           | (codec-encoded Message)        |
//! +---------------------+--------------------------------+
//! ```
//!
//! The length counts the body only (not itself) and is bounded by
//! [`MAX_FRAME_LEN`]; a larger announcement is rejected *before* any body
//! bytes are buffered, so a hostile peer cannot make the decoder allocate
//! 4GB by sending five bytes. An empty body (`length == 0`) is legal.
//!
//! The decoder is incremental — feed it arbitrary byte chunks (as they
//! arrive from a socket) and pull complete frames out — the framing
//! pattern the networking guides emphasize: never assume message
//! boundaries align with read boundaries.
//!
//! ```
//! use bytes::BytesMut;
//! use u1_proto::frame::{encode_frame, FrameDecoder};
//!
//! let mut out = BytesMut::new();
//! encode_frame(b"ping", &mut out).unwrap();
//! assert_eq!(out.as_ref(), [0, 0, 0, 4, b'p', b'i', b'n', b'g']);
//!
//! // Bytes arrive in arbitrary chunks; frames come out whole.
//! let bytes: &[u8] = out.as_ref();
//! let mut dec = FrameDecoder::new();
//! dec.extend(&bytes[..3]); // partial header
//! assert!(dec.next_frame().unwrap().is_none());
//! dec.extend(&bytes[3..]); // rest of header + body
//! assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"ping");
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Hard upper bound on a frame body. Uploads are chunked well below this
/// (the S3 part size is 5MB); anything larger is a corrupt or hostile peer.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Framing-layer errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A frame body larger than [`MAX_FRAME_LEN`] — announced by a peer on
    /// decode, or handed to [`encode_frame`] locally. Carried as `u64` so
    /// the offending size is reportable even when it exceeds `usize`.
    TooLarge(u64),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME_LEN}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps a message body in a frame, appending to `out`. Fails when the body
/// exceeds [`MAX_FRAME_LEN`] (and therefore would not round-trip through a
/// peer's decoder) or cannot be described by the 4-byte length prefix.
pub fn encode_frame(body: &[u8], out: &mut BytesMut) -> Result<(), FrameError> {
    if body.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(body.len() as u64));
    }
    let len = u32::try_from(body.len()).map_err(|_| FrameError::TooLarge(body.len() as u64))?;
    out.put_u32(len);
    out.put_slice(body);
    Ok(())
}

/// Incremental frame decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds newly received bytes.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame body, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let word = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        let len = usize::try_from(word).map_err(|_| FrameError::TooLarge(u64::from(word)))?;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge(word.into()));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_round_trip() {
        let mut out = BytesMut::new();
        encode_frame(b"hello", &mut out).expect("fits");
        let mut dec = FrameDecoder::new();
        dec.extend(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        let mut out = BytesMut::new();
        for i in 0u8..10 {
            encode_frame(&vec![i; i as usize * 7 + 1], &mut out).expect("fits");
        }
        // Feed one byte at a time — the nastiest chunking.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in out.iter() {
            dec.extend(&[*b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 10);
        for (i, frame) in got.iter().enumerate() {
            let byte = u8::try_from(i).expect("small index");
            assert_eq!(frame.as_ref(), &vec![byte; i * 7 + 1][..]);
        }
    }

    #[test]
    fn empty_frame_is_legal() {
        let mut out = BytesMut::new();
        encode_frame(b"", &mut out).expect("fits");
        let mut dec = FrameDecoder::new();
        dec.extend(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap().len(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected_before_buffering_it() {
        let mut dec = FrameDecoder::new();
        let oversized = u32::try_from(MAX_FRAME_LEN).expect("limit fits u32") + 1;
        dec.extend(&oversized.to_be_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge(MAX_FRAME_LEN as u64 + 1))
        );
    }

    #[test]
    fn partial_header_waits_for_more() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0, 0]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&[0, 3, b'a', b'b']);
        assert_eq!(dec.next_frame().unwrap(), None); // body incomplete
        dec.extend(b"c");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"abc");
    }
}
