//! Length-prefixed framing.
//!
//! Every message travels in one frame: a 4-byte big-endian length followed
//! by the message body. The decoder is incremental — feed it arbitrary byte
//! chunks (as they arrive from a socket) and pull complete frames out — the
//! framing pattern the networking guides emphasize: never assume message
//! boundaries align with read boundaries.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Hard upper bound on a frame body. Uploads are chunked well below this
/// (the S3 part size is 5MB); anything larger is a corrupt or hostile peer.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Framing-layer errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Peer announced a frame larger than [`MAX_FRAME_LEN`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME_LEN}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps a message body in a frame, appending to `out`.
pub fn encode_frame(body: &[u8], out: &mut BytesMut) {
    debug_assert!(body.len() <= MAX_FRAME_LEN);
    out.put_u32(body.len() as u32);
    out.put_slice(body);
}

/// Incremental frame decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds newly received bytes.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame body, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_round_trip() {
        let mut out = BytesMut::new();
        encode_frame(b"hello", &mut out);
        let mut dec = FrameDecoder::new();
        dec.extend(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        let mut out = BytesMut::new();
        for i in 0u8..10 {
            encode_frame(&vec![i; i as usize * 7 + 1], &mut out);
        }
        // Feed one byte at a time — the nastiest chunking.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in out.iter() {
            dec.extend(&[*b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 10);
        for (i, frame) in got.iter().enumerate() {
            assert_eq!(frame.as_ref(), &vec![i as u8; i * 7 + 1][..]);
        }
    }

    #[test]
    fn empty_frame_is_legal() {
        let mut out = BytesMut::new();
        encode_frame(b"", &mut out);
        let mut dec = FrameDecoder::new();
        dec.extend(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap().len(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected_before_buffering_it() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn partial_header_waits_for_more() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0, 0]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&[0, 3, b'a', b'b']);
        assert_eq!(dec.next_frame().unwrap(), None); // body incomplete
        dec.extend(&[b'c']);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"abc");
    }
}
