//! Nonblocking I/O building blocks for the reactor (DESIGN.md §15).
//!
//! The wire tier never blocks on a socket. Reads and writes both go through
//! the two small pieces here, which translate the `std::io` nonblocking
//! contract (`ErrorKind::WouldBlock`, short writes, zero-length reads) into
//! states a reactor can act on:
//!
//! * [`read_once`] — one `read` call, classified as bytes / would-block /
//!   peer-closed,
//! * [`SendQueue`] — an ordered queue of encoded frames with a write cursor,
//!   drained opportunistically; whatever the kernel refuses stays queued and
//!   the caller flips epoll write interest on until the queue empties.
//!
//! Both are generic over `Read`/`Write` so every partial-progress path is
//! testable with in-memory mocks (a 1-byte-capacity writer, a scripted
//! reader) instead of real sockets.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use bytes::Bytes;

/// What one nonblocking `read` call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `read` returned 0: the peer closed its sending half.
    Closed,
    /// The socket had nothing buffered (`EWOULDBLOCK`); try again on the
    /// next readiness event.
    WouldBlock,
    /// This many bytes were read into the caller's buffer.
    Bytes(usize),
}

/// Performs one `read` into `buf` and classifies the result.
///
/// `Interrupted` is retried internally (a signal is not data); every other
/// error is a dead connection and is returned as-is.
pub fn read_once(src: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    loop {
        match src.read(buf) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(n) => return Ok(ReadOutcome::Bytes(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// An ordered outbound queue of encoded frames with a partial-write cursor.
///
/// Responses and pushes are *queued*, never written inline from the dispatch
/// path; the reactor drains the queue whenever the socket reports writable.
/// `queued_bytes` is the connection's send-budget meter: admission control
/// evicts a connection whose queue outgrows its byte budget, which is what
/// turns a slow (or adversarial, §5.4) reader into bounded server-side
/// memory instead of unbounded growth.
#[derive(Debug, Default)]
pub struct SendQueue {
    frames: VecDeque<Bytes>,
    /// Bytes of `frames[0]` already written to the socket.
    offset: usize,
    /// Total unsent bytes across all queued frames (minus `offset`).
    queued: usize,
}

impl SendQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an encoded frame (length prefix included) to the queue.
    pub fn push(&mut self, frame: Bytes) {
        self.queued += frame.len();
        self.frames.push_back(frame);
    }

    /// True when nothing remains to write — the signal to drop epoll write
    /// interest.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Unsent bytes currently held; compared against the per-connection
    /// send budget.
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Writes as much queued data as the sink accepts right now.
    ///
    /// Returns the number of bytes written this call. Stops (without error)
    /// at `WouldBlock`; retries `Interrupted`; propagates anything else.
    /// Short writes leave the cursor mid-frame — the next call resumes at
    /// the exact byte where the kernel stopped.
    pub fn write_to(&mut self, dst: &mut impl Write) -> io::Result<usize> {
        let mut written = 0usize;
        while let Some(front) = self.frames.front() {
            let pending = &front.as_ref()[self.offset..];
            match dst.write(pending) {
                Ok(0) => {
                    // A zero-length write with a nonempty buffer: the sink
                    // can make no progress. Treat like WouldBlock.
                    break;
                }
                Ok(n) => {
                    written += n;
                    self.queued -= n;
                    self.offset += n;
                    if self.offset == front.len() {
                        self.frames.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, FrameDecoder};
    use bytes::BytesMut;

    /// A writer that accepts at most one byte per call, then blocks every
    /// other call — the worst-behaved socket the kernel can legally give us.
    struct TrickleWriter {
        out: Vec<u8>,
        block_next: bool,
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.block_next = true;
            let take = buf.len().min(1);
            self.out.extend_from_slice(&buf[..take]);
            Ok(take)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn frame(body: &[u8]) -> Bytes {
        let mut out = BytesMut::new();
        encode_frame(body, &mut out).expect("fits");
        out.freeze()
    }

    #[test]
    fn send_queue_survives_one_byte_writes() {
        let mut q = SendQueue::new();
        q.push(frame(b"hello"));
        q.push(frame(b"world!"));
        let total = q.queued_bytes();
        assert_eq!(total, 4 + 5 + 4 + 6);

        let mut w = TrickleWriter {
            out: Vec::new(),
            block_next: false,
        };
        let mut calls = 0;
        while !q.is_empty() {
            q.write_to(&mut w).expect("write");
            calls += 1;
            assert!(calls < 1000, "must terminate");
        }
        assert_eq!(q.queued_bytes(), 0);

        // The byte-dribbled output reassembles into the original frames.
        let mut dec = FrameDecoder::new();
        dec.extend(&w.out);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"world!");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn send_queue_reports_progress_and_blocking() {
        let mut q = SendQueue::new();
        q.push(frame(b"abc"));
        let mut w = TrickleWriter {
            out: Vec::new(),
            block_next: true, // first call blocks immediately
        };
        assert_eq!(q.write_to(&mut w).expect("ok"), 0);
        assert_eq!(q.queued_bytes(), 7);
        assert_eq!(q.write_to(&mut w).expect("ok"), 1);
        assert_eq!(q.queued_bytes(), 6);
        assert!(!q.is_empty());
    }

    #[test]
    fn send_queue_propagates_hard_errors() {
        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = SendQueue::new();
        q.push(frame(b"x"));
        let err = q.write_to(&mut BrokenPipe).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    /// A reader that yields a script of results, one per call.
    struct ScriptReader {
        script: Vec<io::Result<Vec<u8>>>,
    }

    impl Read for ScriptReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.remove(0) {
                Ok(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Err(e) => Err(e),
            }
        }
    }

    #[test]
    fn read_once_classifies_all_outcomes() {
        let mut r = ScriptReader {
            script: vec![
                Err(io::Error::new(io::ErrorKind::Interrupted, "signal")),
                Ok(vec![1, 2, 3]),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "empty")),
                Ok(vec![]),
                Err(io::Error::new(io::ErrorKind::ConnectionReset, "rst")),
            ],
        };
        let mut buf = [0u8; 16];
        // Interrupted is swallowed; the retry reads the 3 bytes.
        assert_eq!(read_once(&mut r, &mut buf).unwrap(), ReadOutcome::Bytes(3));
        assert_eq!(&buf[..3], &[1, 2, 3]);
        assert_eq!(
            read_once(&mut r, &mut buf).unwrap(),
            ReadOutcome::WouldBlock
        );
        assert_eq!(read_once(&mut r, &mut buf).unwrap(), ReadOutcome::Closed);
        let err = read_once(&mut r, &mut buf).expect_err("hard error");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    /// Frames split at *every* byte boundary of the 4-byte header (and the
    /// body) still decode — the partial-frame test the wire tier demands.
    #[test]
    fn frames_decode_across_every_split_point() {
        let body = b"partial-frame-body";
        let encoded = frame(body);
        let encoded: &[u8] = encoded.as_ref();
        for split in 0..encoded.len() {
            let mut dec = FrameDecoder::new();
            dec.extend(&encoded[..split]);
            assert_eq!(
                dec.next_frame().expect("no error on partial input"),
                None,
                "split at byte {split} must not yield a frame early"
            );
            dec.extend(&encoded[split..]);
            assert_eq!(
                dec.next_frame().expect("decode").expect("frame").as_ref(),
                body,
                "split at byte {split}"
            );
        }
    }
}
