//! Blocking TCP plumbing for the live mode.
//!
//! The threaded transport the guides recommend when an async runtime is not
//! in play: one reader per connection, writes serialized by a mutex at the
//! caller. This module only moves frames; all protocol logic lives in the
//! sans-io [`conn`](crate::conn) state machines.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Reads whatever bytes are available (blocking for at least one), appending
/// them to `buf`. Returns the number of bytes read; `Ok(0)` means EOF.
pub fn read_some(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
    stream.read(buf)
}

/// Writes an entire frame, handling short writes.
pub fn write_all(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    stream.write_all(data)?;
    Ok(())
}

/// Applies the socket options U1-style long-lived sessions want: no Nagle
/// delay (interactive request/response) — the client holds one TCP
/// connection open for the whole session precisely to avoid reconnect
/// overhead (§3.3 footnote 3).
pub fn configure(stream: &TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::{ClientConn, ServerConn, ServerEvent};
    use crate::msg::{Request, Response};
    use std::net::TcpListener;
    use std::thread;

    /// End-to-end over a real socket: client pings, server pongs.
    #[test]
    fn ping_pong_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let server_thread = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            configure(&stream).unwrap();
            let mut conn = ServerConn::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = read_some(&mut stream, &mut buf).unwrap();
                if n == 0 {
                    return;
                }
                for ev in conn.on_bytes(&buf[..n]).unwrap() {
                    match ev {
                        ServerEvent::Request {
                            id,
                            req: Request::Ping,
                        } => {
                            let pong = conn.respond(id, Response::Pong).unwrap();
                            write_all(&mut stream, &pong).unwrap();
                        }
                        other => panic!("unexpected event {other:?}"),
                    }
                }
            }
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        configure(&stream).unwrap();
        let mut conn = ClientConn::new();
        let (id, bytes) = conn.request(Request::Ping).unwrap();
        write_all(&mut stream, &bytes).unwrap();
        let mut buf = [0u8; 4096];
        let mut got_pong = false;
        while !got_pong {
            let n = read_some(&mut stream, &mut buf).unwrap();
            assert_ne!(n, 0, "server closed early");
            for ev in conn.on_bytes(&buf[..n]).unwrap() {
                match ev {
                    crate::conn::ClientEvent::Response {
                        id: got,
                        resp: Response::Pong,
                    } => {
                        assert_eq!(got, id);
                        got_pong = true;
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
        drop(stream);
        server_thread.join().unwrap();
    }
}
