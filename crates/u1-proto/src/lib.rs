//! The U1 storage protocol (`ubuntuone-storageprotocol`, §3.1).
//!
//! The real protocol ran Google Protocol Buffers messages over a persistent
//! TCP connection; clients authenticate once per session with an OAuth token
//! and then issue operations (Table 2), while the server can push
//! unsolicited notifications over the same connection (§3.4.2).
//!
//! This crate implements the protocol in layers, following the sans-io
//! discipline of the networking guides (the codec and the connection state
//! machine are pure and testable without sockets):
//!
//! * [`wire`] — varint/length-delimited primitives over [`bytes`] buffers
//!   (a compact protobuf-like encoding implemented from scratch),
//! * [`msg`] + [`codec`] — the message set (every Table 2 operation, content
//!   transfer chunking, push notifications) and its binary codec,
//! * [`frame`] — length-prefixed framing with incremental decoding and a
//!   maximum-frame-size guard,
//! * [`conn`] — client/server connection state machines (handshake,
//!   request/response correlation, in-flight upload bookkeeping),
//! * [`nio`] — nonblocking read/write helpers ([`SendQueue`] with a
//!   partial-write cursor, [`nio::read_once`]) for the epoll reactor,
//! * [`tcp`] — a small blocking transport binding frames to `std::net`.

pub mod codec;
pub mod conn;
pub mod frame;
pub mod msg;
pub mod nio;
pub mod tcp;
pub mod wire;

pub use conn::{ClientConn, ConnError, ServerConn, ServerEvent};
pub use frame::{FrameDecoder, FrameError, MAX_FRAME_LEN};
pub use msg::{Message, NodeInfo, Push, Request, RequestId, Response, VolumeInfo};
pub use nio::{ReadOutcome, SendQueue};
pub use wire::{WireError as ProtoError, WireResult as ProtoResult};
