//! Sans-io connection state machines for both ends of a U1 session.
//!
//! Neither type touches a socket: bytes go in via `on_bytes`, frames to
//! write come out as [`bytes::Bytes`]. This keeps the protocol logic —
//! request/response correlation, authentication gating, stream bookkeeping —
//! fully unit-testable, and lets the same state machines drive the real TCP
//! transport ([`crate::tcp`]), the epoll reactor
//! (`u1_server::tcpserver`), and the virtual-time simulation.
//!
//! A full exchange, with the "socket" replaced by byte slices:
//!
//! ```
//! use u1_proto::conn::{ClientConn, ClientEvent, ServerConn, ServerEvent};
//! use u1_proto::msg::{Request, Response};
//!
//! let mut client = ClientConn::new();
//! let mut server = ServerConn::new();
//!
//! // Client side: encode a request; `bytes` is what you would write().
//! let (id, bytes) = client.request(Request::Ping).unwrap();
//!
//! // Server side: feed whatever arrived; complete requests pop out.
//! // (`Ping` is allowed before authentication; data ops are not.)
//! let events = server.on_bytes(&bytes).unwrap();
//! assert_eq!(events, vec![ServerEvent::Request { id, req: Request::Ping }]);
//!
//! // Server answers; `reply` is what the reactor queues on its send queue.
//! let reply = server.respond(id, Response::Pong).unwrap();
//! let events = client.on_bytes(&reply).unwrap();
//! assert_eq!(events, vec![ClientEvent::Response { id, resp: Response::Pong }]);
//! ```

use crate::codec;
use crate::frame::{encode_frame, FrameDecoder, FrameError};
use crate::msg::{Message, Push, Request, RequestId, Response};
use crate::wire::WireError;
use bytes::{Bytes, BytesMut};
use std::collections::HashSet;
use u1_core::{SessionId, UserId};

/// Errors surfaced by either state machine. All of them are fatal for the
/// connection: the U1 session dies with its TCP connection (§3.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    Frame(FrameError),
    Wire(WireError),
    /// Peer violated protocol sequencing.
    Protocol(&'static str),
}

impl From<FrameError> for ConnError {
    fn from(e: FrameError) -> Self {
        ConnError::Frame(e)
    }
}

impl From<WireError> for ConnError {
    fn from(e: WireError) -> Self {
        ConnError::Wire(e)
    }
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Frame(e) => write!(f, "framing: {e}"),
            ConnError::Wire(e) => write!(f, "wire: {e}"),
            ConnError::Protocol(s) => write!(f, "protocol: {s}"),
        }
    }
}

impl std::error::Error for ConnError {}

/// What a client observes from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A response to one of our outstanding requests.
    Response { id: RequestId, resp: Response },
    /// An unsolicited push notification.
    Push(Push),
}

/// Client half of a connection.
#[derive(Debug, Default)]
pub struct ClientConn {
    decoder: FrameDecoder,
    next_id: RequestId,
    /// Requests sent and not yet finally answered.
    pending: HashSet<RequestId>,
    session: Option<(SessionId, UserId)>,
}

impl ClientConn {
    pub fn new() -> Self {
        Self::default()
    }

    /// The authenticated identity, once `AuthOk` has been observed.
    pub fn session(&self) -> Option<(SessionId, UserId)> {
        self.session
    }

    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Encodes a request into a framed byte block ready to write, returning
    /// the assigned request id. Fails (without marking the request pending)
    /// when the encoded body exceeds the frame limit.
    pub fn request(&mut self, req: Request) -> Result<(RequestId, Bytes), ConnError> {
        self.next_id = self.next_id.wrapping_add(1);
        let id = self.next_id;
        let mut body = BytesMut::new();
        codec::encode(&Message::Request { id, req }, &mut body);
        let mut framed = BytesMut::with_capacity(body.len() + 4);
        encode_frame(&body, &mut framed)?;
        self.pending.insert(id);
        Ok((id, framed.freeze()))
    }

    /// Feeds received bytes; returns the complete events they produced.
    pub fn on_bytes(&mut self, data: &[u8]) -> Result<Vec<ClientEvent>, ConnError> {
        self.decoder.extend(data);
        let mut events = Vec::new();
        while let Some(frame) = self.decoder.next_frame()? {
            match codec::decode(&frame)? {
                Message::Response { id, resp } => {
                    if !self.pending.contains(&id) {
                        return Err(ConnError::Protocol("response to unknown request id"));
                    }
                    if let Response::AuthOk { session, user } = &resp {
                        self.session = Some((*session, *user));
                    }
                    if resp.is_final() {
                        self.pending.remove(&id);
                    }
                    events.push(ClientEvent::Response { id, resp });
                }
                Message::Push(push) => events.push(ClientEvent::Push(push)),
                Message::Request { .. } => {
                    return Err(ConnError::Protocol("server sent a request"));
                }
            }
        }
        Ok(events)
    }
}

/// What a server observes from a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// A well-formed, sequencing-legal request.
    Request { id: RequestId, req: Request },
    /// The client issued an operation before authenticating. The server
    /// should send the provided error response and close the connection.
    Unauthenticated { id: RequestId },
}

/// Server half of a connection.
#[derive(Debug, Default)]
pub struct ServerConn {
    decoder: FrameDecoder,
    session: Option<(SessionId, UserId)>,
}

impl ServerConn {
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the connection authenticated. Called by the API server after a
    /// successful token check (§3.4.1).
    pub fn mark_authenticated(&mut self, session: SessionId, user: UserId) {
        self.session = Some((session, user));
    }

    pub fn session(&self) -> Option<(SessionId, UserId)> {
        self.session
    }

    /// Feeds received bytes; returns the requests they contained.
    pub fn on_bytes(&mut self, data: &[u8]) -> Result<Vec<ServerEvent>, ConnError> {
        self.decoder.extend(data);
        let mut events = Vec::new();
        while let Some(frame) = self.decoder.next_frame()? {
            match codec::decode(&frame)? {
                Message::Request { id, req } => {
                    if self.session.is_none() && !req.allowed_unauthenticated() {
                        events.push(ServerEvent::Unauthenticated { id });
                    } else {
                        events.push(ServerEvent::Request { id, req });
                    }
                }
                Message::Response { .. } => {
                    return Err(ConnError::Protocol("client sent a response"));
                }
                Message::Push(_) => {
                    return Err(ConnError::Protocol("client sent a push"));
                }
            }
        }
        Ok(events)
    }

    /// Frames a response for writing. Fails when the encoded body exceeds
    /// the frame limit (e.g. an oversized `ContentChunk`).
    pub fn respond(&self, id: RequestId, resp: Response) -> Result<Bytes, ConnError> {
        let mut body = BytesMut::new();
        codec::encode(&Message::Response { id, resp }, &mut body);
        let mut framed = BytesMut::with_capacity(body.len() + 4);
        encode_frame(&body, &mut framed)?;
        Ok(framed.freeze())
    }

    /// Frames a push notification for writing. Fails when the encoded body
    /// exceeds the frame limit.
    pub fn push(&self, push: Push) -> Result<Bytes, ConnError> {
        let mut body = BytesMut::new();
        codec::encode(&Message::Push(push), &mut body);
        let mut framed = BytesMut::with_capacity(body.len() + 4);
        encode_frame(&body, &mut framed)?;
        Ok(framed.freeze())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use u1_core::VolumeId;

    /// Pipes client request bytes into a server conn and vice versa,
    /// asserting the full handshake sequencing.
    #[test]
    fn handshake_then_request_flow() {
        let mut client = ClientConn::new();
        let mut server = ServerConn::new();

        // Pre-auth data op is flagged, not crashed.
        let (bad_id, bytes) = client.request(Request::ListVolumes).expect("encode");
        let evs = server.on_bytes(&bytes).unwrap();
        assert_eq!(evs, vec![ServerEvent::Unauthenticated { id: bad_id }]);

        // Authenticate.
        let (auth_id, bytes) = client
            .request(Request::Authenticate { token: vec![7] })
            .expect("encode");
        let evs = server.on_bytes(&bytes).unwrap();
        assert!(
            matches!(&evs[0], ServerEvent::Request { id, req: Request::Authenticate { token } }
                if *id == auth_id && token == &vec![7])
        );
        server.mark_authenticated(SessionId::new(5), UserId::new(9));
        let resp_bytes = server
            .respond(
                auth_id,
                Response::AuthOk {
                    session: SessionId::new(5),
                    user: UserId::new(9),
                },
            )
            .expect("encode");
        let evs = client.on_bytes(&resp_bytes).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(client.session(), Some((SessionId::new(5), UserId::new(9))));
        assert_eq!(client.pending_count(), 1); // the flagged ListVolumes never got a reply

        // Now data ops pass.
        let (id, bytes) = client.request(Request::ListVolumes).expect("encode");
        let evs = server.on_bytes(&bytes).unwrap();
        assert!(matches!(
            &evs[0],
            ServerEvent::Request {
                id: got,
                req: Request::ListVolumes
            } if *got == id
        ));
    }

    #[test]
    fn content_stream_keeps_request_pending_until_end() {
        let mut client = ClientConn::new();
        let mut server = ServerConn::new();
        server.mark_authenticated(SessionId::new(1), UserId::new(1));
        let (id, _bytes) = client
            .request(Request::GetContent {
                volume: VolumeId::new(0),
                node: u1_core::NodeId::new(1),
            })
            .expect("encode");
        let h = u1_core::ContentHash::EMPTY;
        client
            .on_bytes(
                &server
                    .respond(id, Response::ContentBegin { size: 3, hash: h })
                    .expect("encode"),
            )
            .unwrap();
        assert_eq!(client.pending_count(), 1);
        client
            .on_bytes(
                &server
                    .respond(
                        id,
                        Response::ContentChunk {
                            data: vec![1, 2, 3],
                        },
                    )
                    .expect("encode"),
            )
            .unwrap();
        assert_eq!(client.pending_count(), 1);
        client
            .on_bytes(&server.respond(id, Response::ContentEnd).expect("encode"))
            .unwrap();
        assert_eq!(client.pending_count(), 0);
    }

    #[test]
    fn response_to_unknown_id_is_fatal() {
        let mut client = ClientConn::new();
        let server = ServerConn::new();
        let bytes = server.respond(42, Response::Ok).expect("encode");
        assert_eq!(
            client.on_bytes(&bytes),
            Err(ConnError::Protocol("response to unknown request id"))
        );
    }

    #[test]
    fn direction_violations_are_fatal() {
        // Server receiving a response.
        let mut server = ServerConn::new();
        let other_server = ServerConn::new();
        let bytes = other_server.respond(1, Response::Ok).expect("encode");
        assert!(matches!(
            server.on_bytes(&bytes),
            Err(ConnError::Protocol(_))
        ));
        // Client receiving a request.
        let mut client = ClientConn::new();
        let mut peer = ClientConn::new();
        let (_, bytes) = peer.request(Request::Ping).expect("encode");
        assert!(matches!(
            client.on_bytes(&bytes),
            Err(ConnError::Protocol(_))
        ));
    }

    #[test]
    fn pushes_are_delivered_without_pending_request() {
        let mut client = ClientConn::new();
        let server = ServerConn::new();
        let bytes = server
            .push(Push::VolumeChanged {
                volume: VolumeId::new(3),
                generation: 12,
            })
            .expect("encode");
        let evs = client.on_bytes(&bytes).unwrap();
        assert_eq!(
            evs,
            vec![ClientEvent::Push(Push::VolumeChanged {
                volume: VolumeId::new(3),
                generation: 12
            })]
        );
    }

    #[test]
    fn byte_by_byte_delivery_works() {
        let mut client = ClientConn::new();
        let mut server = ServerConn::new();
        server.mark_authenticated(SessionId::new(1), UserId::new(1));
        let (id, bytes) = client.request(Request::Ping).expect("encode");
        let mut evs = Vec::new();
        for b in bytes.iter() {
            evs.extend(server.on_bytes(&[*b]).unwrap());
        }
        assert_eq!(
            evs,
            vec![ServerEvent::Request {
                id,
                req: Request::Ping
            }]
        );
    }
}
