//! Binary codec for [`Message`].
//!
//! Layout: one kind byte (request/response/push), a varint request id where
//! applicable, one variant tag byte, then the variant's fields using the
//! [`crate::wire`] primitives. Unknown tags decode to
//! [`WireError::BadDiscriminant`] rather than panicking.

use crate::msg::{Message, NodeInfo, Push, Request, Response, VolumeInfo};
use crate::wire::{self, WireError, WireResult};
use bytes::{Buf, BufMut, BytesMut};
use u1_core::{NodeId, NodeKind, SessionId, UploadId, UserId, VolumeId, VolumeKind};

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_PUSH: u8 = 3;

fn put_volume_kind(buf: &mut impl BufMut, k: VolumeKind) {
    buf.put_u8(match k {
        VolumeKind::Root => 0,
        VolumeKind::UserDefined => 1,
        VolumeKind::Shared => 2,
    });
}

fn get_volume_kind(buf: &mut impl Buf) -> WireResult<VolumeKind> {
    match wire::get_u8(buf)? {
        0 => Ok(VolumeKind::Root),
        1 => Ok(VolumeKind::UserDefined),
        2 => Ok(VolumeKind::Shared),
        d => Err(WireError::BadDiscriminant(d)),
    }
}

fn put_node_kind(buf: &mut impl BufMut, k: NodeKind) {
    buf.put_u8(match k {
        NodeKind::File => 0,
        NodeKind::Directory => 1,
    });
}

fn get_node_kind(buf: &mut impl Buf) -> WireResult<NodeKind> {
    match wire::get_u8(buf)? {
        0 => Ok(NodeKind::File),
        1 => Ok(NodeKind::Directory),
        d => Err(WireError::BadDiscriminant(d)),
    }
}

fn put_opt_hash(buf: &mut impl BufMut, h: &Option<u1_core::ContentHash>) {
    match h {
        None => buf.put_u8(0),
        Some(h) => {
            buf.put_u8(1);
            wire::put_hash(buf, h);
        }
    }
}

fn get_opt_hash(buf: &mut impl Buf) -> WireResult<Option<u1_core::ContentHash>> {
    match wire::get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(wire::get_hash(buf)?)),
        d => Err(WireError::BadDiscriminant(d)),
    }
}

fn put_volume_info(buf: &mut impl BufMut, v: &VolumeInfo) {
    wire::put_uvarint(buf, v.volume.raw());
    put_volume_kind(buf, v.kind);
    wire::put_uvarint(buf, v.generation);
    wire::put_opt_uvarint(buf, v.owner.map(|u| u.raw()));
    wire::put_uvarint(buf, v.node_count);
}

fn get_volume_info(buf: &mut impl Buf) -> WireResult<VolumeInfo> {
    Ok(VolumeInfo {
        volume: VolumeId::new(wire::get_uvarint(buf)?),
        kind: get_volume_kind(buf)?,
        generation: wire::get_uvarint(buf)?,
        owner: wire::get_opt_uvarint(buf)?.map(UserId::new),
        node_count: wire::get_uvarint(buf)?,
    })
}

fn put_node_info(buf: &mut impl BufMut, n: &NodeInfo) {
    wire::put_uvarint(buf, n.node.raw());
    put_node_kind(buf, n.kind);
    wire::put_opt_uvarint(buf, n.parent.map(|p| p.raw()));
    wire::put_str(buf, &n.name);
    wire::put_uvarint(buf, n.size);
    put_opt_hash(buf, &n.hash);
    wire::put_uvarint(buf, n.generation);
    buf.put_u8(u8::from(n.is_dead));
}

fn get_node_info(buf: &mut impl Buf) -> WireResult<NodeInfo> {
    Ok(NodeInfo {
        node: NodeId::new(wire::get_uvarint(buf)?),
        kind: get_node_kind(buf)?,
        parent: wire::get_opt_uvarint(buf)?.map(NodeId::new),
        name: wire::get_str(buf)?.into(),
        size: wire::get_uvarint(buf)?,
        hash: get_opt_hash(buf)?,
        generation: wire::get_uvarint(buf)?,
        is_dead: match wire::get_u8(buf)? {
            0 => false,
            1 => true,
            d => return Err(WireError::BadDiscriminant(d)),
        },
    })
}

mod req_tag {
    pub const AUTHENTICATE: u8 = 1;
    pub const QUERY_SET_CAPS: u8 = 2;
    pub const LIST_VOLUMES: u8 = 3;
    pub const LIST_SHARES: u8 = 4;
    pub const CREATE_UDF: u8 = 5;
    pub const DELETE_VOLUME: u8 = 6;
    pub const MAKE_FILE: u8 = 7;
    pub const MAKE_DIR: u8 = 8;
    pub const UNLINK: u8 = 9;
    pub const MOVE: u8 = 10;
    pub const GET_DELTA: u8 = 11;
    pub const RESCAN: u8 = 12;
    pub const BEGIN_UPLOAD: u8 = 13;
    pub const UPLOAD_CHUNK: u8 = 14;
    pub const COMMIT_UPLOAD: u8 = 15;
    pub const CANCEL_UPLOAD: u8 = 16;
    pub const GET_CONTENT: u8 = 17;
    pub const PING: u8 = 18;
    pub const UPLOAD_CHUNK_SPARSE: u8 = 19;
    pub const BYE: u8 = 20;
}

fn put_request(buf: &mut impl BufMut, req: &Request) {
    use req_tag::*;
    match req {
        Request::Authenticate { token } => {
            buf.put_u8(AUTHENTICATE);
            wire::put_bytes(buf, token);
        }
        Request::QuerySetCaps { caps } => {
            buf.put_u8(QUERY_SET_CAPS);
            wire::put_uvarint(buf, caps.len() as u64);
            for c in caps {
                wire::put_str(buf, c);
            }
        }
        Request::ListVolumes => buf.put_u8(LIST_VOLUMES),
        Request::ListShares => buf.put_u8(LIST_SHARES),
        Request::CreateUdf { name } => {
            buf.put_u8(CREATE_UDF);
            wire::put_str(buf, name);
        }
        Request::DeleteVolume { volume } => {
            buf.put_u8(DELETE_VOLUME);
            wire::put_uvarint(buf, volume.raw());
        }
        Request::MakeFile {
            volume,
            parent,
            name,
        } => {
            buf.put_u8(MAKE_FILE);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, parent.raw());
            wire::put_str(buf, name);
        }
        Request::MakeDir {
            volume,
            parent,
            name,
        } => {
            buf.put_u8(MAKE_DIR);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, parent.raw());
            wire::put_str(buf, name);
        }
        Request::Unlink { volume, node } => {
            buf.put_u8(UNLINK);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, node.raw());
        }
        Request::Move {
            volume,
            node,
            new_parent,
            new_name,
        } => {
            buf.put_u8(MOVE);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, node.raw());
            wire::put_uvarint(buf, new_parent.raw());
            wire::put_str(buf, new_name);
        }
        Request::GetDelta {
            volume,
            from_generation,
        } => {
            buf.put_u8(GET_DELTA);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, *from_generation);
        }
        Request::RescanFromScratch { volume } => {
            buf.put_u8(RESCAN);
            wire::put_uvarint(buf, volume.raw());
        }
        Request::BeginUpload {
            volume,
            node,
            hash,
            size,
        } => {
            buf.put_u8(BEGIN_UPLOAD);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, node.raw());
            wire::put_hash(buf, hash);
            wire::put_uvarint(buf, *size);
        }
        Request::UploadChunk { upload, data } => {
            buf.put_u8(UPLOAD_CHUNK);
            wire::put_uvarint(buf, upload.raw());
            wire::put_bytes(buf, data);
        }
        Request::UploadChunkSparse { upload, len } => {
            buf.put_u8(UPLOAD_CHUNK_SPARSE);
            wire::put_uvarint(buf, upload.raw());
            wire::put_uvarint(buf, *len);
        }
        Request::CommitUpload { upload } => {
            buf.put_u8(COMMIT_UPLOAD);
            wire::put_uvarint(buf, upload.raw());
        }
        Request::CancelUpload { upload } => {
            buf.put_u8(CANCEL_UPLOAD);
            wire::put_uvarint(buf, upload.raw());
        }
        Request::GetContent { volume, node } => {
            buf.put_u8(GET_CONTENT);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, node.raw());
        }
        Request::Ping => buf.put_u8(PING),
        Request::Bye => buf.put_u8(BYE),
    }
}

fn get_request(buf: &mut impl Buf) -> WireResult<Request> {
    use req_tag::*;
    Ok(match wire::get_u8(buf)? {
        AUTHENTICATE => Request::Authenticate {
            token: wire::get_bytes(buf)?,
        },
        QUERY_SET_CAPS => {
            let n = wire::get_uvarint_len(buf)?;
            if n > 1024 {
                return Err(WireError::BadLength);
            }
            let mut caps = Vec::with_capacity(n);
            for _ in 0..n {
                caps.push(wire::get_str(buf)?);
            }
            Request::QuerySetCaps { caps }
        }
        LIST_VOLUMES => Request::ListVolumes,
        LIST_SHARES => Request::ListShares,
        CREATE_UDF => Request::CreateUdf {
            name: wire::get_str(buf)?,
        },
        DELETE_VOLUME => Request::DeleteVolume {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
        },
        MAKE_FILE => Request::MakeFile {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            parent: NodeId::new(wire::get_uvarint(buf)?),
            name: wire::get_str(buf)?,
        },
        MAKE_DIR => Request::MakeDir {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            parent: NodeId::new(wire::get_uvarint(buf)?),
            name: wire::get_str(buf)?,
        },
        UNLINK => Request::Unlink {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            node: NodeId::new(wire::get_uvarint(buf)?),
        },
        MOVE => Request::Move {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            node: NodeId::new(wire::get_uvarint(buf)?),
            new_parent: NodeId::new(wire::get_uvarint(buf)?),
            new_name: wire::get_str(buf)?,
        },
        GET_DELTA => Request::GetDelta {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            from_generation: wire::get_uvarint(buf)?,
        },
        RESCAN => Request::RescanFromScratch {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
        },
        BEGIN_UPLOAD => Request::BeginUpload {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            node: NodeId::new(wire::get_uvarint(buf)?),
            hash: wire::get_hash(buf)?,
            size: wire::get_uvarint(buf)?,
        },
        UPLOAD_CHUNK => Request::UploadChunk {
            upload: UploadId::new(wire::get_uvarint(buf)?),
            data: wire::get_bytes(buf)?,
        },
        UPLOAD_CHUNK_SPARSE => Request::UploadChunkSparse {
            upload: UploadId::new(wire::get_uvarint(buf)?),
            len: wire::get_uvarint(buf)?,
        },
        COMMIT_UPLOAD => Request::CommitUpload {
            upload: UploadId::new(wire::get_uvarint(buf)?),
        },
        CANCEL_UPLOAD => Request::CancelUpload {
            upload: UploadId::new(wire::get_uvarint(buf)?),
        },
        GET_CONTENT => Request::GetContent {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            node: NodeId::new(wire::get_uvarint(buf)?),
        },
        PING => Request::Ping,
        BYE => Request::Bye,
        d => return Err(WireError::BadDiscriminant(d)),
    })
}

mod resp_tag {
    pub const OK: u8 = 1;
    pub const ERROR: u8 = 2;
    pub const AUTH_OK: u8 = 3;
    pub const CAPABILITIES: u8 = 4;
    pub const VOLUMES: u8 = 5;
    pub const VOLUME_CREATED: u8 = 6;
    pub const NODE_CREATED: u8 = 7;
    pub const DELTA: u8 = 8;
    pub const UPLOAD_BEGUN: u8 = 9;
    pub const UPLOAD_DONE: u8 = 10;
    pub const CONTENT_BEGIN: u8 = 11;
    pub const CONTENT_CHUNK: u8 = 12;
    pub const CONTENT_END: u8 = 13;
    pub const PONG: u8 = 14;
}

fn put_response(buf: &mut impl BufMut, resp: &Response) {
    use resp_tag::*;
    match resp {
        Response::Ok => buf.put_u8(OK),
        Response::Error { code, message } => {
            buf.put_u8(ERROR);
            wire::put_str(buf, code);
            wire::put_str(buf, message);
        }
        Response::AuthOk { session, user } => {
            buf.put_u8(AUTH_OK);
            wire::put_uvarint(buf, session.raw());
            wire::put_uvarint(buf, user.raw());
        }
        Response::Capabilities { accepted } => {
            buf.put_u8(CAPABILITIES);
            wire::put_uvarint(buf, accepted.len() as u64);
            for c in accepted {
                wire::put_str(buf, c);
            }
        }
        Response::Volumes { volumes } => {
            buf.put_u8(VOLUMES);
            wire::put_uvarint(buf, volumes.len() as u64);
            for v in volumes {
                put_volume_info(buf, v);
            }
        }
        Response::VolumeCreated { volume, generation } => {
            buf.put_u8(VOLUME_CREATED);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, *generation);
        }
        Response::NodeCreated { node, generation } => {
            buf.put_u8(NODE_CREATED);
            wire::put_uvarint(buf, node.raw());
            wire::put_uvarint(buf, *generation);
        }
        Response::Delta {
            volume,
            generation,
            nodes,
        } => {
            buf.put_u8(DELTA);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, *generation);
            wire::put_uvarint(buf, nodes.len() as u64);
            for n in nodes {
                put_node_info(buf, n);
            }
        }
        Response::UploadBegun { upload, reusable } => {
            buf.put_u8(UPLOAD_BEGUN);
            wire::put_uvarint(buf, upload.raw());
            buf.put_u8(u8::from(*reusable));
        }
        Response::UploadDone {
            node,
            generation,
            hash,
        } => {
            buf.put_u8(UPLOAD_DONE);
            wire::put_uvarint(buf, node.raw());
            wire::put_uvarint(buf, *generation);
            wire::put_hash(buf, hash);
        }
        Response::ContentBegin { size, hash } => {
            buf.put_u8(CONTENT_BEGIN);
            wire::put_uvarint(buf, *size);
            wire::put_hash(buf, hash);
        }
        Response::ContentChunk { data } => {
            buf.put_u8(CONTENT_CHUNK);
            wire::put_bytes(buf, data);
        }
        Response::ContentEnd => buf.put_u8(CONTENT_END),
        Response::Pong => buf.put_u8(PONG),
    }
}

fn get_response(buf: &mut impl Buf) -> WireResult<Response> {
    use resp_tag::*;
    Ok(match wire::get_u8(buf)? {
        OK => Response::Ok,
        ERROR => Response::Error {
            code: wire::get_str(buf)?,
            message: wire::get_str(buf)?,
        },
        AUTH_OK => Response::AuthOk {
            session: SessionId::new(wire::get_uvarint(buf)?),
            user: UserId::new(wire::get_uvarint(buf)?),
        },
        CAPABILITIES => {
            let n = wire::get_uvarint_len(buf)?;
            if n > 1024 {
                return Err(WireError::BadLength);
            }
            let mut accepted = Vec::with_capacity(n);
            for _ in 0..n {
                accepted.push(wire::get_str(buf)?);
            }
            Response::Capabilities { accepted }
        }
        VOLUMES => {
            let n = wire::get_uvarint_len(buf)?;
            if n > 1_000_000 {
                return Err(WireError::BadLength);
            }
            let mut volumes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                volumes.push(get_volume_info(buf)?);
            }
            Response::Volumes { volumes }
        }
        VOLUME_CREATED => Response::VolumeCreated {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            generation: wire::get_uvarint(buf)?,
        },
        NODE_CREATED => Response::NodeCreated {
            node: NodeId::new(wire::get_uvarint(buf)?),
            generation: wire::get_uvarint(buf)?,
        },
        DELTA => {
            let volume = VolumeId::new(wire::get_uvarint(buf)?);
            let generation = wire::get_uvarint(buf)?;
            let n = wire::get_uvarint_len(buf)?;
            if n > 10_000_000 {
                return Err(WireError::BadLength);
            }
            let mut nodes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                nodes.push(get_node_info(buf)?);
            }
            Response::Delta {
                volume,
                generation,
                nodes,
            }
        }
        UPLOAD_BEGUN => Response::UploadBegun {
            upload: UploadId::new(wire::get_uvarint(buf)?),
            reusable: match wire::get_u8(buf)? {
                0 => false,
                1 => true,
                d => return Err(WireError::BadDiscriminant(d)),
            },
        },
        UPLOAD_DONE => Response::UploadDone {
            node: NodeId::new(wire::get_uvarint(buf)?),
            generation: wire::get_uvarint(buf)?,
            hash: wire::get_hash(buf)?,
        },
        CONTENT_BEGIN => Response::ContentBegin {
            size: wire::get_uvarint(buf)?,
            hash: wire::get_hash(buf)?,
        },
        CONTENT_CHUNK => Response::ContentChunk {
            data: wire::get_bytes(buf)?,
        },
        CONTENT_END => Response::ContentEnd,
        PONG => Response::Pong,
        d => return Err(WireError::BadDiscriminant(d)),
    })
}

mod push_tag {
    pub const VOLUME_CHANGED: u8 = 1;
    pub const VOLUME_CREATED: u8 = 2;
    pub const VOLUME_DELETED: u8 = 3;
}

fn put_push(buf: &mut impl BufMut, push: &Push) {
    use push_tag::*;
    match push {
        Push::VolumeChanged { volume, generation } => {
            buf.put_u8(VOLUME_CHANGED);
            wire::put_uvarint(buf, volume.raw());
            wire::put_uvarint(buf, *generation);
        }
        Push::VolumeCreated { volume, kind } => {
            buf.put_u8(VOLUME_CREATED);
            wire::put_uvarint(buf, volume.raw());
            put_volume_kind(buf, *kind);
        }
        Push::VolumeDeleted { volume } => {
            buf.put_u8(VOLUME_DELETED);
            wire::put_uvarint(buf, volume.raw());
        }
    }
}

fn get_push(buf: &mut impl Buf) -> WireResult<Push> {
    use push_tag::*;
    Ok(match wire::get_u8(buf)? {
        VOLUME_CHANGED => Push::VolumeChanged {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            generation: wire::get_uvarint(buf)?,
        },
        VOLUME_CREATED => Push::VolumeCreated {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
            kind: get_volume_kind(buf)?,
        },
        VOLUME_DELETED => Push::VolumeDeleted {
            volume: VolumeId::new(wire::get_uvarint(buf)?),
        },
        d => return Err(WireError::BadDiscriminant(d)),
    })
}

/// Encodes a message into `buf`.
pub fn encode(msg: &Message, buf: &mut BytesMut) {
    match msg {
        Message::Request { id, req } => {
            buf.put_u8(KIND_REQUEST);
            wire::put_uvarint(buf, *id as u64);
            put_request(buf, req);
        }
        Message::Response { id, resp } => {
            buf.put_u8(KIND_RESPONSE);
            wire::put_uvarint(buf, *id as u64);
            put_response(buf, resp);
        }
        Message::Push(push) => {
            buf.put_u8(KIND_PUSH);
            put_push(buf, push);
        }
    }
}

/// Decodes one message from a complete frame body. Trailing bytes are an
/// error — frames carry exactly one message.
pub fn decode(mut body: &[u8]) -> WireResult<Message> {
    let msg = match wire::get_u8(&mut body)? {
        KIND_REQUEST => {
            let id = wire::get_uvarint_u32(&mut body)?;
            Message::Request {
                id,
                req: get_request(&mut body)?,
            }
        }
        KIND_RESPONSE => {
            let id = wire::get_uvarint_u32(&mut body)?;
            Message::Response {
                id,
                resp: get_response(&mut body)?,
            }
        }
        KIND_PUSH => Message::Push(get_push(&mut body)?),
        d => return Err(WireError::BadDiscriminant(d)),
    };
    wire::expect_eof(&body)?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use u1_core::ContentHash;

    fn round_trip(msg: Message) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let back = decode(&buf).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn all_request_variants_round_trip() {
        let v = VolumeId::new(3);
        let n = NodeId::new(9);
        for req in [
            Request::Authenticate {
                token: vec![1, 2, 3],
            },
            Request::QuerySetCaps {
                caps: vec!["volumes".into(), "generations".into()],
            },
            Request::ListVolumes,
            Request::ListShares,
            Request::CreateUdf {
                name: "Photos".into(),
            },
            Request::DeleteVolume { volume: v },
            Request::MakeFile {
                volume: v,
                parent: n,
                name: "a.txt".into(),
            },
            Request::MakeDir {
                volume: v,
                parent: n,
                name: "dir".into(),
            },
            Request::Unlink { volume: v, node: n },
            Request::Move {
                volume: v,
                node: n,
                new_parent: NodeId::new(1),
                new_name: "b.txt".into(),
            },
            Request::GetDelta {
                volume: v,
                from_generation: 42,
            },
            Request::RescanFromScratch { volume: v },
            Request::BeginUpload {
                volume: v,
                node: n,
                hash: ContentHash::from_content_id(5),
                size: 123456,
            },
            Request::UploadChunk {
                upload: UploadId::new(7),
                data: vec![0u8; 100],
            },
            Request::UploadChunkSparse {
                upload: UploadId::new(7),
                len: 5 * 1024 * 1024,
            },
            Request::CommitUpload {
                upload: UploadId::new(7),
            },
            Request::CancelUpload {
                upload: UploadId::new(7),
            },
            Request::GetContent { volume: v, node: n },
            Request::Ping,
            Request::Bye,
        ] {
            round_trip(Message::Request { id: 88, req });
        }
    }

    #[test]
    fn all_response_variants_round_trip() {
        let hash = ContentHash::from_content_id(1);
        for resp in [
            Response::Ok,
            Response::Error {
                code: "not_found".into(),
                message: "node n9".into(),
            },
            Response::AuthOk {
                session: SessionId::new(10),
                user: UserId::new(20),
            },
            Response::Capabilities {
                accepted: vec!["generations".into()],
            },
            Response::Volumes {
                volumes: vec![
                    VolumeInfo {
                        volume: VolumeId::new(0),
                        kind: VolumeKind::Root,
                        generation: 5,
                        owner: None,
                        node_count: 10,
                    },
                    VolumeInfo {
                        volume: VolumeId::new(8),
                        kind: VolumeKind::Shared,
                        generation: 2,
                        owner: Some(UserId::new(99)),
                        node_count: 0,
                    },
                ],
            },
            Response::VolumeCreated {
                volume: VolumeId::new(8),
                generation: 1,
            },
            Response::NodeCreated {
                node: NodeId::new(3),
                generation: 6,
            },
            Response::Delta {
                volume: VolumeId::new(0),
                generation: 9,
                nodes: vec![NodeInfo {
                    node: NodeId::new(3),
                    kind: NodeKind::File,
                    parent: Some(NodeId::new(1)),
                    name: "x.jpg".into(),
                    size: 1000,
                    hash: Some(hash),
                    generation: 9,
                    is_dead: false,
                }],
            },
            Response::UploadBegun {
                upload: UploadId::new(4),
                reusable: true,
            },
            Response::UploadDone {
                node: NodeId::new(3),
                generation: 10,
                hash,
            },
            Response::ContentBegin { size: 55, hash },
            Response::ContentChunk {
                data: vec![9u8; 55],
            },
            Response::ContentEnd,
            Response::Pong,
        ] {
            round_trip(Message::Response { id: 7, resp });
        }
    }

    #[test]
    fn all_push_variants_round_trip() {
        for push in [
            Push::VolumeChanged {
                volume: VolumeId::new(1),
                generation: 3,
            },
            Push::VolumeCreated {
                volume: VolumeId::new(2),
                kind: VolumeKind::Shared,
            },
            Push::VolumeDeleted {
                volume: VolumeId::new(2),
            },
        ] {
            round_trip(Message::Push(push));
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = BytesMut::new();
        encode(
            &Message::Request {
                id: 1,
                req: Request::Ping,
            },
            &mut buf,
        );
        buf.put_u8(0xAA);
        assert_eq!(decode(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn unknown_kind_and_tags_are_rejected() {
        assert!(matches!(
            decode(&[9, 0, 1]),
            Err(WireError::BadDiscriminant(9))
        ));
        // Valid kind, bad request tag.
        assert!(matches!(
            decode(&[KIND_REQUEST, 0, 200]),
            Err(WireError::BadDiscriminant(200))
        ));
        // Truncated mid-message.
        assert_eq!(decode(&[KIND_REQUEST]), Err(WireError::Truncated));
        assert_eq!(decode(&[]), Err(WireError::Truncated));
    }
}
