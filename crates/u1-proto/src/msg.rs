//! The protocol message set.
//!
//! Covers every Table 2 operation plus the mechanics the paper describes
//! around them: capability negotiation at session start (`QuerySetCaps`
//! appears in Fig. 8), chunked content transfer (uploads are sent in parts;
//! the back-end maps them to S3 multipart parts, Appendix A), and
//! server-initiated pushes (§3.4.2).
//!
//! Three message kinds share the connection, distinguished by
//! [`Message`]'s leading tag byte:
//!
//! * [`Request`] — client → server, stamped with a [`RequestId`] for
//!   correlation. Only `Authenticate`, `QuerySetCaps`, and `Ping` are
//!   legal before authentication; everything else earns an error and a
//!   disconnect ([`Request::allowed_unauthenticated`]).
//! * [`Response`] — server → client, echoing the request's id. Most
//!   requests get exactly one; content downloads stream
//!   `ContentBegin` / `ContentChunk`* / `ContentEnd` under a single id,
//!   and only the *final* response ([`Response::is_final`]) retires it.
//! * [`Push`] — server → client, unsolicited, no id (§3.4.2): other
//!   devices' changes arriving on this volume.
//!
//! Byte-level layout is the codec's concern (varints and length-prefixed
//! strings per [`crate::wire`], one message per length-prefixed frame per
//! [`crate::frame`]); this module is the vocabulary.

use u1_core::{
    ContentHash, Name, NodeId, NodeKind, SessionId, UploadId, UserId, VolumeId, VolumeKind,
};

/// Correlates requests with their responses over the persistent connection.
/// Pushes are unsolicited and carry no request id.
pub type RequestId = u32;

/// A volume as listed by `ListVolumes`/`ListShares`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeInfo {
    pub volume: VolumeId,
    pub kind: VolumeKind,
    /// Current generation (monotone per-volume change counter, the basis of
    /// `GetDelta`).
    pub generation: u64,
    /// For shared volumes: the owning user (`shared_by` in Table 2).
    pub owner: Option<UserId>,
    /// Number of nodes currently in the volume.
    pub node_count: u64,
}

/// A node as carried in deltas and rescans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    pub node: NodeId,
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    /// Inline-optimized node name (≤ 22 bytes stay on the stack); deltas
    /// carry many of these, so no per-entry heap allocation.
    pub name: Name,
    pub size: u64,
    pub hash: Option<ContentHash>,
    /// Generation at which this node last changed.
    pub generation: u64,
    /// True when the delta entry reports a deletion.
    pub is_dead: bool,
}

/// Client-to-server operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Present an OAuth token; must be the first request on a connection.
    Authenticate {
        token: Vec<u8>,
    },
    /// Negotiate protocol capabilities (Fig. 8 startup flow).
    QuerySetCaps {
        caps: Vec<String>,
    },
    ListVolumes,
    ListShares,
    CreateUdf {
        name: String,
    },
    DeleteVolume {
        volume: VolumeId,
    },
    MakeFile {
        volume: VolumeId,
        parent: NodeId,
        name: String,
    },
    MakeDir {
        volume: VolumeId,
        parent: NodeId,
        name: String,
    },
    Unlink {
        volume: VolumeId,
        node: NodeId,
    },
    Move {
        volume: VolumeId,
        node: NodeId,
        new_parent: NodeId,
        new_name: String,
    },
    GetDelta {
        volume: VolumeId,
        from_generation: u64,
    },
    RescanFromScratch {
        volume: VolumeId,
    },
    /// Start an upload. The client sends the SHA-1 *before* any content so
    /// the server can deduplicate (§3.3); `reusable: true` in the response
    /// means no bytes need to be transferred.
    BeginUpload {
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
    },
    /// One part of an upload (the back-end forwards 5MB parts to S3).
    UploadChunk {
        upload: UploadId,
        data: Vec<u8>,
    },
    /// One part of an upload carrying only its *declared* length — the
    /// measurement-mode twin of [`Request::UploadChunk`]. The back-end
    /// accounts the bytes (RPC records, transfer time, multipart
    /// bookkeeping) without either side materializing or shipping them, so
    /// a month-scale client fleet does not push terabytes of zeros through
    /// loopback. Servers running with real byte storage reject it.
    UploadChunkSparse {
        upload: UploadId,
        len: u64,
    },
    /// Commit a finished upload.
    CommitUpload {
        upload: UploadId,
    },
    /// Abandon an upload (client-side cancellation; the server also
    /// garbage-collects jobs older than a week, Appendix A).
    CancelUpload {
        upload: UploadId,
    },
    /// Download file contents.
    GetContent {
        volume: VolumeId,
        node: NodeId,
    },
    /// Keep-alive.
    Ping,
    /// Graceful goodbye: close the session *now*, then the connection. The
    /// server answers [`Response::Ok`] after the session is gone, flushes,
    /// and closes — so a client that waits for the reply knows its session
    /// teardown is ordered before anything that happens next (an abrupt
    /// disconnect is reaped asynchronously when the reactor notices EOF).
    Bye,
}

impl Request {
    /// Short label for logging/diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Authenticate { .. } => "authenticate",
            Request::QuerySetCaps { .. } => "query_set_caps",
            Request::ListVolumes => "list_volumes",
            Request::ListShares => "list_shares",
            Request::CreateUdf { .. } => "create_udf",
            Request::DeleteVolume { .. } => "delete_volume",
            Request::MakeFile { .. } => "make_file",
            Request::MakeDir { .. } => "make_dir",
            Request::Unlink { .. } => "unlink",
            Request::Move { .. } => "move",
            Request::GetDelta { .. } => "get_delta",
            Request::RescanFromScratch { .. } => "rescan_from_scratch",
            Request::BeginUpload { .. } => "begin_upload",
            Request::UploadChunk { .. } => "upload_chunk",
            Request::UploadChunkSparse { .. } => "upload_chunk_sparse",
            Request::CommitUpload { .. } => "commit_upload",
            Request::CancelUpload { .. } => "cancel_upload",
            Request::GetContent { .. } => "get_content",
            Request::Ping => "ping",
            Request::Bye => "bye",
        }
    }

    /// True for the requests allowed before authentication completes.
    pub fn allowed_unauthenticated(&self) -> bool {
        matches!(
            self,
            Request::Authenticate { .. } | Request::QuerySetCaps { .. } | Request::Ping
        )
    }
}

/// Server-to-client replies. A request normally gets exactly one response;
/// `GetContent` streams `ContentBegin`, zero or more `ContentChunk`s and a
/// final `ContentEnd`, all tagged with the request's id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Ok,
    Error {
        code: String,
        message: String,
    },
    AuthOk {
        session: SessionId,
        user: UserId,
    },
    Capabilities {
        accepted: Vec<String>,
    },
    Volumes {
        volumes: Vec<VolumeInfo>,
    },
    VolumeCreated {
        volume: VolumeId,
        generation: u64,
    },
    NodeCreated {
        node: NodeId,
        generation: u64,
    },
    Delta {
        volume: VolumeId,
        generation: u64,
        nodes: Vec<NodeInfo>,
    },
    UploadBegun {
        upload: UploadId,
        /// Dedup hit: content already known, no transfer needed (§3.3).
        reusable: bool,
    },
    UploadDone {
        node: NodeId,
        generation: u64,
        hash: ContentHash,
    },
    ContentBegin {
        size: u64,
        hash: ContentHash,
    },
    ContentChunk {
        data: Vec<u8>,
    },
    ContentEnd,
    Pong,
}

impl Response {
    pub fn label(&self) -> &'static str {
        match self {
            Response::Ok => "ok",
            Response::Error { .. } => "error",
            Response::AuthOk { .. } => "auth_ok",
            Response::Capabilities { .. } => "capabilities",
            Response::Volumes { .. } => "volumes",
            Response::VolumeCreated { .. } => "volume_created",
            Response::NodeCreated { .. } => "node_created",
            Response::Delta { .. } => "delta",
            Response::UploadBegun { .. } => "upload_begun",
            Response::UploadDone { .. } => "upload_done",
            Response::ContentBegin { .. } => "content_begin",
            Response::ContentChunk { .. } => "content_chunk",
            Response::ContentEnd => "content_end",
            Response::Pong => "pong",
        }
    }

    /// Whether this response terminates its request (content streams only
    /// end at `ContentEnd`/`Error`).
    pub fn is_final(&self) -> bool {
        !matches!(
            self,
            Response::ContentBegin { .. } | Response::ContentChunk { .. }
        )
    }
}

/// Unsolicited server pushes over the session connection (§3.4.2): "when
/// remote content changes, the client acts on the incoming unsolicited
/// notification (push) sent by the U1 service".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Push {
    /// A volume the client can see advanced to a new generation; the client
    /// reacts with `GetDelta`.
    VolumeChanged { volume: VolumeId, generation: u64 },
    /// A volume was shared to / created for this user.
    VolumeCreated { volume: VolumeId, kind: VolumeKind },
    /// A volume disappeared.
    VolumeDeleted { volume: VolumeId },
}

/// Anything that can cross the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    Request { id: RequestId, req: Request },
    Response { id: RequestId, resp: Response },
    Push(Push),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unauthenticated_allowance_is_minimal() {
        assert!(Request::Authenticate { token: vec![] }.allowed_unauthenticated());
        assert!(Request::Ping.allowed_unauthenticated());
        assert!(Request::QuerySetCaps { caps: vec![] }.allowed_unauthenticated());
        assert!(!Request::ListVolumes.allowed_unauthenticated());
        assert!(!Request::GetContent {
            volume: VolumeId::new(0),
            node: NodeId::new(0)
        }
        .allowed_unauthenticated());
    }

    #[test]
    fn content_stream_finality() {
        assert!(!Response::ContentBegin {
            size: 1,
            hash: ContentHash::EMPTY
        }
        .is_final());
        assert!(!Response::ContentChunk { data: vec![1] }.is_final());
        assert!(Response::ContentEnd.is_final());
        assert!(Response::Ok.is_final());
        assert!(Response::Error {
            code: "x".into(),
            message: "y".into()
        }
        .is_final());
    }
}
