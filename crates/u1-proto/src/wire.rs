//! Wire primitives: unsigned varints and length-delimited byte strings over
//! [`bytes::Buf`]/[`bytes::BufMut`].
//!
//! The encoding mirrors protobuf's: LEB128 varints for integers, varint
//! length prefixes for strings/bytes. Decoding is strict — truncated or
//! over-long input yields a [`WireError`] instead of panicking, because
//! frames arrive from the network.
//!
//! # Error taxonomy
//!
//! Every decode failure maps to exactly one [`WireError`] variant, and all
//! of them are **fatal for the connection** (the serving tier drops the
//! peer rather than resynchronizing a corrupt stream):
//!
//! | Variant | Fires when |
//! |---|---|
//! | [`Truncated`](WireError::Truncated) | the buffer ends mid-value (varint, hash, discriminant) |
//! | [`VarintOverflow`](WireError::VarintOverflow) | a varint runs past 10 bytes or encodes more than 64 bits |
//! | [`BadLength`](WireError::BadLength) | a length prefix exceeds the remaining buffer, or trailing garbage follows a message |
//! | [`BadDiscriminant`](WireError::BadDiscriminant) | an enum tag byte has no defined meaning |
//! | [`BadUtf8`](WireError::BadUtf8) | a string field holds invalid UTF-8 |
//! | [`Overflow`](WireError::Overflow) | a decoded integer exceeds the field's native width (`usize` counts, `u32` request ids) |
//!
//! Encoding cannot fail: buffers grow, and every encodable value has a
//! representation.
//!
//! ```
//! use bytes::BytesMut;
//! use u1_proto::wire::{get_uvarint, put_uvarint, WireError};
//!
//! let mut buf = BytesMut::new();
//! put_uvarint(&mut buf, 300);
//! assert_eq!(buf.as_ref(), [0xAC, 0x02]); // LEB128, low 7 bits first
//!
//! let mut cur = buf.freeze();
//! assert_eq!(get_uvarint(&mut cur), Ok(300));
//!
//! // Strictness: a continuation bit with nothing after it is an error,
//! // never a partial value.
//! let mut cut = &[0x80u8][..];
//! assert_eq!(get_uvarint(&mut cut), Err(WireError::Truncated));
//! ```

use bytes::{Buf, BufMut};

/// Maximum number of bytes a 64-bit LEB128 varint may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Decoding errors. Encoding cannot fail (buffers grow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended mid-value.
    Truncated,
    /// A varint exceeded 10 bytes / 64 bits.
    VarintOverflow,
    /// A length prefix exceeded the remaining buffer or a sanity bound.
    BadLength,
    /// An enum discriminant had no defined meaning.
    BadDiscriminant(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A decoded integer does not fit the field's native width (e.g. a
    /// count that must fit `usize`, or a request id that must fit `u32`).
    Overflow,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::BadLength => write!(f, "bad length prefix"),
            WireError::BadDiscriminant(d) => write!(f, "unknown discriminant {d}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8"),
            WireError::Overflow => write!(f, "integer field overflows its native width"),
        }
    }
}

impl std::error::Error for WireError {}

pub type WireResult<T> = Result<T, WireError>;

/// Appends `v` as a LEB128 varint.
pub fn put_uvarint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn get_uvarint(buf: &mut impl Buf) -> WireResult<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        let byte = buf.get_u8();
        let low = (byte & 0x7F) as u64;
        if shift == 63 && low > 1 {
            return Err(WireError::VarintOverflow);
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
    Err(WireError::VarintOverflow)
}

/// Reads a varint that must fit `usize` — collection counts and byte-string
/// lengths. A value a 32-bit host cannot even address is [`WireError::Overflow`],
/// not a length to be truncated.
pub fn get_uvarint_len(buf: &mut impl Buf) -> WireResult<usize> {
    usize::try_from(get_uvarint(buf)?).map_err(|_| WireError::Overflow)
}

/// Reads a varint that must fit `u32` — request ids and other 32-bit fields.
pub fn get_uvarint_u32(buf: &mut impl Buf) -> WireResult<u32> {
    u32::try_from(get_uvarint(buf)?).map_err(|_| WireError::Overflow)
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut impl BufMut, data: &[u8]) {
    put_uvarint(buf, data.len() as u64);
    buf.put_slice(data);
}

/// Reads a length-prefixed byte string, bounded by the remaining buffer.
pub fn get_bytes(buf: &mut impl Buf) -> WireResult<Vec<u8>> {
    let len = get_uvarint_len(buf)?;
    if len > buf.remaining() {
        return Err(WireError::BadLength);
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> WireResult<String> {
    String::from_utf8(get_bytes(buf)?).map_err(|_| WireError::BadUtf8)
}

/// Appends a fixed 20-byte hash.
pub fn put_hash(buf: &mut impl BufMut, h: &u1_core::ContentHash) {
    buf.put_slice(h.as_bytes());
}

/// Reads a fixed 20-byte hash.
pub fn get_hash(buf: &mut impl Buf) -> WireResult<u1_core::ContentHash> {
    if buf.remaining() < 20 {
        return Err(WireError::Truncated);
    }
    let mut raw = [0u8; 20];
    buf.copy_to_slice(&mut raw);
    Ok(u1_core::ContentHash::new(raw))
}

/// Appends an `Option<u64>`-style presence-tagged varint.
pub fn put_opt_uvarint(buf: &mut impl BufMut, v: Option<u64>) {
    match v {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            put_uvarint(buf, v);
        }
    }
}

/// Reads a presence-tagged varint.
pub fn get_opt_uvarint(buf: &mut impl Buf) -> WireResult<Option<u64>> {
    if !buf.has_remaining() {
        return Err(WireError::Truncated);
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_uvarint(buf)?)),
        d => Err(WireError::BadDiscriminant(d)),
    }
}

/// Reads a single discriminant byte.
pub fn get_u8(buf: &mut impl Buf) -> WireResult<u8> {
    if !buf.has_remaining() {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Requires the buffer to be fully consumed, catching trailing garbage.
pub fn expect_eof(buf: &impl Buf) -> WireResult<()> {
    if buf.has_remaining() {
        Err(WireError::BadLength)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn varint_round_trip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut cur = buf.freeze();
            assert_eq!(get_uvarint(&mut cur).unwrap(), v);
            assert!(expect_eof(&cur).is_ok());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut cur = &[0x80u8, 0x80][..];
        assert_eq!(get_uvarint(&mut cur), Err(WireError::Truncated));
        // 11 continuation bytes overflow.
        let bytes = [0xFFu8; 11];
        let mut cur = &bytes[..];
        assert_eq!(get_uvarint(&mut cur), Err(WireError::VarintOverflow));
        // 10 bytes encoding > 64 bits overflow.
        let mut bytes = [0xFFu8; 10];
        bytes[9] = 0x7F;
        let mut cur = &bytes[..];
        assert_eq!(get_uvarint(&mut cur), Err(WireError::VarintOverflow));
    }

    #[test]
    fn bytes_and_str_round_trip() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"hello");
        put_str(&mut buf, "wörld");
        let mut cur = buf.freeze();
        assert_eq!(get_bytes(&mut cur).unwrap(), b"hello");
        assert_eq!(get_str(&mut cur).unwrap(), "wörld");
    }

    #[test]
    fn bytes_rejects_lying_length_prefix() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 1_000_000);
        buf.extend_from_slice(b"short");
        let mut cur = buf.freeze();
        assert_eq!(get_bytes(&mut cur), Err(WireError::BadLength));
    }

    #[test]
    fn str_rejects_invalid_utf8() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, &[0xFF, 0xFE]);
        let mut cur = buf.freeze();
        assert_eq!(get_str(&mut cur), Err(WireError::BadUtf8));
    }

    #[test]
    fn hash_round_trip_and_truncation() {
        let h = u1_core::ContentHash::from_content_id(7);
        let mut buf = BytesMut::new();
        put_hash(&mut buf, &h);
        let mut cur = buf.freeze();
        assert_eq!(get_hash(&mut cur).unwrap(), h);
        let mut short = &[0u8; 19][..];
        assert_eq!(get_hash(&mut short), Err(WireError::Truncated));
    }

    #[test]
    fn u32_varint_boundary_and_overflow() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, u64::from(u32::MAX));
        let mut cur = buf.freeze();
        assert_eq!(get_uvarint_u32(&mut cur).unwrap(), u32::MAX);

        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, u64::from(u32::MAX) + 1);
        let mut cur = buf.freeze();
        assert_eq!(get_uvarint_u32(&mut cur), Err(WireError::Overflow));
    }

    #[test]
    fn len_varint_round_trips_counts() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 4096);
        let mut cur = buf.freeze();
        assert_eq!(get_uvarint_len(&mut cur).unwrap(), 4096);
    }

    #[test]
    fn optional_varint_round_trip() {
        for v in [None, Some(0u64), Some(12345)] {
            let mut buf = BytesMut::new();
            put_opt_uvarint(&mut buf, v);
            let mut cur = buf.freeze();
            assert_eq!(get_opt_uvarint(&mut cur).unwrap(), v);
        }
        let mut bad = &[9u8][..];
        assert_eq!(
            get_opt_uvarint(&mut bad),
            Err(WireError::BadDiscriminant(9))
        );
    }
}
