//! Property tests for the wire format, codec and framing: arbitrary
//! messages survive encode→frame→chunked-decode round trips, and arbitrary
//! junk bytes never panic the decoder.

use bytes::BytesMut;
use proptest::prelude::*;
use u1_core::{ContentHash, NodeId, NodeKind, SessionId, UploadId, UserId, VolumeId, VolumeKind};
use u1_proto::codec;
use u1_proto::frame::{encode_frame, FrameDecoder};
use u1_proto::msg::{Message, NodeInfo, Push, Request, Response, VolumeInfo};

fn arb_hash() -> impl Strategy<Value = ContentHash> {
    any::<u64>().prop_map(ContentHash::from_content_id)
}

fn arb_volume_kind() -> impl Strategy<Value = VolumeKind> {
    prop_oneof![
        Just(VolumeKind::Root),
        Just(VolumeKind::UserDefined),
        Just(VolumeKind::Shared)
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    ".{0,40}"
}

fn arb_request() -> impl Strategy<Value = Request> {
    let vol = any::<u64>().prop_map(VolumeId::new);
    let node = any::<u64>().prop_map(NodeId::new);
    let upload = any::<u64>().prop_map(UploadId::new);
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|token| Request::Authenticate { token }),
        proptest::collection::vec(arb_name(), 0..5).prop_map(|caps| Request::QuerySetCaps { caps }),
        Just(Request::ListVolumes),
        Just(Request::ListShares),
        arb_name().prop_map(|name| Request::CreateUdf { name }),
        vol.clone()
            .prop_map(|volume| Request::DeleteVolume { volume }),
        (vol.clone(), node.clone(), arb_name()).prop_map(|(volume, parent, name)| {
            Request::MakeFile {
                volume,
                parent,
                name,
            }
        }),
        (vol.clone(), node.clone(), arb_name()).prop_map(|(volume, parent, name)| {
            Request::MakeDir {
                volume,
                parent,
                name,
            }
        }),
        (vol.clone(), node.clone()).prop_map(|(volume, node)| Request::Unlink { volume, node }),
        (vol.clone(), node.clone(), node.clone(), arb_name()).prop_map(
            |(volume, node, new_parent, new_name)| Request::Move {
                volume,
                node,
                new_parent,
                new_name,
            }
        ),
        (vol.clone(), any::<u64>()).prop_map(|(volume, from_generation)| Request::GetDelta {
            volume,
            from_generation,
        }),
        vol.clone()
            .prop_map(|volume| Request::RescanFromScratch { volume }),
        (vol.clone(), node.clone(), arb_hash(), any::<u64>()).prop_map(
            |(volume, node, hash, size)| Request::BeginUpload {
                volume,
                node,
                hash,
                size,
            }
        ),
        (
            upload.clone(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(upload, data)| Request::UploadChunk { upload, data }),
        upload
            .clone()
            .prop_map(|upload| Request::CommitUpload { upload }),
        upload.prop_map(|upload| Request::CancelUpload { upload }),
        (vol, node).prop_map(|(volume, node)| Request::GetContent { volume, node }),
        Just(Request::Ping),
    ]
}

fn arb_node_info() -> impl Strategy<Value = NodeInfo> {
    (
        any::<u64>(),
        any::<bool>(),
        proptest::option::of(any::<u64>()),
        arb_name(),
        any::<u64>(),
        proptest::option::of(arb_hash()),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(node, is_file, parent, name, size, hash, generation, is_dead)| NodeInfo {
                node: NodeId::new(node),
                kind: if is_file {
                    NodeKind::File
                } else {
                    NodeKind::Directory
                },
                parent: parent.map(NodeId::new),
                name: name.into(),
                size,
                hash,
                generation,
                is_dead,
            },
        )
}

fn arb_volume_info() -> impl Strategy<Value = VolumeInfo> {
    (
        any::<u64>(),
        arb_volume_kind(),
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        any::<u64>(),
    )
        .prop_map(|(v, kind, generation, owner, node_count)| VolumeInfo {
            volume: VolumeId::new(v),
            kind,
            generation,
            owner: owner.map(UserId::new),
            node_count,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        (arb_name(), arb_name()).prop_map(|(code, message)| Response::Error { code, message }),
        (any::<u64>(), any::<u64>()).prop_map(|(s, u)| Response::AuthOk {
            session: SessionId::new(s),
            user: UserId::new(u),
        }),
        proptest::collection::vec(arb_name(), 0..4)
            .prop_map(|accepted| Response::Capabilities { accepted }),
        proptest::collection::vec(arb_volume_info(), 0..8)
            .prop_map(|volumes| Response::Volumes { volumes }),
        (any::<u64>(), any::<u64>()).prop_map(|(v, g)| Response::VolumeCreated {
            volume: VolumeId::new(v),
            generation: g,
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(n, g)| Response::NodeCreated {
            node: NodeId::new(n),
            generation: g,
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_node_info(), 0..6)
        )
            .prop_map(|(v, g, nodes)| Response::Delta {
                volume: VolumeId::new(v),
                generation: g,
                nodes,
            }),
        (any::<u64>(), any::<bool>()).prop_map(|(u, reusable)| Response::UploadBegun {
            upload: UploadId::new(u),
            reusable,
        }),
        (any::<u64>(), any::<u64>(), arb_hash()).prop_map(|(n, g, hash)| Response::UploadDone {
            node: NodeId::new(n),
            generation: g,
            hash,
        }),
        (any::<u64>(), arb_hash()).prop_map(|(size, hash)| Response::ContentBegin { size, hash }),
        proptest::collection::vec(any::<u8>(), 0..512)
            .prop_map(|data| Response::ContentChunk { data }),
        Just(Response::ContentEnd),
        Just(Response::Pong),
    ]
}

fn arb_push() -> impl Strategy<Value = Push> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(v, g)| Push::VolumeChanged {
            volume: VolumeId::new(v),
            generation: g,
        }),
        (any::<u64>(), arb_volume_kind()).prop_map(|(v, kind)| Push::VolumeCreated {
            volume: VolumeId::new(v),
            kind,
        }),
        any::<u64>().prop_map(|v| Push::VolumeDeleted {
            volume: VolumeId::new(v),
        }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), arb_request()).prop_map(|(id, req)| Message::Request { id, req }),
        (any::<u32>(), arb_response()).prop_map(|(id, resp)| Message::Response { id, resp }),
        arb_push().prop_map(Message::Push),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_codec_round_trips(msg in arb_message()) {
        let mut buf = BytesMut::new();
        codec::encode(&msg, &mut buf);
        let back = codec::decode(&buf).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn framed_messages_survive_arbitrary_chunking(
        msgs in proptest::collection::vec(arb_message(), 1..8),
        chunk_size in 1usize..64,
    ) {
        let mut stream = BytesMut::new();
        for msg in &msgs {
            let mut body = BytesMut::new();
            codec::encode(msg, &mut body);
            encode_frame(&body, &mut stream).expect("frame");
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(chunk_size) {
            dec.extend(chunk);
            while let Some(frame) = dec.next_frame().expect("frame") {
                decoded.push(codec::decode(&frame).expect("decode"));
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    #[test]
    fn decoder_never_panics_on_junk(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Whatever happens, it must be a clean Result, not a panic.
        let _ = codec::decode(&junk);
        let mut dec = FrameDecoder::new();
        dec.extend(&junk);
        while let Ok(Some(frame)) = dec.next_frame() {
            let _ = codec::decode(&frame);
        }
    }

    #[test]
    fn corrupting_one_byte_never_panics(msg in arb_message(), pos_seed in any::<usize>(), new_byte in any::<u8>()) {
        let mut buf = BytesMut::new();
        codec::encode(&msg, &mut buf);
        if !buf.is_empty() {
            let pos = pos_seed % buf.len();
            buf[pos] = new_byte;
            let _ = codec::decode(&buf); // may fail, may decode to another message; must not panic
        }
    }
}
